#include "catalog/schema.h"

#include <cstring>

#include "util/string_util.h"

namespace vdb::catalog {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("column '" + name + "' not found");
}

uint32_t Schema::AvgTupleWidth() const {
  uint32_t width = 0;
  for (const Column& column : columns_) {
    width += 1 + column.avg_width +
             (column.type == TypeId::kString ? 4 : 0);
  }
  return width == 0 ? 1 : width;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> combined = columns_;
  combined.insert(combined.end(), other.columns_.begin(),
                  other.columns_.end());
  return Schema(std::move(combined));
}

std::string Schema::ToString() const {
  std::string result = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) result += ", ";
    result += columns_[i].name;
    result += " ";
    result += TypeIdName(columns_[i].type);
  }
  result += ")";
  return result;
}

std::string SerializeTuple(const Tuple& tuple, const Schema& schema) {
  std::string out;
  out.reserve(schema.AvgTupleWidth());
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& value = tuple[i];
    out.push_back(value.is_null() ? 1 : 0);
    if (value.is_null()) continue;
    if (schema.column(i).type == TypeId::kString) {
      const std::string& s = value.AsString();
      const uint32_t len = static_cast<uint32_t>(s.size());
      out.append(reinterpret_cast<const char*>(&len), sizeof(len));
      out.append(s);
    } else if (schema.column(i).type == TypeId::kDouble) {
      const double d = value.AsDouble();
      out.append(reinterpret_cast<const char*>(&d), sizeof(d));
    } else if (schema.column(i).type == TypeId::kBool) {
      const int64_t v = value.AsBool() ? 1 : 0;
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
    } else {
      const int64_t v = value.AsInt64();
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  }
  return out;
}

Result<Tuple> DeserializeTuple(std::string_view data, const Schema& schema) {
  Tuple tuple;
  tuple.reserve(schema.NumColumns());
  size_t pos = 0;
  auto need = [&](size_t n) -> bool { return pos + n <= data.size(); };
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    const TypeId type = schema.column(i).type;
    if (!need(1)) return Status::Internal("truncated tuple (null flag)");
    const bool is_null = data[pos++] != 0;
    if (is_null) {
      tuple.push_back(Value::Null(type));
      continue;
    }
    if (type == TypeId::kString) {
      if (!need(4)) return Status::Internal("truncated tuple (length)");
      uint32_t len = 0;
      std::memcpy(&len, data.data() + pos, sizeof(len));
      pos += sizeof(len);
      if (!need(len)) return Status::Internal("truncated tuple (string)");
      tuple.push_back(Value::String(std::string(data.substr(pos, len))));
      pos += len;
    } else if (type == TypeId::kDouble) {
      if (!need(8)) return Status::Internal("truncated tuple (double)");
      double d = 0;
      std::memcpy(&d, data.data() + pos, sizeof(d));
      pos += sizeof(d);
      tuple.push_back(Value::Double(d));
    } else {
      if (!need(8)) return Status::Internal("truncated tuple (int)");
      int64_t v = 0;
      std::memcpy(&v, data.data() + pos, sizeof(v));
      pos += sizeof(v);
      if (type == TypeId::kBool) {
        tuple.push_back(Value::Bool(v != 0));
      } else if (type == TypeId::kDate) {
        tuple.push_back(Value::Date(v));
      } else {
        tuple.push_back(Value::Int64(v));
      }
    }
  }
  return tuple;
}

std::string TupleToString(const Tuple& tuple) {
  std::string result = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) result += ", ";
    result += tuple[i].ToString();
  }
  result += ")";
  return result;
}

}  // namespace vdb::catalog
