#include "catalog/schema.h"

#include <cstring>

#include "util/string_util.h"

namespace vdb::catalog {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("column '" + name + "' not found");
}

uint32_t Schema::AvgTupleWidth() const {
  uint32_t width = 0;
  for (const Column& column : columns_) {
    width += 1 + column.avg_width +
             (column.type == TypeId::kString ? 4 : 0);
  }
  return width == 0 ? 1 : width;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> combined = columns_;
  combined.insert(combined.end(), other.columns_.begin(),
                  other.columns_.end());
  return Schema(std::move(combined));
}

std::string Schema::ToString() const {
  std::string result = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) result += ", ";
    result += columns_[i].name;
    result += " ";
    result += TypeIdName(columns_[i].type);
  }
  result += ")";
  return result;
}

std::string SerializeTuple(const Tuple& tuple, const Schema& schema) {
  std::string out;
  out.reserve(schema.AvgTupleWidth());
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& value = tuple[i];
    out.push_back(value.is_null() ? 1 : 0);
    if (value.is_null()) continue;
    if (schema.column(i).type == TypeId::kString) {
      const std::string& s = value.AsString();
      const uint32_t len = static_cast<uint32_t>(s.size());
      out.append(reinterpret_cast<const char*>(&len), sizeof(len));
      out.append(s);
    } else if (schema.column(i).type == TypeId::kDouble) {
      const double d = value.AsDouble();
      out.append(reinterpret_cast<const char*>(&d), sizeof(d));
    } else if (schema.column(i).type == TypeId::kBool) {
      const int64_t v = value.AsBool() ? 1 : 0;
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
    } else {
      const int64_t v = value.AsInt64();
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  }
  return out;
}

Result<Tuple> DeserializeTuple(std::string_view data, const Schema& schema) {
  Tuple tuple;
  tuple.reserve(schema.NumColumns());
  size_t pos = 0;
  auto need = [&](size_t n) -> bool { return pos + n <= data.size(); };
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    const TypeId type = schema.column(i).type;
    if (!need(1)) return Status::Internal("truncated tuple (null flag)");
    const bool is_null = data[pos++] != 0;
    if (is_null) {
      tuple.push_back(Value::Null(type));
      continue;
    }
    if (type == TypeId::kString) {
      if (!need(4)) return Status::Internal("truncated tuple (length)");
      uint32_t len = 0;
      std::memcpy(&len, data.data() + pos, sizeof(len));
      pos += sizeof(len);
      if (!need(len)) return Status::Internal("truncated tuple (string)");
      tuple.push_back(Value::String(std::string(data.substr(pos, len))));
      pos += len;
    } else if (type == TypeId::kDouble) {
      if (!need(8)) return Status::Internal("truncated tuple (double)");
      double d = 0;
      std::memcpy(&d, data.data() + pos, sizeof(d));
      pos += sizeof(d);
      tuple.push_back(Value::Double(d));
    } else {
      if (!need(8)) return Status::Internal("truncated tuple (int)");
      int64_t v = 0;
      std::memcpy(&v, data.data() + pos, sizeof(v));
      pos += sizeof(v);
      if (type == TypeId::kBool) {
        tuple.push_back(Value::Bool(v != 0));
      } else if (type == TypeId::kDate) {
        tuple.push_back(Value::Date(v));
      } else {
        tuple.push_back(Value::Int64(v));
      }
    }
  }
  return tuple;
}

Status DeserializeTupleInto(std::string_view data, const Schema& schema,
                            Batch* batch, size_t row,
                            const std::vector<uint8_t>* wanted) {
  size_t pos = 0;
  auto need = [&](size_t n) -> bool { return pos + n <= data.size(); };
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    ValueVector& column = batch->columns[i];
    if (!need(1)) return Status::Internal("truncated tuple (null flag)");
    const bool is_null = data[pos++] != 0;
    if (is_null) {
      column.SetNull(row);
      continue;
    }
    const bool skip = wanted != nullptr && (*wanted)[i] == 0;
    if (schema.column(i).type == TypeId::kString) {
      if (!need(4)) return Status::Internal("truncated tuple (length)");
      uint32_t len = 0;
      std::memcpy(&len, data.data() + pos, sizeof(len));
      pos += sizeof(len);
      if (!need(len)) return Status::Internal("truncated tuple (string)");
      if (skip) {
        column.SetNull(row);
      } else {
        column.SetString(row, data.substr(pos, len));
      }
      pos += len;
    } else if (skip) {
      if (!need(8)) return Status::Internal("truncated tuple (payload)");
      pos += 8;
      column.SetNull(row);
    } else if (schema.column(i).type == TypeId::kDouble) {
      if (!need(8)) return Status::Internal("truncated tuple (double)");
      double d = 0;
      std::memcpy(&d, data.data() + pos, sizeof(d));
      pos += sizeof(d);
      column.SetDouble(row, d);
    } else {
      if (!need(8)) return Status::Internal("truncated tuple (int)");
      int64_t v = 0;
      std::memcpy(&v, data.data() + pos, sizeof(v));
      pos += sizeof(v);
      column.SetInt64(row, v);
    }
  }
  return Status::OK();
}

Status DeserializeRecordsInto(const std::string_view* records, size_t count,
                              const Schema& schema, Batch* batch,
                              size_t start_row,
                              const std::vector<uint8_t>* wanted) {
  return DeserializeRecordsInto(records, sizeof(std::string_view), count,
                                schema, batch, start_row, wanted);
}

Status DeserializeRecordsInto(const std::string_view* records,
                              size_t stride_bytes, size_t count,
                              const Schema& schema, Batch* batch,
                              size_t start_row,
                              const std::vector<uint8_t>* wanted) {
  // Hoist the per-column dispatch data out of the row loop: the Schema's
  // Column structs drag string names through the cache, the mask lookup
  // branches are loop-invariant, and raw payload/null pointers skip the
  // per-call ValueVector indirection.
  struct ColPlan {
    TypeId type;
    bool keep;
    ValueVector* column;
    int64_t* ints;
    double* doubles;
    uint8_t* nulls;
  };
  const size_t num_columns = schema.NumColumns();
  std::vector<ColPlan> cols(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    ValueVector& column = batch->columns[i];
    const bool keep = wanted == nullptr || (*wanted)[i] != 0;
    cols[i] = ColPlan{schema.column(i).type,    keep,
                      &column,                  column.MutableInt64Data(),
                      column.MutableDoubleData(), column.MutableNullData()};
    if (!keep && count > 0) {
      // Skipped columns are NULL for the whole range; one bulk store
      // replaces a per-row write in the hot loop below.
      std::memset(cols[i].nulls + start_row, 1, count);
    }
  }
  const char* record_base = reinterpret_cast<const char*>(records);
  for (size_t r = 0; r < count; ++r) {
    const std::string_view& record =
        *reinterpret_cast<const std::string_view*>(record_base +
                                                   r * stride_bytes);
    const char* p = record.data();
    const char* const end = p + record.size();
    const size_t row = start_row + r;
    for (size_t i = 0; i < num_columns; ++i) {
      if (p >= end) return Status::Internal("truncated tuple (null flag)");
      const bool is_null = *p++ != 0;
      const ColPlan& col = cols[i];
      if (is_null) {
        if (col.keep) col.nulls[row] = 1;
        continue;
      }
      if (col.type == TypeId::kString) {
        if (end - p < 4) return Status::Internal("truncated tuple (length)");
        uint32_t len = 0;
        std::memcpy(&len, p, sizeof(len));
        p += sizeof(len);
        if (static_cast<size_t>(end - p) < len) {
          return Status::Internal("truncated tuple (string)");
        }
        if (col.keep) {
          col.column->SetString(row, std::string_view(p, len));
        }
        p += len;
      } else {
        if (end - p < 8) return Status::Internal("truncated tuple (payload)");
        if (col.keep) {
          col.nulls[row] = 0;
          if (col.type == TypeId::kDouble) {
            std::memcpy(&col.doubles[row], p, sizeof(double));
          } else {
            std::memcpy(&col.ints[row], p, sizeof(int64_t));
          }
        }
        p += 8;
      }
    }
  }
  return Status::OK();
}

std::string TupleToString(const Tuple& tuple) {
  std::string result = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) result += ", ";
    result += tuple[i].ToString();
  }
  result += ")";
  return result;
}

}  // namespace vdb::catalog
