#include "catalog/wal_payloads.h"

#include <cstring>

namespace vdb::catalog::walenc {

namespace {

template <typename T>
void AppendLe(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

}  // namespace

void AppendU8(std::string* out, uint8_t v) { AppendLe(out, v); }
void AppendU16(std::string* out, uint16_t v) { AppendLe(out, v); }
void AppendU32(std::string* out, uint32_t v) { AppendLe(out, v); }
void AppendU64(std::string* out, uint64_t v) { AppendLe(out, v); }

void AppendString(std::string* out, std::string_view s) {
  AppendU16(out, static_cast<uint16_t>(s.size()));
  out->append(s.data(), s.size());
}

void AppendSchema(std::string* out, const Schema& schema) {
  AppendU16(out, static_cast<uint16_t>(schema.NumColumns()));
  for (const Column& col : schema.columns()) {
    AppendString(out, col.name);
    AppendU8(out, static_cast<uint8_t>(col.type));
    AppendU32(out, col.avg_width);
  }
}

Result<uint8_t> PayloadReader::ReadU8() {
  if (pos_ + 1 > data_.size()) return Status::IOError("payload underrun");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> PayloadReader::ReadU16() {
  if (pos_ + 2 > data_.size()) return Status::IOError("payload underrun");
  uint16_t v = 0;
  std::memcpy(&v, data_.data() + pos_, 2);
  pos_ += 2;
  return v;
}

Result<uint32_t> PayloadReader::ReadU32() {
  if (pos_ + 4 > data_.size()) return Status::IOError("payload underrun");
  uint32_t v = 0;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::ReadU64() {
  if (pos_ + 8 > data_.size()) return Status::IOError("payload underrun");
  uint64_t v = 0;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<std::string> PayloadReader::ReadString() {
  VDB_ASSIGN_OR_RETURN(uint16_t len, ReadU16());
  if (pos_ + len > data_.size()) return Status::IOError("payload underrun");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<std::string_view> PayloadReader::ReadBytes(size_t n) {
  if (pos_ + n > data_.size()) return Status::IOError("payload underrun");
  std::string_view view = data_.substr(pos_, n);
  pos_ += n;
  return view;
}

Result<Schema> PayloadReader::ReadSchema() {
  VDB_ASSIGN_OR_RETURN(uint16_t ncols, ReadU16());
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    Column col;
    VDB_ASSIGN_OR_RETURN(col.name, ReadString());
    VDB_ASSIGN_OR_RETURN(uint8_t type, ReadU8());
    col.type = static_cast<TypeId>(type);
    VDB_ASSIGN_OR_RETURN(col.avg_width, ReadU32());
    cols.push_back(std::move(col));
  }
  return Schema(std::move(cols));
}

std::string EncodeCreateTable(const std::string& name, const Schema& schema) {
  std::string out;
  AppendString(&out, name);
  AppendSchema(&out, schema);
  return out;
}

Result<CreateTablePayload> DecodeCreateTable(std::string_view payload) {
  PayloadReader reader(payload);
  CreateTablePayload result;
  VDB_ASSIGN_OR_RETURN(result.name, reader.ReadString());
  VDB_ASSIGN_OR_RETURN(result.schema, reader.ReadSchema());
  return result;
}

std::string EncodeCreateIndex(const std::string& index_name,
                              uint32_t table_id, uint32_t column_index) {
  std::string out;
  AppendString(&out, index_name);
  AppendU32(&out, table_id);
  AppendU32(&out, column_index);
  return out;
}

Result<CreateIndexPayload> DecodeCreateIndex(std::string_view payload) {
  PayloadReader reader(payload);
  CreateIndexPayload result;
  VDB_ASSIGN_OR_RETURN(result.index_name, reader.ReadString());
  VDB_ASSIGN_OR_RETURN(result.table_id, reader.ReadU32());
  VDB_ASSIGN_OR_RETURN(result.column_index, reader.ReadU32());
  return result;
}

std::string EncodeInsert(uint32_t table_id, uint64_t page_index,
                         uint16_t slot, std::string_view record) {
  std::string out;
  AppendU32(&out, table_id);
  AppendU64(&out, page_index);
  AppendU16(&out, slot);
  out.append(record.data(), record.size());
  return out;
}

Result<InsertPayload> DecodeInsert(std::string_view payload) {
  PayloadReader reader(payload);
  InsertPayload result;
  VDB_ASSIGN_OR_RETURN(result.table_id, reader.ReadU32());
  VDB_ASSIGN_OR_RETURN(result.page_index, reader.ReadU64());
  VDB_ASSIGN_OR_RETURN(result.slot, reader.ReadU16());
  result.record = reader.Rest();
  return result;
}

void AppendZoneEntry(std::string* out, const storage::ZoneEntry& entry) {
  AppendU8(out, entry.tracked ? 1 : 0);
  AppendU64(out, entry.row_count);
  AppendU32(out, static_cast<uint32_t>(entry.columns.size()));
  for (const storage::ZoneColumnStats& col : entry.columns) {
    AppendU64(out, col.null_count);
    AppendU8(out, col.has_values ? 1 : 0);
    uint64_t min_bits = 0;
    uint64_t max_bits = 0;
    std::memcpy(&min_bits, &col.min, sizeof(min_bits));
    std::memcpy(&max_bits, &col.max, sizeof(max_bits));
    AppendU64(out, min_bits);
    AppendU64(out, max_bits);
  }
}

Result<storage::ZoneEntry> ReadZoneEntry(PayloadReader* reader) {
  storage::ZoneEntry entry;
  VDB_ASSIGN_OR_RETURN(uint8_t tracked, reader->ReadU8());
  entry.tracked = tracked != 0;
  VDB_ASSIGN_OR_RETURN(entry.row_count, reader->ReadU64());
  VDB_ASSIGN_OR_RETURN(uint32_t ncols, reader->ReadU32());
  entry.columns.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    storage::ZoneColumnStats& col = entry.columns[i];
    VDB_ASSIGN_OR_RETURN(col.null_count, reader->ReadU64());
    VDB_ASSIGN_OR_RETURN(uint8_t has_values, reader->ReadU8());
    col.has_values = has_values != 0;
    VDB_ASSIGN_OR_RETURN(uint64_t min_bits, reader->ReadU64());
    VDB_ASSIGN_OR_RETURN(uint64_t max_bits, reader->ReadU64());
    std::memcpy(&col.min, &min_bits, sizeof(col.min));
    std::memcpy(&col.max, &max_bits, sizeof(col.max));
  }
  return entry;
}

std::string EncodeDelete(uint32_t table_id, uint64_t page_index,
                         uint16_t slot) {
  std::string out;
  AppendU32(&out, table_id);
  AppendU64(&out, page_index);
  AppendU16(&out, slot);
  return out;
}

Result<DeletePayload> DecodeDelete(std::string_view payload) {
  PayloadReader reader(payload);
  DeletePayload result;
  VDB_ASSIGN_OR_RETURN(result.table_id, reader.ReadU32());
  VDB_ASSIGN_OR_RETURN(result.page_index, reader.ReadU64());
  VDB_ASSIGN_OR_RETURN(result.slot, reader.ReadU16());
  if (!reader.AtEnd()) {
    return Status::IOError("delete payload has trailing bytes");
  }
  return result;
}

}  // namespace vdb::catalog::walenc
