#include "catalog/stats.h"

#include <algorithm>
#include <cmath>

namespace vdb::catalog {

Histogram Histogram::Build(std::vector<double> values, int num_buckets) {
  Histogram hist;
  if (values.empty() || num_buckets < 1) return hist;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  // Store an evenly spaced sample of the sorted values (a sampled CDF).
  // Unlike deduplicated bucket bounds, repeated samples of a hot value
  // represent its mass correctly.
  const size_t samples =
      std::min<size_t>(static_cast<size_t>(num_buckets) + 1, n);
  hist.bounds_.reserve(samples + 1);
  for (size_t s = 0; s < samples; ++s) {
    hist.bounds_.push_back(values[s * (n - 1) / (samples - 1 > 0
                                                     ? samples - 1
                                                     : 1)]);
  }
  if (hist.bounds_.size() < 2) hist.bounds_.push_back(hist.bounds_.back());
  return hist;
}

double Histogram::FractionBelow(double v) const {
  if (empty()) return 0.5;
  if (v < bounds_.front()) return 0.0;
  if (v >= bounds_.back()) return 1.0;
  // bounds_ is a sorted sample of the column; the rank of v among the
  // samples estimates the CDF. upper_bound counts duplicates of v, so mass
  // concentrated on a single value produces the right jump.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const size_t i = static_cast<size_t>(it - bounds_.begin());  // >= 1
  // Sample j sits at quantile j / (size - 1); v lies between samples i-1
  // and i, so its CDF is ((i - 1) + within) / (size - 1).
  const double denom = static_cast<double>(bounds_.size()) - 1.0;
  const double lo = bounds_[i - 1];
  const double hi = bounds_[i];
  const double within = hi > lo ? (v - lo) / (hi - lo) : 0.0;
  return std::clamp((static_cast<double>(i) - 1.0 + within) / denom, 0.0,
                    1.0);
}

double Histogram::FractionBetween(double lo, double hi) const {
  if (empty()) return 0.3;  // optimizer default guess
  if (hi < lo) return 0.0;
  const double f = FractionBelow(hi) - FractionBelow(lo);
  return std::clamp(f, 0.0, 1.0);
}

}  // namespace vdb::catalog
