#include "catalog/batch.h"

#include <functional>

#include "util/logging.h"

namespace vdb::catalog {

void ValueVector::Reset(TypeId type, size_t n) {
  type_ = type;
  size_ = n;
  nulls_.assign(n, 0);
  switch (type) {
    case TypeId::kDouble:
      doubles_.resize(n);
      break;
    case TypeId::kString:
      // resize (not assign) keeps each retained string's heap buffer.
      strings_.resize(n);
      break;
    default:
      ints_.resize(n);
      break;
  }
}

Value ValueVector::GetValue(size_t i) const {
  if (nulls_[i] != 0) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(ints_[i] != 0);
    case TypeId::kDouble:
      return Value::Double(doubles_[i]);
    case TypeId::kDate:
      return Value::Date(ints_[i]);
    case TypeId::kString:
      return Value::String(strings_[i]);
    default:
      return Value::Int64(ints_[i]);
  }
}

void ValueVector::SetValue(size_t i, const Value& v) {
  if (v.is_null()) {
    nulls_[i] = 1;
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      SetInt64(i, v.AsBool() ? 1 : 0);
      break;
    case TypeId::kDouble:
      SetDouble(i, v.AsDouble());
      break;
    case TypeId::kString:
      SetString(i, v.AsString());
      break;
    default:
      SetInt64(i, v.type() == TypeId::kBool ? (v.AsBool() ? 1 : 0)
                                            : v.AsInt64());
      break;
  }
}

void ValueVector::CopyFrom(const ValueVector& src, size_t src_row,
                           size_t dst_row) {
  VDB_DCHECK(src.type_ == type_);
  if (src.nulls_[src_row] != 0) {
    nulls_[dst_row] = 1;
    return;
  }
  nulls_[dst_row] = 0;
  switch (type_) {
    case TypeId::kDouble:
      doubles_[dst_row] = src.doubles_[src_row];
      break;
    case TypeId::kString:
      strings_[dst_row] = src.strings_[src_row];
      break;
    default:
      ints_[dst_row] = src.ints_[src_row];
      break;
  }
}

size_t ValueVector::HashAt(size_t i) const {
  if (nulls_[i] != 0) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kString:
      return std::hash<std::string>{}(strings_[i]);
    case TypeId::kDouble:
      return std::hash<double>{}(doubles_[i]);
    default:
      return std::hash<int64_t>{}(ints_[i]);
  }
}

int CompareAt(const ValueVector& a, size_t i, const ValueVector& b,
              size_t j) {
  const TypeId at = a.type();
  const TypeId bt = b.type();
  if (at == TypeId::kString || bt == TypeId::kString) {
    VDB_CHECK(at == TypeId::kString && bt == TypeId::kString)
        << "comparing string with non-string";
    return a.GetString(i).compare(b.GetString(j));
  }
  if (at == TypeId::kDouble || bt == TypeId::kDouble) {
    const double da = a.AsDouble(i);
    const double db = b.AsDouble(j);
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  const int64_t ia = a.GetInt64(i);
  const int64_t ib = b.GetInt64(j);
  if (ia < ib) return -1;
  if (ia > ib) return 1;
  return 0;
}

int CompareWithValue(const ValueVector& a, size_t i, const Value& v) {
  const TypeId at = a.type();
  const TypeId vt = v.type();
  if (at == TypeId::kString || vt == TypeId::kString) {
    VDB_CHECK(at == TypeId::kString && vt == TypeId::kString)
        << "comparing string with non-string";
    return a.GetString(i).compare(v.AsString());
  }
  if (at == TypeId::kDouble || vt == TypeId::kDouble) {
    const double da = a.AsDouble(i);
    const double db = v.AsDouble();
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  const int64_t ia = a.GetInt64(i);
  const int64_t ib = v.AsInt64();
  if (ia < ib) return -1;
  if (ia > ib) return 1;
  return 0;
}

void Batch::Reset(const std::vector<TypeId>& types, size_t n) {
  columns.resize(types.size());
  for (size_t c = 0; c < types.size(); ++c) {
    columns[c].Reset(types[c], n);
  }
  num_rows = 0;
  sel.clear();
}

void Batch::SetRowCount(size_t n) {
  num_rows = n;
  sel.resize(n);
  std::iota(sel.begin(), sel.end(), 0);
}

std::vector<Value> Batch::RowAsTuple(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns.size());
  for (const ValueVector& column : columns) {
    out.push_back(column.GetValue(row));
  }
  return out;
}

}  // namespace vdb::catalog
