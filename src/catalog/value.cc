#include "catalog/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>

#include "util/logging.h"

namespace vdb::catalog {

const char* TypeIdName(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "?";
}

bool IsNumericType(TypeId type) {
  return type == TypeId::kInt64 || type == TypeId::kDouble ||
         type == TypeId::kDate;
}

int64_t DateFromYmd(int year, int month, int day) {
  // Howard Hinnant's days_from_civil algorithm.
  const int y = year - (month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

std::string DateToString(int64_t days) {
  // civil_from_days, inverse of the above.
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  const int64_t year = y + (m <= 2 ? 1 : 0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u",
                static_cast<long long>(year), m, d);
  return buf;
}

Result<int64_t> ParseDate(const std::string& text) {
  int year = 0;
  int month = 0;
  int day = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &year, &month, &day) != 3 ||
      month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument("malformed date: '" + text + "'");
  }
  return DateFromYmd(year, month, day);
}

bool Value::AsBool() const {
  VDB_DCHECK(!is_null_);
  if (type_ == TypeId::kBool) return std::get<bool>(data_);
  if (std::holds_alternative<int64_t>(data_)) {
    return std::get<int64_t>(data_) != 0;
  }
  VDB_CHECK(false) << "AsBool on non-bool value";
  return false;
}

int64_t Value::AsInt64() const {
  VDB_DCHECK(!is_null_);
  if (std::holds_alternative<int64_t>(data_)) {
    return std::get<int64_t>(data_);
  }
  if (std::holds_alternative<double>(data_)) {
    return static_cast<int64_t>(std::get<double>(data_));
  }
  if (std::holds_alternative<bool>(data_)) {
    return std::get<bool>(data_) ? 1 : 0;
  }
  VDB_CHECK(false) << "AsInt64 on string value";
  return 0;
}

double Value::AsDouble() const {
  VDB_DCHECK(!is_null_);
  if (std::holds_alternative<double>(data_)) return std::get<double>(data_);
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  if (std::holds_alternative<bool>(data_)) {
    return std::get<bool>(data_) ? 1.0 : 0.0;
  }
  VDB_CHECK(false) << "AsDouble on string value";
  return 0.0;
}

const std::string& Value::AsString() const {
  VDB_DCHECK(!is_null_);
  VDB_CHECK(type_ == TypeId::kString) << "AsString on non-string value";
  return std::get<std::string>(data_);
}

int Value::Compare(const Value& a, const Value& b) {
  VDB_DCHECK(!a.is_null_ && !b.is_null_);
  if (a.type_ == TypeId::kString || b.type_ == TypeId::kString) {
    VDB_CHECK(a.type_ == TypeId::kString && b.type_ == TypeId::kString)
        << "comparing string with non-string";
    return a.AsString().compare(b.AsString());
  }
  if (a.type_ == TypeId::kDouble || b.type_ == TypeId::kDouble) {
    const double da = a.AsDouble();
    const double db = b.AsDouble();
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  const int64_t ia = a.AsInt64();
  const int64_t ib = b.AsInt64();
  if (ia < ib) return -1;
  if (ia > ib) return 1;
  return 0;
}

double Value::NumericKey() const {
  if (is_null_) return 0.0;
  if (type_ == TypeId::kString) {
    const std::string& s = AsString();
    double key = 0.0;
    double scale = 1.0;
    for (size_t i = 0; i < 8 && i < s.size(); ++i) {
      scale /= 256.0;
      key += static_cast<double>(static_cast<unsigned char>(s[i])) * scale;
    }
    return key;
  }
  return AsDouble();
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return AsBool() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(AsInt64());
    case TypeId::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case TypeId::kDate:
      return DateToString(AsInt64());
    case TypeId::kString:
      return AsString();
  }
  return "?";
}

size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kString:
      return std::hash<std::string>{}(AsString());
    case TypeId::kDouble:
      return std::hash<double>{}(AsDouble());
    default:
      return std::hash<int64_t>{}(AsInt64());
  }
}

}  // namespace vdb::catalog
