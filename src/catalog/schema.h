// Columns, schemas, tuples, and record (de)serialization between tuples
// and slotted-page bytes.

#ifndef VDB_CATALOG_SCHEMA_H_
#define VDB_CATALOG_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "catalog/batch.h"
#include "catalog/value.h"
#include "util/result.h"

namespace vdb::catalog {

/// One column of a table or intermediate result.
struct Column {
  std::string name;
  TypeId type = TypeId::kInt64;

  /// Expected storage width in bytes, used for page-count estimation.
  /// Strings use `avg_width` (set from data by Analyze; default 16).
  uint32_t avg_width = 8;

  Column() = default;
  Column(std::string column_name, TypeId column_type)
      : name(std::move(column_name)), type(column_type) {
    avg_width = column_type == TypeId::kString ? 16 : 8;
  }
  Column(std::string column_name, TypeId column_type, uint32_t width)
      : name(std::move(column_name)), type(column_type), avg_width(width) {}
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with `name` (case-insensitive), or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Average serialized tuple width in bytes.
  uint32_t AvgTupleWidth() const;

  /// Concatenation of this schema and `other` (for join outputs).
  Schema Concat(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A tuple is a row of values positionally matching some Schema.
using Tuple = std::vector<Value>;

/// Serializes a tuple for heap storage. Format per field:
/// [u8 null][payload], where payload is 8 bytes for fixed types and
/// u32 length + bytes for strings.
std::string SerializeTuple(const Tuple& tuple, const Schema& schema);

/// Inverse of SerializeTuple. Fails on truncated input.
Result<Tuple> DeserializeTuple(std::string_view data, const Schema& schema);

/// Deserializes one record straight into physical row `row` of `batch`,
/// without boxing fields into Values. The batch must already be Reset to
/// this schema's column types with capacity > `row`.
///
/// `wanted`, when non-null, is a per-schema-position mask (same length as
/// the schema): columns with a zero entry are skipped over in the record
/// and left NULL in the batch instead of being materialized. Scans use
/// this for lazy materialization of columns the plan never reads.
Status DeserializeTupleInto(std::string_view data, const Schema& schema,
                            Batch* batch, size_t row,
                            const std::vector<uint8_t>* wanted = nullptr);

/// Bulk form of DeserializeTupleInto: decodes `count` records into
/// consecutive physical rows of `batch` starting at `start_row`. The
/// per-column type and mask dispatch is hoisted out of the row loop,
/// skipped columns are nulled with one bulk store per batch instead of
/// a per-row write, and kept fixed-width columns write through raw
/// payload pointers — the preferred path for page-at-a-time scans.
Status DeserializeRecordsInto(const std::string_view* records, size_t count,
                              const Schema& schema, Batch* batch,
                              size_t start_row,
                              const std::vector<uint8_t>* wanted = nullptr);

/// Strided variant for callers whose record views are embedded in a
/// larger per-record struct (e.g. a heap scan's RecordView array):
/// record `r` is read from `records + r * stride_bytes`, so the caller
/// does not have to repack views into a dense array first. `stride_bytes`
/// must be a multiple of alignof(std::string_view);
/// `stride_bytes == sizeof(std::string_view)` is the dense case above.
Status DeserializeRecordsInto(const std::string_view* records,
                              size_t stride_bytes, size_t count,
                              const Schema& schema, Batch* batch,
                              size_t start_row,
                              const std::vector<uint8_t>* wanted = nullptr);

/// Renders a tuple as "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple);

}  // namespace vdb::catalog

#endif  // VDB_CATALOG_SCHEMA_H_
