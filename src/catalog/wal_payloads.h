// Serialization of catalog mutations (create table/index, insert,
// delete, checkpoint image) into WAL record payloads and back, shared
// by the logging path and recovery replay (DESIGN.md §14).

#ifndef VDB_CATALOG_WAL_PAYLOADS_H_
#define VDB_CATALOG_WAL_PAYLOADS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "catalog/schema.h"
#include "storage/zone_map.h"
#include "util/result.h"

namespace vdb::catalog::walenc {

/// Encoders/decoders for the typed payloads carried by WAL records
/// (storage/wal.h treats payloads as opaque bytes; the formats live here
/// because they need Schema). All integers little-endian; strings are
/// [u16 length][bytes]. Tables are addressed by creation ordinal
/// ("table id"), heap pages by append position within their table — both
/// stable across a rebuild, unlike global PageIds. See DESIGN.md §14 for
/// the format table.

// Low-level append/read helpers, shared with the checkpoint image writer.
void AppendU8(std::string* out, uint8_t v);
void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendString(std::string* out, std::string_view s);
void AppendSchema(std::string* out, const Schema& schema);

/// A bounds-checked forward reader over an encoded payload. Read methods
/// fail with IOError once the input is exhausted (torn or corrupt data).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<std::string> ReadString();
  Result<Schema> ReadSchema();
  /// A view of the next `n` raw bytes (e.g. a checkpoint page image).
  Result<std::string_view> ReadBytes(size_t n);
  /// Everything not yet consumed (e.g. trailing record bytes).
  std::string_view Rest() const { return data_.substr(pos_); }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// kCreateTable: table name + schema.
std::string EncodeCreateTable(const std::string& name, const Schema& schema);
struct CreateTablePayload {
  std::string name;
  Schema schema;
};
Result<CreateTablePayload> DecodeCreateTable(std::string_view payload);

// kCreateIndex: index name + table id + column ordinal.
std::string EncodeCreateIndex(const std::string& index_name,
                              uint32_t table_id, uint32_t column_index);
struct CreateIndexPayload {
  std::string index_name;
  uint32_t table_id = 0;
  uint32_t column_index = 0;
};
Result<CreateIndexPayload> DecodeCreateIndex(std::string_view payload);

// kInsert: target (table id, page index, slot) + serialized record bytes.
// Physiological redo: replay re-appends the record and verifies it lands
// at exactly this position.
std::string EncodeInsert(uint32_t table_id, uint64_t page_index,
                         uint16_t slot, std::string_view record);
struct InsertPayload {
  uint32_t table_id = 0;
  uint64_t page_index = 0;
  uint16_t slot = 0;
  std::string_view record;
};
Result<InsertPayload> DecodeInsert(std::string_view payload);

// Checkpoint zone-entry section (version >= 2 images): one entry per heap
// page, appended after the page image so recovery restores zone maps
// without rescanning. Layout: [u8 tracked][u64 row_count][u32 num_columns]
// then per column [u64 null_count][u8 has_values][u64 min_bits][u64
// max_bits] (doubles as IEEE-754 bit patterns, preserving NaN/inf).
void AppendZoneEntry(std::string* out, const storage::ZoneEntry& entry);
Result<storage::ZoneEntry> ReadZoneEntry(PayloadReader* reader);

// kDelete: target (table id, page index, slot).
std::string EncodeDelete(uint32_t table_id, uint64_t page_index,
                         uint16_t slot);
struct DeletePayload {
  uint32_t table_id = 0;
  uint64_t page_index = 0;
  uint16_t slot = 0;
};
Result<DeletePayload> DecodeDelete(std::string_view payload);

}  // namespace vdb::catalog::walenc

#endif  // VDB_CATALOG_WAL_PAYLOADS_H_
