// The catalog: tables (heap files + schemas), secondary B+-tree indexes,
// and per-column statistics, with insert/delete maintaining all three
// (and WAL-logging mutations when durability is on).

#ifndef VDB_CATALOG_CATALOG_H_
#define VDB_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "catalog/value.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/wal.h"
#include "util/result.h"

namespace vdb::catalog {

struct TableInfo;

/// A secondary B+-tree index over one column of a table. Index keys are
/// int64; only BIGINT and DATE columns are indexable (as in the OSDB TPC-H
/// schema the paper uses, where indexes are on keys and dates).
struct IndexInfo {
  std::string name;
  TableInfo* table = nullptr;
  size_t column_index = 0;
  std::unique_ptr<storage::BPlusTree> tree;
};

/// A base table: schema, heap storage, indexes, and statistics.
struct TableInfo {
  std::string name;
  Schema schema;
  std::unique_ptr<storage::HeapFile> heap;
  std::vector<IndexInfo*> indexes;  // owned by the Catalog
  TableStats stats;
};

/// The catalog owns all tables and indexes of one database instance.
/// It provides schema-aware tuple insertion (keeping indexes in sync) and
/// the ANALYZE pass that collects optimizer statistics.
class Catalog {
 public:
  Catalog(storage::DiskManager* disk, storage::BufferPool* pool)
      : disk_(disk), pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails on duplicate name or empty schema.
  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema);

  Result<TableInfo*> GetTable(const std::string& name) const;

  std::vector<TableInfo*> Tables() const;

  /// Creates a B+-tree index over `column_name` of `table_name` and
  /// back-fills it from existing rows. The column must be BIGINT or DATE.
  Result<IndexInfo*> CreateIndex(const std::string& index_name,
                                 const std::string& table_name,
                                 const std::string& column_name);

  Result<IndexInfo*> GetIndex(const std::string& name) const;

  /// Inserts a tuple, updating all indexes of the table.
  Status Insert(TableInfo* table, const Tuple& tuple);

  /// Deletes one record by id, leaving index entries behind (index scans
  /// re-check the heap, mirroring the append-mostly heap design). Logged
  /// when a WAL is attached.
  Status Delete(TableInfo* table, storage::RecordId rid);

  /// Attaches the database's write-ahead log (nullptr detaches, e.g.
  /// during replay so redone work is not re-logged). With a WAL attached,
  /// CreateTable/CreateIndex/Insert/Delete append redo records before
  /// returning; durability of those records is governed by the group
  /// commit policy (WriteAheadLog::Flush), not by this class.
  void SetWal(storage::WriteAheadLog* wal) { wal_ = wal; }

  /// Creation ordinal of `table` — the stable id WAL records use.
  Result<uint32_t> TableId(const TableInfo* table) const;

  /// Inverse of TableId.
  Result<TableInfo*> TableById(uint32_t table_id) const;

  /// Scans the table and recomputes its statistics (row/page counts, and
  /// per-column NDV, min/max, null fraction, equi-depth histogram).
  Status Analyze(TableInfo* table, int histogram_buckets = 32);

  /// Analyze every table.
  Status AnalyzeAll(int histogram_buckets = 32);

 private:
  storage::DiskManager* disk_;
  storage::BufferPool* pool_;
  storage::WriteAheadLog* wal_ = nullptr;
  std::vector<std::unique_ptr<TableInfo>> tables_;
  std::vector<std::unique_ptr<IndexInfo>> indexes_;
};

/// Extracts the int64 index key from a tuple column. Fails for NULLs and
/// non-indexable types.
Result<int64_t> IndexKeyFromValue(const Value& value);

/// One zone-map sample per column of `tuple` (Value::NumericKey plus the
/// null flag), the form HeapFile::Insert folds into its per-page
/// statistics. Also used by recovery replay to rebuild zone maps from
/// logged records.
std::vector<storage::ZoneSample> ComputeZoneSamples(const Tuple& tuple);

}  // namespace vdb::catalog

#endif  // VDB_CATALOG_CATALOG_H_
