// Column-major batches for the vectorized engine: typed value vectors
// with null maps and a selection vector (DESIGN.md §12).

#ifndef VDB_CATALOG_BATCH_H_
#define VDB_CATALOG_BATCH_H_

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "catalog/value.h"

namespace vdb::catalog {

/// One column of a batch: a typed, column-major array of values with a
/// byte-per-row null map. Storage is type-specialized (int64-family values
/// share `ints_`, doubles and strings have their own arrays) so the hot
/// execution paths never box scalars into `Value`. `Reset` keeps the
/// backing arrays' capacity — in particular each `std::string` slot keeps
/// its heap buffer — so a vector cycled once per batch stops allocating
/// after the first few batches.
class ValueVector {
 public:
  ValueVector() = default;
  explicit ValueVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const { return size_; }

  /// Clears the vector to `n` rows of type `type`, all non-null with
  /// unspecified payloads. Callers fill rows with SetX/SetNull.
  void Reset(TypeId type, size_t n);

  bool IsNull(size_t i) const { return nulls_[i] != 0; }
  void SetNull(size_t i) { nulls_[i] = 1; }
  void SetNotNull(size_t i) { nulls_[i] = 0; }

  /// Raw payload accessors. Int64, Date, and Bool all use the int64
  /// channel (Bool as 0/1), mirroring the serialized tuple format.
  int64_t GetInt64(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }
  std::string* MutableString(size_t i) { return &strings_[i]; }

  void SetInt64(size_t i, int64_t v) {
    nulls_[i] = 0;
    ints_[i] = v;
  }
  void SetDouble(size_t i, double v) {
    nulls_[i] = 0;
    doubles_[i] = v;
  }
  void SetString(size_t i, std::string_view v) {
    nulls_[i] = 0;
    strings_[i].assign(v.data(), v.size());
  }

  /// Raw array access for the SIMD kernel library (src/plan/kernels/):
  /// contiguous payload and null-byte storage. The int64 channel backs
  /// Int64, Date, and Bool vectors; null bytes are 0 (valid) or 1 (null).
  const int64_t* Int64Data() const { return ints_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  const uint8_t* NullData() const { return nulls_.data(); }
  int64_t* MutableInt64Data() { return ints_.data(); }
  double* MutableDoubleData() { return doubles_.data(); }
  uint8_t* MutableNullData() { return nulls_.data(); }

  /// Boxes row `i` as a Value of this vector's type.
  Value GetValue(size_t i) const;

  /// Stores `v` into row `i`, coercing to this vector's type.
  void SetValue(size_t i, const Value& v);

  /// Copies row `src_row` of `src` (which must have the same type) into
  /// row `dst_row` of this vector.
  void CopyFrom(const ValueVector& src, size_t src_row, size_t dst_row);

  /// Numeric payload as double (int64-family coerces), for mixed-type
  /// comparisons. Row must be non-null.
  double AsDouble(size_t i) const {
    return type_ == TypeId::kDouble ? doubles_[i]
                                    : static_cast<double>(ints_[i]);
  }

  /// Hash of row `i`, identical to Value::Hash of GetValue(i).
  size_t HashAt(size_t i) const;

 private:
  TypeId type_ = TypeId::kInt64;
  size_t size_ = 0;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

/// Three-way comparison of `a[i]` vs `b[j]` (both non-null), identical to
/// Value::Compare on the boxed values.
int CompareAt(const ValueVector& a, size_t i, const ValueVector& b,
              size_t j);

/// Three-way comparison of `a[i]` (non-null) vs a non-null Value.
int CompareWithValue(const ValueVector& a, size_t i, const Value& v);

/// A batch of rows in column-major layout plus a selection vector. The
/// selection vector lists the *active* row indices in ascending order;
/// filters shrink it in place without moving column data. Columns always
/// hold `num_rows` physical rows; `sel` references a subset of them.
struct Batch {
  /// Default number of rows produced per batch by scans.
  static constexpr size_t kDefaultRows = 1024;

  std::vector<ValueVector> columns;
  std::vector<uint32_t> sel;
  size_t num_rows = 0;

  size_t NumActive() const { return sel.size(); }

  /// Re-types the batch to `types` with capacity for `n` rows and no
  /// active rows. Call SetRowCount once the columns are filled.
  void Reset(const std::vector<TypeId>& types, size_t n);

  /// Declares the first `n` physical rows valid and selects all of them.
  void SetRowCount(size_t n);

  /// Boxes active row `row` (a physical index, i.e. an element of `sel`)
  /// as a row-major tuple.
  std::vector<Value> RowAsTuple(size_t row) const;
};

}  // namespace vdb::catalog

#endif  // VDB_CATALOG_BATCH_H_
