#include "catalog/catalog.h"

#include <algorithm>
#include <unordered_set>

#include "catalog/wal_payloads.h"
#include "util/string_util.h"

namespace vdb::catalog {

Result<int64_t> IndexKeyFromValue(const Value& value) {
  if (value.is_null()) {
    return Status::NotSupported("NULL keys are not indexed");
  }
  if (value.type() != TypeId::kInt64 && value.type() != TypeId::kDate) {
    return Status::NotSupported(
        std::string("cannot index column of type ") +
        TypeIdName(value.type()));
  }
  return value.AsInt64();
}

std::vector<storage::ZoneSample> ComputeZoneSamples(const Tuple& tuple) {
  std::vector<storage::ZoneSample> samples;
  samples.reserve(tuple.size());
  for (const Value& value : tuple) {
    samples.push_back(
        storage::ZoneSample{value.NumericKey(), value.is_null()});
  }
  return samples;
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        const Schema& schema) {
  if (schema.NumColumns() == 0) {
    return Status::InvalidArgument("table must have at least one column");
  }
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name, name)) {
      return Status::AlreadyExists("table '" + name + "' already exists");
    }
  }
  auto table = std::make_unique<TableInfo>();
  table->name = name;
  table->schema = schema;
  table->heap = std::make_unique<storage::HeapFile>(disk_, pool_);
  tables_.push_back(std::move(table));
  if (wal_ != nullptr) {
    VDB_RETURN_NOT_OK(
        wal_->Append(storage::WalRecordType::kCreateTable,
                     walenc::EncodeCreateTable(name, schema))
            .status());
  }
  return tables_.back().get();
}

Result<uint32_t> Catalog::TableId(const TableInfo* table) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].get() == table) return static_cast<uint32_t>(i);
  }
  return Status::NotFound("table not registered in this catalog");
}

Result<TableInfo*> Catalog::TableById(uint32_t table_id) const {
  if (table_id >= tables_.size()) {
    return Status::NotFound("no table with id " + std::to_string(table_id));
  }
  return tables_[table_id].get();
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name, name)) return table.get();
  }
  return Status::NotFound("table '" + name + "' not found");
}

std::vector<TableInfo*> Catalog::Tables() const {
  std::vector<TableInfo*> result;
  result.reserve(tables_.size());
  for (const auto& table : tables_) result.push_back(table.get());
  return result;
}

Result<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                        const std::string& table_name,
                                        const std::string& column_name) {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name, index_name)) {
      return Status::AlreadyExists("index '" + index_name +
                                   "' already exists");
    }
  }
  VDB_ASSIGN_OR_RETURN(TableInfo * table, GetTable(table_name));
  VDB_ASSIGN_OR_RETURN(size_t column_index,
                       table->schema.ColumnIndex(column_name));
  const TypeId type = table->schema.column(column_index).type;
  if (type != TypeId::kInt64 && type != TypeId::kDate) {
    return Status::NotSupported(
        std::string("cannot index column of type ") + TypeIdName(type));
  }
  auto index = std::make_unique<IndexInfo>();
  index->name = index_name;
  index->table = table;
  index->column_index = column_index;
  index->tree = std::make_unique<storage::BPlusTree>(disk_, pool_);
  // Back-fill from existing rows.
  for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
    VDB_ASSIGN_OR_RETURN(Tuple tuple,
                         DeserializeTuple(it.record(), table->schema));
    const Value& value = tuple[column_index];
    if (value.is_null()) continue;
    VDB_ASSIGN_OR_RETURN(int64_t key, IndexKeyFromValue(value));
    VDB_RETURN_NOT_OK(index->tree->Insert(key, it.rid().Pack()));
  }
  indexes_.push_back(std::move(index));
  table->indexes.push_back(indexes_.back().get());
  if (wal_ != nullptr) {
    VDB_ASSIGN_OR_RETURN(uint32_t table_id, TableId(table));
    VDB_RETURN_NOT_OK(
        wal_->Append(storage::WalRecordType::kCreateIndex,
                     walenc::EncodeCreateIndex(
                         index_name, table_id,
                         static_cast<uint32_t>(column_index)))
            .status());
  }
  return indexes_.back().get();
}

Result<IndexInfo*> Catalog::GetIndex(const std::string& name) const {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name, name)) return index.get();
  }
  return Status::NotFound("index '" + name + "' not found");
}

Status Catalog::Insert(TableInfo* table, const Tuple& tuple) {
  if (tuple.size() != table->schema.NumColumns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " +
        std::to_string(table->schema.NumColumns()));
  }
  const std::string record = SerializeTuple(tuple, table->schema);
  const std::vector<storage::ZoneSample> samples = ComputeZoneSamples(tuple);
  VDB_ASSIGN_OR_RETURN(storage::RecordId rid,
                       table->heap->Insert(record, &samples));
  if (wal_ != nullptr) {
    VDB_ASSIGN_OR_RETURN(uint32_t table_id, TableId(table));
    VDB_ASSIGN_OR_RETURN(uint64_t page_index,
                         table->heap->PageIndexOf(rid.page_id));
    VDB_ASSIGN_OR_RETURN(
        storage::WriteAheadLog::AppendInfo info,
        wal_->Append(storage::WalRecordType::kInsert,
                     walenc::EncodeInsert(table_id, page_index, rid.slot,
                                          record)));
    table->heap->StampPageLsn(page_index, info.lsn);
  }
  for (IndexInfo* index : table->indexes) {
    const Value& value = tuple[index->column_index];
    if (value.is_null()) continue;
    VDB_ASSIGN_OR_RETURN(int64_t key, IndexKeyFromValue(value));
    VDB_RETURN_NOT_OK(index->tree->Insert(key, rid.Pack()));
  }
  return Status::OK();
}

Status Catalog::Delete(TableInfo* table, storage::RecordId rid) {
  VDB_RETURN_NOT_OK(table->heap->Delete(rid));
  if (wal_ != nullptr) {
    VDB_ASSIGN_OR_RETURN(uint32_t table_id, TableId(table));
    VDB_ASSIGN_OR_RETURN(uint64_t page_index,
                         table->heap->PageIndexOf(rid.page_id));
    VDB_ASSIGN_OR_RETURN(
        storage::WriteAheadLog::AppendInfo info,
        wal_->Append(storage::WalRecordType::kDelete,
                     walenc::EncodeDelete(table_id, page_index, rid.slot)));
    table->heap->StampPageLsn(page_index, info.lsn);
  }
  return Status::OK();
}

Status Catalog::Analyze(TableInfo* table, int histogram_buckets) {
  const size_t num_columns = table->schema.NumColumns();
  std::vector<ColumnStats> stats(num_columns);
  std::vector<std::vector<double>> keys(num_columns);
  std::vector<std::unordered_set<size_t>> distinct(num_columns);
  std::vector<double> width_sums(num_columns, 0.0);
  uint64_t rows = 0;

  for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
    VDB_ASSIGN_OR_RETURN(Tuple tuple,
                         DeserializeTuple(it.record(), table->schema));
    ++rows;
    for (size_t c = 0; c < num_columns; ++c) {
      const Value& value = tuple[c];
      if (value.is_null()) {
        stats[c].null_count++;
        continue;
      }
      stats[c].non_null_count++;
      const double key = value.NumericKey();
      keys[c].push_back(key);
      distinct[c].insert(value.Hash());
      if (value.type() == TypeId::kString) {
        width_sums[c] += static_cast<double>(value.AsString().size());
      } else {
        width_sums[c] += 8.0;
      }
    }
  }

  for (size_t c = 0; c < num_columns; ++c) {
    ColumnStats& cs = stats[c];
    cs.ndv = distinct[c].size();
    if (!keys[c].empty()) {
      const auto [mn, mx] =
          std::minmax_element(keys[c].begin(), keys[c].end());
      cs.min = *mn;
      cs.max = *mx;
      cs.avg_width = width_sums[c] / static_cast<double>(cs.non_null_count);
      cs.histogram = Histogram::Build(std::move(keys[c]), histogram_buckets);
    }
  }

  table->stats.row_count = rows;
  table->stats.page_count = table->heap->NumPages();
  table->stats.columns = std::move(stats);
  return Status::OK();
}

Status Catalog::AnalyzeAll(int histogram_buckets) {
  for (const auto& table : tables_) {
    VDB_RETURN_NOT_OK(Analyze(table.get(), histogram_buckets));
  }
  return Status::OK();
}

}  // namespace vdb::catalog
