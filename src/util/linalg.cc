#include "util/linalg.h"

#include <cmath>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/logging.h"

namespace vdb {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::TransposeTimes(const Matrix& other) const {
  VDB_CHECK(rows_ == other.rows_);
  Matrix result(cols_, other.cols_);
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t k = 0; k < rows_; ++k) {
      const double aki = At(k, i);
      if (aki == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        result.At(i, j) += aki * other.At(k, j);
      }
    }
  }
  return result;
}

std::vector<double> Matrix::TimesVector(const std::vector<double>& vec) const {
  VDB_CHECK(vec.size() == cols_);
  std::vector<double> result(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += At(r, c) * vec[c];
    result[r] = sum;
  }
  return result;
}

std::vector<double> Matrix::TransposeTimesVector(
    const std::vector<double>& vec) const {
  VDB_CHECK(vec.size() == rows_);
  std::vector<double> result(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) result[c] += At(r, c) * vec[r];
  }
  return result;
}

Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem: matrix not square");
  }
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("SolveLinearSystem: rhs size mismatch");
  }
  const size_t n = a.rows();
  // Augmented working copy.
  Matrix work(n, n + 1);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) work.At(r, c) = a.At(r, c);
    work.At(r, n) = b[r];
  }
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(work.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(work.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      return Status::Internal("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = col; c <= n; ++c) {
        std::swap(work.At(pivot, c), work.At(col, c));
      }
    }
    const double diag = work.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = work.At(r, col) / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c <= n; ++c) {
        work.At(r, c) -= factor * work.At(col, c);
      }
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double sum = work.At(ri, n);
    for (size_t c = ri + 1; c < n; ++c) sum -= work.At(ri, c) * x[c];
    x[ri] = sum / work.At(ri, ri);
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b,
                                         double ridge) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("LeastSquares: rhs size mismatch");
  }
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument(
        "LeastSquares: underdetermined system (rows < cols)");
  }
  Matrix ata = a.TransposeTimes(a);
  for (size_t i = 0; i < ata.rows(); ++i) ata.At(i, i) += ridge;
  std::vector<double> atb = a.TransposeTimesVector(b);
  return SolveLinearSystem(ata, atb);
}

Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& a, const std::vector<double>& b, double ridge) {
  static obs::Counter* const solves =
      obs::MetricsRegistry::Global().GetCounter("linalg.nnls_solves");
  static obs::Counter* const iterations =
      obs::MetricsRegistry::Global().GetCounter("linalg.nnls_iterations");
  solves->Add();
  VDB_ASSIGN_OR_RETURN(std::vector<double> x, LeastSquares(a, b, ridge));
  std::vector<bool> clamped(x.size(), false);
  // Active-set style iteration: clamp the most negative variable to zero,
  // re-solve the reduced system, repeat. At most cols() iterations.
  for (size_t iter = 0; iter < x.size(); ++iter) {
    iterations->Add();
    // Find most negative unclamped component.
    size_t worst = x.size();
    double worst_value = -1e-12;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!clamped[i] && x[i] < worst_value) {
        worst_value = x[i];
        worst = i;
      }
    }
    if (worst == x.size()) break;  // all non-negative
    clamped[worst] = true;
    // Build reduced system over free columns.
    std::vector<size_t> free_cols;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!clamped[i]) free_cols.push_back(i);
    }
    for (size_t i = 0; i < x.size(); ++i) x[i] = 0.0;
    if (free_cols.empty()) break;
    Matrix reduced(a.rows(), free_cols.size());
    for (size_t r = 0; r < a.rows(); ++r) {
      for (size_t c = 0; c < free_cols.size(); ++c) {
        reduced.At(r, c) = a.At(r, free_cols[c]);
      }
    }
    VDB_ASSIGN_OR_RETURN(std::vector<double> reduced_x,
                         LeastSquares(reduced, b, ridge));
    for (size_t c = 0; c < free_cols.size(); ++c) {
      x[free_cols[c]] = reduced_x[c];
    }
  }
  for (double& v : x) {
    if (v < 0.0) v = 0.0;
  }
  return x;
}

double ResidualRms(const Matrix& a, const std::vector<double>& x,
                   const std::vector<double>& b) {
  std::vector<double> ax = a.TimesVector(x);
  double sum = 0.0;
  for (size_t i = 0; i < b.size(); ++i) {
    const double d = ax[i] - b[i];
    sum += d * d;
  }
  return b.empty() ? 0.0 : std::sqrt(sum / static_cast<double>(b.size()));
}

}  // namespace vdb
