#include "util/status.h"

namespace vdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kBudgetExceeded:
      return "Budget exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace vdb
