// Deterministic PRNG (xoshiro256**) used by every randomized component.

#ifndef VDB_UTIL_RANDOM_H_
#define VDB_UTIL_RANDOM_H_

#include <cstdint>

namespace vdb {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded with
/// splitmix64). All randomized components of the library (data generation,
/// randomized search restarts) use this so that every run is reproducible
/// from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator. The full 256-bit state is derived from `seed`
  /// via splitmix64, so distinct seeds give uncorrelated streams.
  void Seed(uint64_t seed);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t NextUint64();

  /// Returns a uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns a standard-normal sample (Box-Muller).
  double NextGaussian();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [1, n] with skew parameter `theta` in [0, 1).
  /// theta = 0 is uniform. Uses the standard rejection-free approximation.
  uint64_t Zipf(uint64_t n, double theta);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace vdb

#endif  // VDB_UTIL_RANDOM_H_
