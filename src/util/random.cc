#include "util/random.h"

#include <cmath>

namespace vdb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Random::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_gaussian_ = false;
}

uint64_t Random::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Random::Zipf(uint64_t n, double theta) {
  if (n <= 1 || theta <= 0.0) return 1 + Uniform(n == 0 ? 1 : n);
  // Quick-and-correct inverse-CDF over the harmonic weights would be O(n);
  // instead use the standard "zeta" approximation (Gray et al., SIGMOD'94).
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) /
                           (1.0 - theta) +
                       1.0;
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - 1.0 / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta)) return 2;
  const uint64_t rank =
      1 + static_cast<uint64_t>(static_cast<double>(n) *
                                std::pow(eta * u - eta + 1.0, alpha));
  return rank > n ? n : rank;
}

}  // namespace vdb
