// Fixed-size worker pool with a futures-style Submit API.

#ifndef VDB_UTIL_THREAD_POOL_H_
#define VDB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vdb::util {

/// A fixed-size worker pool with a futures-style Submit API.
///
/// Tasks run in FIFO submission order (each on whichever worker frees up
/// first). The pool joins all workers on destruction after draining the
/// queue, so submitted tasks always complete unless the process exits.
///
/// Thread-safe: Submit may be called concurrently from any thread,
/// including from inside a task (tasks must not *block* on futures of
/// tasks submitted to the same pool, or the pool can deadlock when all
/// workers wait — the search layer only ever blocks from the caller's
/// thread).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; values < 1 are clamped to 1.
  /// Use HardwareConcurrency() to size the pool to the machine.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Number of hardware threads, with a sane fallback of 1.
  static int HardwareConcurrency();

  /// Blocks until the queue is empty and no worker is running a task.
  /// Tasks submitted while Wait blocks extend the wait; a task that threw
  /// still counts as finished, so Wait never deadlocks on failures. Must
  /// not be called from inside a task (it would wait for itself).
  void Wait();

  /// Schedules `fn` and returns a future for its result. Exceptions
  /// thrown by `fn` propagate through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

 private:
  // A queued task plus its enqueue timestamp (0 when metrics were
  // disabled at enqueue time; see thread_pool.cc instrumentation).
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueued_nanos = 0;
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  /// Signals Wait() whenever the pool might have gone idle.
  std::condition_variable done_cv_;
  std::deque<QueuedTask> queue_;
  /// Tasks currently executing on a worker (dequeued but not finished).
  size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vdb::util

#endif  // VDB_UTIL_THREAD_POOL_H_
