// Result<T>: value-or-Status, the library's error-handling idiom.

#ifndef VDB_UTIL_RESULT_H_
#define VDB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace vdb {

/// Result<T> holds either a value of type T or an error Status.
/// This is the value-returning companion to Status, in the style of
/// arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<Plan> r = optimizer.Optimize(query);
///   if (!r.ok()) return r.status();
///   Plan plan = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs from a value (success).
  Result(T value)  // NOLINT: implicit by design, mirrors arrow::Result
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status)  // NOLINT: implicit by design
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error status to the caller.
#define VDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie()

#define VDB_ASSIGN_OR_RETURN(lhs, expr) \
  VDB_ASSIGN_OR_RETURN_IMPL(VDB_CONCAT_(_vdb_result_, __LINE__), lhs, expr)

#define VDB_CONCAT_INNER_(a, b) a##b
#define VDB_CONCAT_(a, b) VDB_CONCAT_INNER_(a, b)

}  // namespace vdb

#endif  // VDB_UTIL_RESULT_H_
