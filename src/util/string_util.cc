#include "util/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace vdb {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      result.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return result;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1])))
    --end;
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::tolower(
                              static_cast<unsigned char>(c)));
  return result;
}

std::string ToUpper(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::toupper(
                              static_cast<unsigned char>(c)));
  return result;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t v = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace vdb
