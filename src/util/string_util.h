// Small string helpers: split, join, and formatting.

#ifndef VDB_UTIL_STRING_UTIL_H_
#define VDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vdb {

/// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// ASCII lower-casing (SQL identifiers are case-insensitive in our dialect).
std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// SQL LIKE pattern match: '%' matches any run, '_' matches one character.
/// Comparison is case-sensitive, as in PostgreSQL.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Formats a double with `precision` significant decimal digits.
std::string FormatDouble(double value, int precision = 4);

/// Formats a byte count as a human-readable string ("1.5 GiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace vdb

#endif  // VDB_UTIL_STRING_UTIL_H_
