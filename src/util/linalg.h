// Small dense matrices and least-squares solvers for calibration
// fitting.

#ifndef VDB_UTIL_LINALG_H_
#define VDB_UTIL_LINALG_H_

#include <cstddef>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace vdb {

/// Small dense row-major matrix of doubles. Sized for the calibration
/// least-squares systems (tens of rows, < 10 columns), not for HPC.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Returns this^T * other. Requires rows() == other.rows().
  Matrix TransposeTimes(const Matrix& other) const;

  /// Returns this * vec. Requires vec.size() == cols().
  std::vector<double> TimesVector(const std::vector<double>& vec) const;

  /// Returns this^T * vec. Requires vec.size() == rows().
  std::vector<double> TransposeTimesVector(
      const std::vector<double>& vec) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves the square linear system A x = b by Gaussian elimination with
/// partial pivoting. Returns InvalidArgument on shape mismatch and
/// Internal if A is (numerically) singular.
Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b);

/// Solves the least-squares problem min_x ||A x - b||_2 via the normal
/// equations with Tikhonov regularization `ridge` (default: tiny jitter to
/// keep nearly-collinear calibration designs solvable).
Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& b,
                                         double ridge = 1e-9);

/// Solves least squares subject to x >= 0 by iteratively clamping negative
/// components to zero and re-solving on the active set. The calibration
/// parameters are physical times and must be non-negative.
Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& a, const std::vector<double>& b, double ridge = 1e-9);

/// Root-mean-square of (A x - b); fit diagnostics for calibration.
double ResidualRms(const Matrix& a, const std::vector<double>& x,
                   const std::vector<double>& b);

}  // namespace vdb

#endif  // VDB_UTIL_LINALG_H_
