#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace vdb::util {

namespace {

// Pool instrumentation (DESIGN.md §9). Queue depth is sampled on every
// enqueue/dequeue (both already hold the pool mutex); queue_wait measures
// enqueue -> dequeue, task_latency measures dequeue -> completion.
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* tasks_completed;
  obs::Histogram* queue_wait;
  obs::Histogram* task_latency;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return PoolMetrics{
          registry.GetGauge("thread_pool.queue_depth"),
          registry.GetCounter("thread_pool.tasks_completed"),
          registry.GetHistogram("thread_pool.queue_wait"),
          registry.GetHistogram("thread_pool.task_latency")};
    }();
    return metrics;
  }
};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Enqueue(std::function<void()> task) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  // Clock read only when a histogram will actually consume it.
  const uint64_t enqueued_nanos =
      metrics.queue_wait->recording_enabled() ? NowNanos() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(QueuedTask{std::move(task), enqueued_nanos});
    metrics.queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  const PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    if (task.enqueued_nanos != 0) {
      const uint64_t now = NowNanos();
      if (now > task.enqueued_nanos) {
        metrics.queue_wait->RecordNanos(now - task.enqueued_nanos);
      }
    }
    {
      obs::ScopedTimer latency_timer(metrics.task_latency);
      // Submit() routes exceptions into the task's future; this guard
      // covers raw closures, so a throwing task can neither kill the
      // worker thread nor strand Wait() on a never-decremented count.
      try {
        task.fn();
      } catch (...) {
      }
    }
    metrics.tasks_completed->Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vdb::util
