// Status and status codes (RocksDB/Arrow idiom).

#ifndef VDB_UTIL_STATUS_H_
#define VDB_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace vdb {

/// Error codes used across the library. Follows the RocksDB/Arrow idiom of
/// returning a Status from any operation that can fail rather than throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotSupported = 5,
  kIOError = 6,
  kResourceExhausted = 7,
  kInternal = 8,
  kBudgetExceeded = 9,
};

/// Returns a human-readable name for a status code (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// A Status encapsulates the result of an operation: success, or an error
/// code plus a message describing the failure.
///
/// Usage:
///   Status s = table->Insert(row);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Creates a success status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status BudgetExceeded(std::string msg) {
    return Status(StatusCode::kBudgetExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsBudgetExceeded() const {
    return code_ == StatusCode::kBudgetExceeded;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define VDB_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::vdb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace vdb

#endif  // VDB_UTIL_STATUS_H_
