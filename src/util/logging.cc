#include "util/logging.h"

#include <atomic>

namespace vdb {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace vdb
