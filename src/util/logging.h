// Leveled logging and the VDB_CHECK assertion macros.

#ifndef VDB_UTIL_LOGGING_H_
#define VDB_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace vdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum log level. Messages below it are dropped.
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink that emits one line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by VDB_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define VDB_LOG(level)                                                     \
  ::vdb::internal::LogMessage(::vdb::LogLevel::k##level, __FILE__,         \
                              __LINE__)                                    \
      .stream()

/// Aborts with a message if `condition` is false. Active in all builds:
/// used for programmer errors (invariant violations), not runtime errors.
#define VDB_CHECK(condition)                                            \
  if (!(condition))                                                     \
  ::vdb::internal::FatalLogMessage(__FILE__, __LINE__).stream()         \
      << "Check failed: " #condition " "

#define VDB_CHECK_OK(expr)                                              \
  if (::vdb::Status _st = (expr); !_st.ok())                            \
  ::vdb::internal::FatalLogMessage(__FILE__, __LINE__).stream()         \
      << "Check failed: " << _st.ToString() << " "

#ifndef NDEBUG
#define VDB_DCHECK(condition) VDB_CHECK(condition)
#else
#define VDB_DCHECK(condition) \
  while (false) VDB_CHECK(condition)
#endif

}  // namespace vdb

#endif  // VDB_UTIL_LOGGING_H_
