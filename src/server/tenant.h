// tenants.conf parsing: per-tenant shares, datasets, admission caps, and
// query budgets.

#ifndef VDB_SERVER_TENANT_H_
#define VDB_SERVER_TENANT_H_

#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "exec/budget.h"
#include "util/result.h"

namespace vdb::server {

/// One tenant's declaration: its VM shares, dataset, admission caps, and
/// per-query budget (DESIGN.md §13). Parsed from a tenants.conf line:
///
///   tenant <name> cpu=0.5 mem=0.5 io=0.5 dataset=tpch:0.01
///     workload=examples/workloads/tenant_alpha.sql
///     max_concurrent=8 queue=16 clients=50
///     budget_cpu_ms=0 budget_elapsed_ms=250 budget_mem_kb=0
///     budget_host_ms=2000
///
/// (shown wrapped; a tenant declaration is one line in the file)
///
/// `#` starts a comment; unknown keys are errors (typos must not silently
/// become defaults). Shares across all tenants must satisfy the VMM's
/// sum <= 1 constraint per resource — the server surfaces the VMM error
/// at startup otherwise.
struct TenantConfig {
  std::string name;
  double cpu_share = 0.25;
  double mem_share = 0.25;
  double io_share = 0.25;

  /// "tpch:<scale>" or "synthetic:<rows>". The server materializes the
  /// dataset into the tenant's private database at startup.
  std::string dataset = "tpch:0.01";

  /// Scenario file of semicolon-terminated SQL statements driven by
  /// vdb_loadgen (the server itself never reads it).
  std::string workload;

  /// Admission control: one tenant executes serially inside its VM (one
  /// Database = one simulated instance), so max_concurrent bounds the
  /// admitted-but-unfinished window and queue_depth the backlog beyond
  /// it. A request arriving with the window and backlog full is rejected
  /// immediately (fast-fail), never parked.
  int max_concurrent = 4;
  int queue_depth = 16;

  /// Closed-loop clients vdb_loadgen runs for this tenant.
  int clients = 8;

  /// Per-query hard limits (0 = unlimited on that axis).
  exec::QueryBudget budget;
};

/// Parses a tenants.conf file. Errors carry the offending line number.
Result<std::vector<TenantConfig>> LoadTenantConfigs(const std::string& path);

/// Column specs of the `events` table a "synthetic:<rows>" dataset
/// materializes (id sequential, grp Zipf 0..100, val uniform real, note
/// text). Exposed so the wire fuzzer can rebuild the identical table
/// in-process (same specs + seed kSyntheticSeed = same bits).
std::vector<datagen::ColumnSpec> SyntheticEventColumns();
inline constexpr uint64_t kSyntheticSeed = 7;

/// Parses one workload scenario file: `--` comments, statements terminated
/// by ';' (possibly spanning lines). Errors on an empty statement list.
Result<std::vector<std::string>> LoadSqlStatements(const std::string& path);

}  // namespace vdb::server

#endif  // VDB_SERVER_TENANT_H_
