#include "server/wire.h"

#include <arpa/inet.h>
#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "obs/json.h"

namespace vdb::server {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

struct CodeNameEntry {
  StatusCode code;
  const char* name;
};

constexpr CodeNameEntry kCodeNames[] = {
    {StatusCode::kOk, "Ok"},
    {StatusCode::kInvalidArgument, "InvalidArgument"},
    {StatusCode::kNotFound, "NotFound"},
    {StatusCode::kAlreadyExists, "AlreadyExists"},
    {StatusCode::kOutOfRange, "OutOfRange"},
    {StatusCode::kNotSupported, "NotSupported"},
    {StatusCode::kIOError, "IOError"},
    {StatusCode::kResourceExhausted, "ResourceExhausted"},
    {StatusCode::kInternal, "Internal"},
    {StatusCode::kBudgetExceeded, "BudgetExceeded"},
};

Status WriteFull(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. Returns false on EOF before the first byte;
/// EOF mid-buffer is an error (truncated frame).
Result<bool> ReadFull(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

void WriteStats(JsonWriter* w, const QueryStats& stats) {
  w->Key("stats");
  w->BeginObject();
  w->Key("elapsed_ms");
  w->Number(stats.elapsed_ms);
  w->Key("cpu_ms");
  w->Number(stats.cpu_ms);
  w->Key("io_ms");
  w->Number(stats.io_ms);
  w->Key("estimated_ms");
  w->Number(stats.estimated_ms);
  w->Key("host_ms");
  w->Number(stats.host_ms);
  w->Key("queue_ms");
  w->Number(stats.queue_ms);
  w->Key("physical_reads");
  w->Uint(stats.physical_reads);
  w->Key("pages_pruned");
  w->Uint(stats.pages_pruned);
  w->Key("pages_scanned");
  w->Uint(stats.pages_scanned);
  w->EndObject();
}

void ParseStats(const JsonValue& doc, QueryStats* stats) {
  const JsonValue* s = doc.Find("stats");
  if (s == nullptr || !s->is_object()) return;
  stats->elapsed_ms = s->GetNumber("elapsed_ms");
  stats->cpu_ms = s->GetNumber("cpu_ms");
  stats->io_ms = s->GetNumber("io_ms");
  stats->estimated_ms = s->GetNumber("estimated_ms");
  stats->host_ms = s->GetNumber("host_ms");
  stats->queue_ms = s->GetNumber("queue_ms");
  stats->physical_reads =
      static_cast<uint64_t>(s->GetNumber("physical_reads"));
  stats->pages_pruned = static_cast<uint64_t>(s->GetNumber("pages_pruned"));
  stats->pages_scanned =
      static_cast<uint64_t>(s->GetNumber("pages_scanned"));
}

}  // namespace

const char* StatusCodeName(StatusCode code) {
  for (const CodeNameEntry& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "Internal";
}

StatusCode StatusCodeFromName(const std::string& name) {
  for (const CodeNameEntry& entry : kCodeNames) {
    if (name == entry.name) return entry.code;
  }
  return StatusCode::kInternal;
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  char prefix[4];
  const uint32_t n = htonl(static_cast<uint32_t>(payload.size()));
  std::memcpy(prefix, &n, 4);
  VDB_RETURN_NOT_OK(WriteFull(fd, prefix, 4));
  return WriteFull(fd, payload.data(), payload.size());
}

Result<bool> ReadFrame(int fd, std::string* payload) {
  char prefix[4];
  VDB_ASSIGN_OR_RETURN(const bool alive, ReadFull(fd, prefix, 4));
  if (!alive) return false;
  uint32_t n = 0;
  std::memcpy(&n, prefix, 4);
  n = ntohl(n);
  if (n > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(n) +
                                   " exceeds protocol maximum");
  }
  payload->resize(n);
  if (n > 0) {
    VDB_ASSIGN_OR_RETURN(const bool complete,
                         ReadFull(fd, payload->data(), n));
    if (!complete) return Status::IOError("connection closed mid-frame");
  }
  return true;
}

std::string FormatRequest(const WireRequest& request) {
  JsonWriter w(-1);
  w.BeginObject();
  w.Key("tenant");
  w.String(request.tenant);
  if (!request.command.empty()) {
    w.Key("command");
    w.String(request.command);
    if (!request.arg.empty()) {
      w.Key("arg");
      w.String(request.arg);
    }
  } else {
    w.Key("sql");
    w.String(request.sql);
  }
  w.EndObject();
  return w.Take();
}

Result<WireRequest> ParseRequest(const std::string& payload) {
  JsonValue doc;
  std::string error;
  if (!obs::ParseJson(payload, &doc, &error)) {
    return Status::InvalidArgument("malformed request: " + error);
  }
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  WireRequest request;
  request.tenant = doc.GetString("tenant");
  request.sql = doc.GetString("sql");
  request.command = doc.GetString("command");
  request.arg = doc.GetString("arg");
  if (request.tenant.empty()) {
    return Status::InvalidArgument("request is missing \"tenant\"");
  }
  if (request.sql.empty() == request.command.empty()) {
    return Status::InvalidArgument(
        "request needs exactly one of \"sql\" or \"command\"");
  }
  return request;
}

std::string FormatRowsResponse(const std::vector<std::string>& column_names,
                               const std::vector<catalog::Tuple>& rows,
                               const QueryStats& stats) {
  JsonWriter w(-1);
  w.BeginObject();
  w.Key("columns");
  w.BeginArray();
  for (const std::string& name : column_names) w.String(name);
  w.EndArray();
  w.Key("rows");
  w.BeginArray();
  for (const catalog::Tuple& row : rows) {
    w.BeginArray();
    for (const catalog::Value& cell : row) {
      if (cell.is_null()) {
        w.Null();
      } else {
        w.String(cell.ToString());
      }
    }
    w.EndArray();
  }
  w.EndArray();
  WriteStats(&w, stats);
  w.EndObject();
  return w.Take();
}

std::string FormatErrorResponse(const Status& error, const QueryStats& stats) {
  JsonWriter w(-1);
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(StatusCodeName(error.code()));
  w.Key("message");
  w.String(error.message());
  w.EndObject();
  WriteStats(&w, stats);
  w.EndObject();
  return w.Take();
}

std::string FormatPayloadResponse(const std::string& raw_json) {
  JsonWriter w(-1);
  w.BeginObject();
  w.Key("payload");
  w.Raw(raw_json);
  w.EndObject();
  return w.Take();
}

Result<WireResponse> ParseResponse(const std::string& payload) {
  JsonValue doc;
  std::string error;
  if (!obs::ParseJson(payload, &doc, &error)) {
    return Status::InvalidArgument("malformed response: " + error);
  }
  if (!doc.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  WireResponse response;
  ParseStats(doc, &response.stats);
  if (const JsonValue* err = doc.Find("error"); err != nullptr) {
    if (!err->is_object()) {
      return Status::InvalidArgument("response \"error\" must be an object");
    }
    const StatusCode code = StatusCodeFromName(err->GetString("code"));
    response.error = Status(code, err->GetString("message"));
    return response;
  }
  if (const JsonValue* raw = doc.Find("payload"); raw != nullptr) {
    JsonWriter w(2);
    // Re-render so callers get a standalone document regardless of the
    // original frame's formatting.
    struct Render {
      static void Value(JsonWriter* w, const JsonValue& v) {
        switch (v.type) {
          case JsonValue::Type::kNull:
            w->Null();
            break;
          case JsonValue::Type::kBool:
            w->Bool(v.bool_value);
            break;
          case JsonValue::Type::kNumber:
            w->Number(v.number);
            break;
          case JsonValue::Type::kString:
            w->String(v.string_value);
            break;
          case JsonValue::Type::kArray:
            w->BeginArray();
            for (const JsonValue& item : v.items) Value(w, item);
            w->EndArray();
            break;
          case JsonValue::Type::kObject:
            w->BeginObject();
            for (const auto& [key, member] : v.members) {
              w->Key(key);
              Value(w, member);
            }
            w->EndObject();
            break;
        }
      }
    };
    Render::Value(&w, *raw);
    response.payload = w.Take();
    return response;
  }
  const JsonValue* columns = doc.Find("columns");
  const JsonValue* rows = doc.Find("rows");
  if (columns == nullptr || !columns->is_array() || rows == nullptr ||
      !rows->is_array()) {
    return Status::InvalidArgument(
        "response has neither rows, error, nor payload");
  }
  for (const JsonValue& name : columns->items) {
    if (!name.is_string()) {
      return Status::InvalidArgument("column names must be strings");
    }
    response.columns.push_back(name.string_value);
  }
  for (const JsonValue& row : rows->items) {
    if (!row.is_array()) {
      return Status::InvalidArgument("each row must be an array");
    }
    WireRow decoded;
    decoded.reserve(row.items.size());
    for (const JsonValue& cell : row.items) {
      if (cell.is_null()) {
        decoded.emplace_back(std::nullopt);
      } else if (cell.is_string()) {
        decoded.emplace_back(cell.string_value);
      } else {
        return Status::InvalidArgument("row cells must be strings or null");
      }
    }
    response.rows.push_back(std::move(decoded));
  }
  return response;
}

}  // namespace vdb::server
