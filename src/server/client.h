// Blocking wire-protocol client for one server connection.

#ifndef VDB_SERVER_CLIENT_H_
#define VDB_SERVER_CLIENT_H_

#include <string>

#include "server/wire.h"
#include "util/result.h"

namespace vdb::server {

/// Blocking client for one server connection. Not thread-safe: the wire
/// protocol is strictly request/response per connection, so concurrent
/// clients each open their own (vdb_loadgen opens one per simulated
/// client).
class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;

  static Result<WireClient> Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Executes `sql` as `tenant`. A server-side error (budget abort,
  /// rejection, planner error) comes back as a WireResponse whose `error`
  /// carries the typed code; transport failures are this Result's error.
  Result<WireResponse> Query(const std::string& tenant,
                             const std::string& sql);

  /// Runs a control command ("ping", "metrics", "reload" with `arg`).
  Result<WireResponse> Command(const std::string& tenant,
                               const std::string& command,
                               const std::string& arg = "");

 private:
  Result<WireResponse> RoundTrip(const WireRequest& request);

  int fd_ = -1;
};

}  // namespace vdb::server

#endif  // VDB_SERVER_CLIENT_H_
