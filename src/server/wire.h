// The length-prefixed JSON wire protocol shared by server, client, and
// loadgen.

#ifndef VDB_SERVER_WIRE_H_
#define VDB_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "util/result.h"

// Wire protocol (DESIGN.md §13): every message is a frame — a 4-byte
// big-endian payload length followed by that many bytes of UTF-8 JSON.
// Frames larger than kMaxFrameBytes are a protocol error on both ends.
//
// Request payloads:
//   {"tenant": "alpha", "sql": "SELECT ..."}        execute a statement
//   {"tenant": "alpha", "command": "ping"}          liveness probe
//   {"tenant": "alpha", "command": "metrics"}       server metrics snapshot
//   {"tenant": "alpha", "command": "reload",
//    "arg": "path/to/tenants.conf"}                 re-apply tenant shares
//
// Response payloads:
//   {"columns": [...], "rows": [[cell, ...], ...], "stats": {...}}
//   {"error": {"code": "BudgetExceeded", "message": "..."}, "stats": {...}}
//   {"payload": <raw json>}                         control-command result
//
// Row cells are JSON strings holding Value::ToString() (null cells are
// JSON null), so int64/double values never round-trip through a double
// and lose precision. Error codes travel as enum-style names and are
// parsed back into a typed Status on the client, so a budget abort is
// distinguishable from a planner error without string matching.
namespace vdb::server {

/// Hard cap on one frame's JSON payload.
inline constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

/// Stable wire name for a status code ("BudgetExceeded", ...).
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName. kInternal for unknown names.
StatusCode StatusCodeFromName(const std::string& name);

// ---------------------------------------------------------------------------
// Frame I/O (blocking, EINTR-safe).

/// Writes one length-prefixed frame to a connected socket.
Status WriteFrame(int fd, const std::string& payload);

/// Reads one frame. Returns false on clean EOF at a frame boundary
/// (peer closed); errors on truncated frames or oversized prefixes.
Result<bool> ReadFrame(int fd, std::string* payload);

// ---------------------------------------------------------------------------
// Requests.

struct WireRequest {
  std::string tenant;
  std::string sql;      // empty when command is set
  std::string command;  // "ping" | "metrics" | "reload"
  std::string arg;      // command argument (reload: config path)
};

std::string FormatRequest(const WireRequest& request);
Result<WireRequest> ParseRequest(const std::string& payload);

// ---------------------------------------------------------------------------
// Responses.

/// Per-query accounting the server reports alongside rows or errors.
struct QueryStats {
  double elapsed_ms = 0.0;    // simulated wall-clock inside the tenant VM
  double cpu_ms = 0.0;        // simulated CPU component
  double io_ms = 0.0;         // simulated IO component
  double estimated_ms = 0.0;  // optimizer estimate for the executed plan
  double host_ms = 0.0;       // real execution time on the host
  double queue_ms = 0.0;      // real time spent queued before execution
  uint64_t physical_reads = 0;
  // Zone-map data skipping (DESIGN.md §16): heap pages the scan proved
  // empty under its predicate and never fetched vs pages it did read.
  uint64_t pages_pruned = 0;
  uint64_t pages_scanned = 0;
};

/// One decoded row: each cell is Value::ToString(), nullopt for NULL.
using WireRow = std::vector<std::optional<std::string>>;

struct WireResponse {
  Status error = Status::OK();  // typed; OK for row/payload responses
  std::vector<std::string> columns;
  std::vector<WireRow> rows;
  QueryStats stats;
  std::string payload;  // raw JSON from a control command
};

std::string FormatRowsResponse(const std::vector<std::string>& column_names,
                               const std::vector<catalog::Tuple>& rows,
                               const QueryStats& stats);
std::string FormatErrorResponse(const Status& error, const QueryStats& stats);
/// Wraps a control command's result; `raw_json` must be valid JSON and is
/// spliced verbatim (the metrics command splices MetricsSnapshot::ToJson).
std::string FormatPayloadResponse(const std::string& raw_json);

Result<WireResponse> ParseResponse(const std::string& payload);

}  // namespace vdb::server

#endif  // VDB_SERVER_WIRE_H_
