// Multi-tenant SQL server: one logical VM per tenant on a shared
// VirtualMachineMonitor, with admission control and per-query budgets
// (DESIGN.md §13).

#ifndef VDB_SERVER_SERVER_H_
#define VDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/database.h"
#include "obs/metrics.h"
#include "server/tenant.h"
#include "server/wire.h"
#include "sim/machine.h"
#include "sim/vmm.h"
#include "util/thread_pool.h"

namespace vdb::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the bound one after Start.
  int port = 0;
  /// Workers in the shared execution pool (clamped to >= 1).
  int num_workers = 4;
  /// The physical machine every tenant VM is carved out of.
  sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();
  /// Where the tenant config came from — the default path for a `reload`
  /// wire command with no argument.
  std::string config_path;
};

/// Multi-tenant SQL server (DESIGN.md §13). Each tenant is one logical VM
/// on a shared physical machine — its CPU/memory/IO shares come from the
/// tenant config and bound what the embedded engine charges — plus one
/// private Database materialized from the tenant's dataset declaration.
///
/// Execution model: a tenant executes at most one query at a time (one
/// Database is one simulated instance: its buffer pool accepts a single
/// IO listener), so each tenant keeps a FIFO queue drained by at most one
/// task on the shared worker pool. The drain task runs one query, then
/// re-enqueues itself; the pool's FIFO order therefore round-robins
/// tenants, and a tenant saturating its own queue cannot starve another
/// tenant's drain task — isolation falls out of the scheduling shape.
///
/// Admission control fast-fails: a request arriving while the tenant
/// already has max_concurrent + queue_depth admitted-but-unfinished
/// queries is rejected immediately with ResourceExhausted, never parked.
///
/// Per-query budgets are enforced cooperatively inside both engines (see
/// exec/budget.h): an over-budget query aborts with kBudgetExceeded,
/// surfaces as a typed wire error, and leaves the tenant's Database fully
/// usable — the ExecutionContext unwinds via RAII, so nothing leaks.
class Server {
 public:
  Server(ServerOptions options, std::vector<TenantConfig> tenants);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates the VMs, materializes every tenant's dataset, binds the
  /// listener, and starts accepting connections.
  Status Start();

  /// Stops accepting, unblocks live connections, and drains in-flight
  /// queries (they complete; their clients may already be gone).
  void Stop();

  /// The bound TCP port (valid after Start).
  int port() const { return port_; }

  /// Re-applies shares, budgets, and admission caps for tenants that
  /// appear in `path`; tenants not listed keep their settings, tenants in
  /// the file but not running are ignored. Shares are applied in two
  /// rounds so a reload that shrinks one VM to grow another succeeds
  /// regardless of line order.
  Status Reload(const std::string& path);

  /// Number of tenants (for tools/tests).
  size_t num_tenants() const { return tenants_.size(); }

 private:
  struct Job {
    std::string sql;
    std::promise<std::string> response;  // formatted wire payload
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Tenant {
    TenantConfig config;
    exec::Database db;
    sim::VirtualMachine* vm = nullptr;  // owned by vmm_
    obs::Histogram* latency = nullptr;

    std::mutex mu;  // guards queue / inflight / drain_scheduled
    std::deque<Job> queue;
    int inflight = 0;
    bool drain_scheduled = false;

    /// Serializes query execution against Reload's config mutation.
    std::mutex exec_mu;
  };

  Status SetUpTenant(Tenant* tenant);
  Tenant* FindTenant(const std::string& name);

  /// Admits or rejects; on admission returns the future for the response
  /// frame payload.
  Result<std::future<std::string>> SubmitQuery(Tenant* tenant,
                                               std::string sql);
  void DrainOne(Tenant* tenant);
  std::string ExecuteJob(Tenant* tenant, Job* job);

  void AcceptLoop();
  void HandleConnection(int fd);
  std::string HandleRequest(const std::string& payload);
  std::string HandleCommand(Tenant* tenant, const WireRequest& request);

  ServerOptions options_;
  sim::VirtualMachineMonitor vmm_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  util::ThreadPool pool_;

  obs::Counter* admitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* aborted_budget_ = nullptr;

  std::mutex reload_mu_;  // serializes Reload calls (vmm_ not thread-safe)

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  bool started_ = false;
};

}  // namespace vdb::server

#endif  // VDB_SERVER_SERVER_H_
