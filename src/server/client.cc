#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vdb::server {

WireClient::~WireClient() { Close(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireClient> WireClient::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + detail);
  }
  WireClient client;
  client.fd_ = fd;
  return client;
}

Result<WireResponse> WireClient::RoundTrip(const WireRequest& request) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  VDB_RETURN_NOT_OK(WriteFrame(fd_, FormatRequest(request)));
  std::string payload;
  VDB_ASSIGN_OR_RETURN(const bool alive, ReadFrame(fd_, &payload));
  if (!alive) {
    Close();
    return Status::IOError("server closed the connection");
  }
  return ParseResponse(payload);
}

Result<WireResponse> WireClient::Query(const std::string& tenant,
                                       const std::string& sql) {
  WireRequest request;
  request.tenant = tenant;
  request.sql = sql;
  return RoundTrip(request);
}

Result<WireResponse> WireClient::Command(const std::string& tenant,
                                         const std::string& command,
                                         const std::string& arg) {
  WireRequest request;
  request.tenant = tenant;
  request.command = command;
  request.arg = arg;
  return RoundTrip(request);
}

}  // namespace vdb::server
