#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "datagen/synthetic.h"
#include "datagen/tpch.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vdb::server {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return 1e-6 * static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - start)
                        .count());
}

/// Materializes a tenant's dataset declaration into its catalog.
Status MaterializeDataset(const TenantConfig& config, exec::Database* db) {
  const std::vector<std::string> parts = Split(config.dataset, ':');
  if (parts.size() == 2 && parts[0] == "tpch") {
    datagen::TpchConfig tpch;
    tpch.scale_factor = std::atof(parts[1].c_str());
    if (tpch.scale_factor <= 0) {
      return Status::InvalidArgument("tenant " + config.name +
                                     ": bad tpch scale in " + config.dataset);
    }
    return datagen::GenerateTpch(db->catalog(), tpch);
  }
  if (parts.size() == 2 && parts[0] == "synthetic") {
    const int64_t rows = std::atoll(parts[1].c_str());
    if (rows <= 0) {
      return Status::InvalidArgument("tenant " + config.name +
                                     ": bad row count in " + config.dataset);
    }
    return datagen::GenerateTable(db->catalog(), "events",
                                  SyntheticEventColumns(),
                                  static_cast<uint64_t>(rows),
                                  kSyntheticSeed);
  }
  return Status::InvalidArgument("tenant " + config.name +
                                 ": unknown dataset " + config.dataset);
}

}  // namespace

Server::Server(ServerOptions options, std::vector<TenantConfig> tenants)
    : options_(std::move(options)),
      vmm_(options_.machine),
      pool_(std::max(1, options_.num_workers)) {
  for (TenantConfig& config : tenants) {
    auto tenant = std::make_unique<Tenant>();
    tenant->config = std::move(config);
    tenants_.push_back(std::move(tenant));
  }
  auto& registry = obs::MetricsRegistry::Global();
  admitted_ = registry.GetCounter("server.admitted");
  rejected_ = registry.GetCounter("server.rejected");
  aborted_budget_ = registry.GetCounter("server.aborted_budget");
}

Server::~Server() { Stop(); }

Status Server::SetUpTenant(Tenant* tenant) {
  const TenantConfig& config = tenant->config;
  VDB_ASSIGN_OR_RETURN(
      tenant->vm,
      vmm_.CreateVm(config.name,
                    sim::ResourceShare(config.cpu_share, config.mem_share,
                                       config.io_share)));
  VDB_RETURN_NOT_OK(tenant->db.ApplyVmConfig(*tenant->vm));
  VDB_RETURN_NOT_OK(MaterializeDataset(config, &tenant->db));
  exec::QueryOptions query_options = tenant->db.query_options();
  query_options.budget = config.budget;
  tenant->db.set_query_options(query_options);
  tenant->latency = obs::MetricsRegistry::Global().GetHistogram(
      "server.latency." + config.name);
  return Status::OK();
}

Server::Tenant* Server::FindTenant(const std::string& name) {
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    if (tenant->config.name == name) return tenant.get();
  }
  return nullptr;
}

Status Server::Start() {
  VDB_CHECK(!started_) << "Server::Start called twice";
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    VDB_RETURN_NOT_OK(SetUpTenant(tenant.get()));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Not started, or another Stop already ran; still join if needed.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  pool_.Wait();
  started_ = false;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop (or fatal accept error)
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::string payload;
  while (true) {
    Result<bool> alive = ReadFrame(fd, &payload);
    if (!alive.ok()) {
      // Malformed frame (oversized prefix / truncation): answer with a
      // typed error if the socket still works, then drop the connection —
      // framing is lost, so resynchronization is impossible.
      (void)WriteFrame(fd, FormatErrorResponse(alive.status(), QueryStats{}));
      break;
    }
    if (!*alive) break;  // clean EOF
    const std::string response = HandleRequest(payload);
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
}

std::string Server::HandleRequest(const std::string& payload) {
  Result<WireRequest> parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    return FormatErrorResponse(parsed.status(), QueryStats{});
  }
  const WireRequest& request = *parsed;
  Tenant* tenant = FindTenant(request.tenant);
  if (tenant == nullptr) {
    rejected_->Add();
    return FormatErrorResponse(
        Status::NotFound("unknown tenant " + request.tenant), QueryStats{});
  }
  if (!request.command.empty()) return HandleCommand(tenant, request);

  Result<std::future<std::string>> admitted =
      SubmitQuery(tenant, request.sql);
  if (!admitted.ok()) {
    rejected_->Add();
    return FormatErrorResponse(admitted.status(), QueryStats{});
  }
  admitted_->Add();
  return admitted->get();
}

std::string Server::HandleCommand(Tenant* tenant,
                                  const WireRequest& request) {
  (void)tenant;  // commands are tenant-scoped for auditability, not behavior
  if (request.command == "ping") {
    return FormatPayloadResponse("\"pong\"");
  }
  if (request.command == "metrics") {
    return FormatPayloadResponse(
        obs::MetricsRegistry::Global().Snapshot().ToJson(-1));
  }
  if (request.command == "reload") {
    const std::string& path =
        request.arg.empty() ? options_.config_path : request.arg;
    if (path.empty()) {
      return FormatErrorResponse(
          Status::InvalidArgument("reload needs a config path"),
          QueryStats{});
    }
    if (Status status = Reload(path); !status.ok()) {
      return FormatErrorResponse(status, QueryStats{});
    }
    return FormatPayloadResponse("\"reloaded\"");
  }
  return FormatErrorResponse(
      Status::InvalidArgument("unknown command " + request.command),
      QueryStats{});
}

Result<std::future<std::string>> Server::SubmitQuery(Tenant* tenant,
                                                     std::string sql) {
  Job job;
  job.sql = std::move(sql);
  job.enqueued = Clock::now();
  std::future<std::string> future = job.response.get_future();
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    const int cap =
        tenant->config.max_concurrent + tenant->config.queue_depth;
    if (tenant->inflight >= cap) {
      return Status::ResourceExhausted(
          "tenant " + tenant->config.name + " is at capacity (" +
          std::to_string(cap) + " queries in flight)");
    }
    ++tenant->inflight;
    tenant->queue.push_back(std::move(job));
    if (!tenant->drain_scheduled) {
      tenant->drain_scheduled = true;
      pool_.Submit([this, tenant] { DrainOne(tenant); });
    }
  }
  return future;
}

void Server::DrainOne(Tenant* tenant) {
  Job job;
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    VDB_CHECK(!tenant->queue.empty());
    job = std::move(tenant->queue.front());
    tenant->queue.pop_front();
  }
  job.response.set_value(ExecuteJob(tenant, &job));
  std::lock_guard<std::mutex> lock(tenant->mu);
  --tenant->inflight;
  if (!tenant->queue.empty()) {
    // Re-enqueue rather than loop: the pool's FIFO order interleaves the
    // other tenants' drain tasks, giving cross-tenant round-robin.
    pool_.Submit([this, tenant] { DrainOne(tenant); });
  } else {
    tenant->drain_scheduled = false;
  }
}

std::string Server::ExecuteJob(Tenant* tenant, Job* job) {
  std::lock_guard<std::mutex> exec_lock(tenant->exec_mu);
  QueryStats stats;
  stats.queue_ms = MillisSince(job->enqueued);
  const Clock::time_point start = Clock::now();
  Result<exec::QueryResult> result =
      tenant->db.Execute(job->sql, *tenant->vm);
  stats.host_ms = MillisSince(start);
  tenant->latency->RecordSeconds(1e-3 * stats.host_ms);
  if (!result.ok()) {
    if (result.status().IsBudgetExceeded()) aborted_budget_->Add();
    return FormatErrorResponse(result.status(), stats);
  }
  stats.elapsed_ms = 1000 * result->elapsed_seconds;
  stats.cpu_ms = 1000 * result->cpu_seconds;
  stats.io_ms = 1000 * result->io_seconds;
  stats.estimated_ms = result->estimated_ms;
  stats.physical_reads = result->physical_reads;
  stats.pages_pruned = result->pages_pruned;
  stats.pages_scanned = result->pages_scanned;
  return FormatRowsResponse(result->column_names, result->rows, stats);
}

Status Server::Reload(const std::string& path) {
  VDB_ASSIGN_OR_RETURN(const std::vector<TenantConfig> configs,
                       LoadTenantConfigs(path));
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  // Two rounds of SetShare: a reload that shrinks tenant A to grow tenant
  // B transiently oversubscribes if B's line is applied first, so retry
  // failures once after every shrink has landed.
  std::vector<std::pair<Tenant*, const TenantConfig*>> matched;
  for (const TenantConfig& config : configs) {
    if (Tenant* tenant = FindTenant(config.name)) {
      matched.emplace_back(tenant, &config);
    }
  }
  if (matched.empty()) {
    return Status::InvalidArgument(path + " names no running tenant");
  }
  std::vector<std::pair<Tenant*, const TenantConfig*>> deferred;
  for (const auto& [tenant, config] : matched) {
    const sim::ResourceShare share(config->cpu_share, config->mem_share,
                                   config->io_share);
    if (!vmm_.SetShare(config->name, share).ok()) {
      deferred.emplace_back(tenant, config);
    }
  }
  for (const auto& [tenant, config] : deferred) {
    VDB_RETURN_NOT_OK(vmm_.SetShare(
        config->name, sim::ResourceShare(config->cpu_share,
                                         config->mem_share,
                                         config->io_share)));
  }
  for (const auto& [tenant, config] : matched) {
    // exec_mu keeps the instance reconfiguration from racing a running
    // query on this tenant.
    std::lock_guard<std::mutex> exec_lock(tenant->exec_mu);
    VDB_RETURN_NOT_OK(tenant->db.ApplyVmConfig(*tenant->vm));
    exec::QueryOptions query_options = tenant->db.query_options();
    query_options.budget = config->budget;
    tenant->db.set_query_options(query_options);
    std::lock_guard<std::mutex> lock(tenant->mu);
    tenant->config.cpu_share = config->cpu_share;
    tenant->config.mem_share = config->mem_share;
    tenant->config.io_share = config->io_share;
    tenant->config.budget = config->budget;
    tenant->config.max_concurrent = config->max_concurrent;
    tenant->config.queue_depth = config->queue_depth;
  }
  return Status::OK();
}

}  // namespace vdb::server
