#include "server/tenant.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace vdb::server {

namespace {

Status LineError(const std::string& path, int line, const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line) + ": " +
                                 what);
}

Result<double> ParseNumber(const std::string& path, int line,
                           const std::string& key,
                           const std::string& value) {
  char* after = nullptr;
  const double v = std::strtod(value.c_str(), &after);
  if (after == value.c_str() || *after != '\0') {
    return LineError(path, line, "bad numeric value for " + key);
  }
  return v;
}

}  // namespace

std::vector<datagen::ColumnSpec> SyntheticEventColumns() {
  std::vector<datagen::ColumnSpec> specs(4);
  specs[0].name = "id";
  specs[0].distribution = datagen::Distribution::kSequential;
  specs[1].name = "grp";
  specs[1].distribution = datagen::Distribution::kZipf;
  specs[1].max_value = 100;
  specs[2].name = "val";
  specs[2].type = catalog::TypeId::kDouble;
  specs[2].distribution = datagen::Distribution::kUniformReal;
  specs[2].max_value = 1000.0;
  specs[3].name = "note";
  specs[3].type = catalog::TypeId::kString;
  specs[3].distribution = datagen::Distribution::kRandomText;
  specs[3].string_length = 24;
  return specs;
}

Result<std::vector<TenantConfig>> LoadTenantConfigs(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open tenant config " + path);
  }
  std::vector<TenantConfig> tenants;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::istringstream fields{std::string(trimmed)};
    std::string keyword;
    std::string name;
    fields >> keyword >> name;
    if (keyword != "tenant" || name.empty()) {
      return LineError(path, line_number, "expected 'tenant <name> k=v ...'");
    }
    for (const TenantConfig& existing : tenants) {
      if (existing.name == name) {
        return LineError(path, line_number, "duplicate tenant " + name);
      }
    }
    TenantConfig config;
    config.name = name;
    std::string field;
    while (fields >> field) {
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return LineError(path, line_number, "expected key=value, got " + field);
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "dataset") {
        config.dataset = value;
        continue;
      }
      if (key == "workload") {
        config.workload = value;
        continue;
      }
      VDB_ASSIGN_OR_RETURN(const double v,
                           ParseNumber(path, line_number, key, value));
      if (key == "cpu") {
        config.cpu_share = v;
      } else if (key == "mem") {
        config.mem_share = v;
      } else if (key == "io") {
        config.io_share = v;
      } else if (key == "max_concurrent") {
        config.max_concurrent = static_cast<int>(v);
      } else if (key == "queue") {
        config.queue_depth = static_cast<int>(v);
      } else if (key == "clients") {
        config.clients = static_cast<int>(v);
      } else if (key == "budget_cpu_ms") {
        config.budget.max_cpu_seconds = v / 1000.0;
      } else if (key == "budget_elapsed_ms") {
        config.budget.max_elapsed_seconds = v / 1000.0;
      } else if (key == "budget_mem_kb") {
        config.budget.max_memory_bytes = v * 1024.0;
      } else if (key == "budget_host_ms") {
        config.budget.max_host_seconds = v / 1000.0;
      } else {
        return LineError(path, line_number, "unknown key " + key);
      }
    }
    if (config.max_concurrent < 1) {
      return LineError(path, line_number, "max_concurrent must be >= 1");
    }
    if (config.queue_depth < 0) {
      return LineError(path, line_number, "queue must be >= 0");
    }
    tenants.push_back(std::move(config));
  }
  if (tenants.empty()) {
    return Status::InvalidArgument(path + ": no tenants declared");
  }
  return tenants;
}

Result<std::vector<std::string>> LoadSqlStatements(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open workload " + path);
  }
  std::vector<std::string> statements;
  std::string current;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || StartsWith(trimmed, "--")) continue;
    current += line;
    current += '\n';
    if (trimmed.back() == ';') {
      statements.push_back(std::move(current));
      current.clear();
    }
  }
  if (!Trim(current).empty()) {
    return Status::InvalidArgument(path +
                                   ": trailing statement without ';'");
  }
  if (statements.empty()) {
    return Status::InvalidArgument(path + ": no statements");
  }
  return statements;
}

}  // namespace vdb::server
