// System-R style cost-based optimizer: access-path selection and
// join-order DP under OptimizerParams P, with what-if
// re-parameterization.

#ifndef VDB_OPTIMIZER_OPTIMIZER_H_
#define VDB_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/params.h"
#include "optimizer/physical.h"
#include "optimizer/selectivity.h"
#include "plan/logical.h"
#include "util/result.h"

namespace vdb::optimizer {

/// A System-R style cost-based optimizer with a PostgreSQL-flavored cost
/// model, parameterized by OptimizerParams `P`.
///
/// This is the component the paper re-purposes: calling SetParams with the
/// calibrated `P(R)` for a candidate resource allocation `R` puts the
/// optimizer in the "virtualization-aware what-if mode" of Section 4 —
/// plans are chosen and costed as they would be inside a VM configured
/// with `R`, without running anything.
///
/// Features: sequential vs. B+-tree index access-path selection, dynamic-
/// programming join ordering over inner-join blocks (left-deep, with a
/// greedy fallback beyond 12 relations), hash/merge/nested-loop join
/// methods, hash aggregation, and sort/spill costing.
class Optimizer {
 public:
  explicit Optimizer(OptimizerParams params = OptimizerParams())
      : cost_model_(params) {}

  /// Switches the physical-environment parameters (the what-if knob).
  void SetParams(const OptimizerParams& params) {
    cost_model_ = CostModel(params);
  }
  const OptimizerParams& params() const { return cost_model_.params(); }

  /// Whether seq-scan costing may claim the zone-map skip fraction
  /// (VDB_ZONEMAPS=off clears it; the what-if Prepare path inherits the
  /// database's setting). Prune specs are still attached to scan nodes —
  /// only the costed I/O reduction is gated here.
  void set_zone_maps_enabled(bool enabled) { zone_maps_enabled_ = enabled; }
  bool zone_maps_enabled() const { return zone_maps_enabled_; }

  /// Produces the cheapest physical plan for `logical` under the current
  /// parameters. The logical plan is not modified.
  Result<PhysicalNodePtr> Optimize(const plan::LogicalNode& logical);

 private:
  struct RelationPlan {
    PhysicalNodePtr plan;
    // Table ids contributed by this relation (for predicate placement).
    std::vector<int> table_ids;
  };

  Result<PhysicalNodePtr> Translate(const plan::LogicalNode& node);

  // Access-path selection for a base table with an optional predicate.
  Result<PhysicalNodePtr> TranslateScan(const plan::LogicalGet& get,
                                        const plan::BoundExpr* filter);

  // Join-order DP over a maximal inner/cross-join region.
  Result<PhysicalNodePtr> TranslateJoinBlock(const plan::LogicalNode& root);

  // Non-reorderable joins (left outer, semi, anti).
  Result<PhysicalNodePtr> TranslateSpecialJoin(const plan::LogicalJoin& join);

  Result<PhysicalNodePtr> TranslateAggregate(
      const plan::LogicalAggregate& aggregate);
  Result<PhysicalNodePtr> TranslateSort(const plan::LogicalSort& sort);

  // Builds the cheapest (by priced cost) inner join of `left` and `right`
  // given the connecting predicates. `output_rows` is the subset-level
  // cardinality estimate shared by all methods.
  Result<PhysicalNodePtr> BuildJoin(
      PhysicalNodePtr left, PhysicalNodePtr right,
      const std::vector<const plan::BoundExpr*>& predicates,
      double output_rows);

  double WidthOf(const std::vector<plan::OutputColumn>& columns) const;

  StatsRegistry stats_;
  CostModel cost_model_;
  bool zone_maps_enabled_ = true;
};

}  // namespace vdb::optimizer

#endif  // VDB_OPTIMIZER_OPTIMIZER_H_
