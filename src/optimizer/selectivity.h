// Selectivity estimation from catalog statistics (histograms, NDV) for
// filters and joins.

#ifndef VDB_OPTIMIZER_SELECTIVITY_H_
#define VDB_OPTIMIZER_SELECTIVITY_H_

#include <unordered_map>

#include "catalog/catalog.h"
#include "plan/expr.h"
#include "plan/logical.h"

namespace vdb::optimizer {

/// Resolves plan ColumnIds to base-table column statistics. Populated from
/// the LogicalGet leaves of a plan; derived columns simply miss and fall
/// back to default selectivities.
class StatsRegistry {
 public:
  StatsRegistry() = default;

  /// Registers every column of a base-table scan.
  void RegisterGet(const plan::LogicalGet& get);

  /// Registers all Gets in a plan tree.
  void RegisterPlan(const plan::LogicalNode& root);

  /// Stats for a column, or nullptr if unknown.
  const catalog::ColumnStats* Lookup(const plan::ColumnId& id) const;

 private:
  std::unordered_map<plan::ColumnId, const catalog::ColumnStats*,
                     plan::ColumnIdHash>
      stats_;
};

/// Default selectivity when nothing better is known (PostgreSQL's
/// DEFAULT_SEL spirit).
inline constexpr double kDefaultSelectivity = 0.333;
inline constexpr double kDefaultEqSelectivity = 0.005;
inline constexpr double kLikeSelectivity = 0.05;

/// Estimates the fraction of rows satisfying `predicate`, using column
/// statistics where available. Handles AND/OR/NOT composition,
/// column-vs-constant comparisons through histograms, equality through
/// NDV, LIKE, IN lists, and IS [NOT] NULL.
double EstimateSelectivity(const plan::BoundExpr& predicate,
                           const StatsRegistry& stats);

/// Estimates the selectivity of an equi-join predicate `left = right`
/// between two relations: 1 / max(ndv(left), ndv(right)).
double EstimateJoinSelectivity(const plan::BoundExpr& predicate,
                               const StatsRegistry& stats);

/// Estimated number of distinct values of a column (falls back to
/// `default_ndv` when unknown).
double EstimateNdv(const plan::ColumnId& id, const StatsRegistry& stats,
                   double default_ndv);

}  // namespace vdb::optimizer

#endif  // VDB_OPTIMIZER_SELECTIVITY_H_
