#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>

namespace vdb::optimizer {

using catalog::ColumnStats;
using plan::BoundExpr;
using plan::BoundExprKind;
using plan::ColumnId;
using sql::BinaryOp;

void StatsRegistry::RegisterGet(const plan::LogicalGet& get) {
  if (get.table == nullptr || !get.table->stats.Analyzed()) return;
  for (size_t i = 0; i < get.output.size(); ++i) {
    if (i < get.table->stats.columns.size()) {
      stats_[get.output[i].id] = &get.table->stats.columns[i];
    }
  }
}

void StatsRegistry::RegisterPlan(const plan::LogicalNode& root) {
  if (root.op == plan::LogicalOp::kGet) {
    RegisterGet(static_cast<const plan::LogicalGet&>(root));
  }
  for (const auto& child : root.children) {
    RegisterPlan(*child);
  }
}

const ColumnStats* StatsRegistry::Lookup(const ColumnId& id) const {
  auto it = stats_.find(id);
  return it == stats_.end() ? nullptr : it->second;
}

namespace {

// If `expr` is a plain column reference, returns it.
const plan::ColumnExpr* AsColumn(const BoundExpr& expr) {
  if (expr.kind() == BoundExprKind::kColumn) {
    return static_cast<const plan::ColumnExpr*>(&expr);
  }
  return nullptr;
}

const plan::ConstantExpr* AsConstant(const BoundExpr& expr) {
  if (expr.kind() == BoundExprKind::kConstant) {
    return static_cast<const plan::ConstantExpr*>(&expr);
  }
  return nullptr;
}

double EqualitySelectivity(const ColumnStats* stats) {
  if (stats == nullptr || stats->ndv == 0) return kDefaultEqSelectivity;
  return std::min(1.0, 1.0 / static_cast<double>(stats->ndv)) *
         (1.0 - stats->NullFraction());
}

// Selectivity of `column op constant` using the histogram.
double ComparisonSelectivity(BinaryOp op, const ColumnStats* stats,
                             const catalog::Value& constant) {
  if (constant.is_null()) return 0.0;  // comparisons with NULL never pass
  if (stats == nullptr) {
    return op == BinaryOp::kEq
               ? kDefaultEqSelectivity
               : (op == BinaryOp::kNe ? 1.0 - kDefaultEqSelectivity
                                      : kDefaultSelectivity);
  }
  const double not_null = 1.0 - stats->NullFraction();
  const double key = constant.NumericKey();
  const auto& hist = stats->histogram;
  switch (op) {
    case BinaryOp::kEq:
      return EqualitySelectivity(stats);
    case BinaryOp::kNe:
      return std::max(0.0, not_null - EqualitySelectivity(stats));
    case BinaryOp::kLt:
    case BinaryOp::kLe: {
      if (hist.empty()) return kDefaultSelectivity;
      double fraction = hist.FractionBelow(key);
      if (op == BinaryOp::kLt) {
        fraction = std::max(0.0, fraction - EqualitySelectivity(stats));
      }
      return std::clamp(fraction, 0.0, 1.0) * not_null;
    }
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (hist.empty()) return kDefaultSelectivity;
      double fraction = 1.0 - hist.FractionBelow(key);
      if (op == BinaryOp::kGe) {
        fraction = std::min(1.0, fraction + EqualitySelectivity(stats));
      }
      return std::clamp(fraction, 0.0, 1.0) * not_null;
    }
    default:
      return kDefaultSelectivity;
  }
}

// Recognizes `column op constant` (either orientation); fills the parts.
bool MatchColumnComparison(const BoundExpr& expr, ColumnId* column,
                           BinaryOp* op, double* key) {
  if (expr.kind() != BoundExprKind::kBinary) return false;
  const auto& binary = static_cast<const plan::BinaryBoundExpr&>(expr);
  const auto* left_col = AsColumn(binary.left());
  const auto* right_const = AsConstant(binary.right());
  if (left_col != nullptr && right_const != nullptr &&
      !right_const->value().is_null()) {
    *column = left_col->id();
    *op = binary.op();
    *key = right_const->value().NumericKey();
    return true;
  }
  const auto* right_col = AsColumn(binary.right());
  const auto* left_const = AsConstant(binary.left());
  if (right_col != nullptr && left_const != nullptr &&
      !left_const->value().is_null()) {
    *column = right_col->id();
    switch (binary.op()) {
      case BinaryOp::kLt:
        *op = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        *op = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        *op = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        *op = BinaryOp::kLe;
        break;
      default:
        *op = binary.op();
        break;
    }
    *key = left_const->value().NumericKey();
    return true;
  }
  return false;
}

// Estimates `left AND right` when both are comparisons on the *same*
// column: the independence assumption badly overestimates ranges like
// `k >= 100 AND k <= 120`, so use F(hi) - F(lo) instead. Returns a
// negative value when the pattern does not apply.
double TryRangeConjunction(const BoundExpr& left, const BoundExpr& right,
                           const StatsRegistry& stats) {
  ColumnId col_a;
  ColumnId col_b;
  BinaryOp op_a;
  BinaryOp op_b;
  double key_a = 0;
  double key_b = 0;
  if (!MatchColumnComparison(left, &col_a, &op_a, &key_a) ||
      !MatchColumnComparison(right, &col_b, &op_b, &key_b) ||
      !(col_a == col_b)) {
    return -1.0;
  }
  const bool a_lower = op_a == BinaryOp::kGt || op_a == BinaryOp::kGe;
  const bool a_upper = op_a == BinaryOp::kLt || op_a == BinaryOp::kLe;
  const bool b_lower = op_b == BinaryOp::kGt || op_b == BinaryOp::kGe;
  const bool b_upper = op_b == BinaryOp::kLt || op_b == BinaryOp::kLe;
  if (!((a_lower && b_upper) || (a_upper && b_lower))) return -1.0;
  const ColumnStats* cs = stats.Lookup(col_a);
  if (cs == nullptr || cs->histogram.empty()) return -1.0;
  const double lo = a_lower ? key_a : key_b;
  const double hi = a_lower ? key_b : key_a;
  const double fraction = cs->histogram.FractionBetween(lo, hi);
  return std::clamp(fraction, 0.0, 1.0) * (1.0 - cs->NullFraction());
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

}  // namespace

double EstimateNdv(const ColumnId& id, const StatsRegistry& stats,
                   double default_ndv) {
  const ColumnStats* cs = stats.Lookup(id);
  if (cs == nullptr || cs->ndv == 0) return default_ndv;
  return static_cast<double>(cs->ndv);
}

double EstimateSelectivity(const BoundExpr& predicate,
                           const StatsRegistry& stats) {
  switch (predicate.kind()) {
    case BoundExprKind::kConstant: {
      const auto* constant = AsConstant(predicate);
      if (constant->value().is_null()) return 0.0;
      if (constant->value().type() == catalog::TypeId::kBool) {
        return constant->value().AsBool() ? 1.0 : 0.0;
      }
      return kDefaultSelectivity;
    }
    case BoundExprKind::kUnary: {
      const auto& unary =
          static_cast<const plan::UnaryBoundExpr&>(predicate);
      if (unary.op() == sql::UnaryOp::kNot) {
        return std::clamp(
            1.0 - EstimateSelectivity(unary.operand(), stats), 0.0, 1.0);
      }
      return kDefaultSelectivity;
    }
    case BoundExprKind::kBinary: {
      const auto& binary =
          static_cast<const plan::BinaryBoundExpr&>(predicate);
      const BinaryOp op = binary.op();
      if (op == BinaryOp::kAnd) {
        const double range =
            TryRangeConjunction(binary.left(), binary.right(), stats);
        if (range >= 0.0) return range;
        return EstimateSelectivity(binary.left(), stats) *
               EstimateSelectivity(binary.right(), stats);
      }
      if (op == BinaryOp::kOr) {
        const double a = EstimateSelectivity(binary.left(), stats);
        const double b = EstimateSelectivity(binary.right(), stats);
        return std::clamp(a + b - a * b, 0.0, 1.0);
      }
      // column <op> constant (either orientation).
      const auto* left_col = AsColumn(binary.left());
      const auto* right_const = AsConstant(binary.right());
      if (left_col != nullptr && right_const != nullptr) {
        return ComparisonSelectivity(op, stats.Lookup(left_col->id()),
                                     right_const->value());
      }
      const auto* right_col = AsColumn(binary.right());
      const auto* left_const = AsConstant(binary.left());
      if (right_col != nullptr && left_const != nullptr) {
        return ComparisonSelectivity(FlipComparison(op),
                                     stats.Lookup(right_col->id()),
                                     left_const->value());
      }
      // column = column (e.g. join or intra-table correlation).
      if (left_col != nullptr && right_col != nullptr &&
          op == BinaryOp::kEq) {
        return EstimateJoinSelectivity(predicate, stats);
      }
      if (op == BinaryOp::kEq) return kDefaultEqSelectivity;
      return kDefaultSelectivity;
    }
    case BoundExprKind::kLike: {
      const auto& like = static_cast<const plan::LikeBoundExpr&>(predicate);
      const double match = kLikeSelectivity;
      return like.negated() ? 1.0 - match : match;
    }
    case BoundExprKind::kInList: {
      const auto& in_list =
          static_cast<const plan::InListBoundExpr&>(predicate);
      // Selectivity of the underlying column's equality, once per element.
      std::vector<ColumnId> columns;
      in_list.CollectColumns(&columns);
      double eq = kDefaultEqSelectivity;
      if (columns.size() == 1) {
        eq = EqualitySelectivity(stats.Lookup(columns[0]));
      }
      const double match = std::min(
          1.0, eq * static_cast<double>(in_list.list().size()));
      return in_list.negated() ? 1.0 - match : match;
    }
    case BoundExprKind::kIsNull: {
      const auto& is_null =
          static_cast<const plan::IsNullBoundExpr&>(predicate);
      std::vector<ColumnId> columns;
      is_null.CollectColumns(&columns);
      double null_fraction = 0.02;
      if (columns.size() == 1) {
        const ColumnStats* cs = stats.Lookup(columns[0]);
        if (cs != nullptr) null_fraction = cs->NullFraction();
      }
      return is_null.negated() ? 1.0 - null_fraction : null_fraction;
    }
    default:
      return kDefaultSelectivity;
  }
}

double EstimateJoinSelectivity(const BoundExpr& predicate,
                               const StatsRegistry& stats) {
  if (predicate.kind() == BoundExprKind::kBinary) {
    const auto& binary =
        static_cast<const plan::BinaryBoundExpr&>(predicate);
    if (binary.op() == BinaryOp::kEq) {
      const auto* left = AsColumn(binary.left());
      const auto* right = AsColumn(binary.right());
      if (left != nullptr && right != nullptr) {
        const double ndv_left = EstimateNdv(left->id(), stats, 200.0);
        const double ndv_right = EstimateNdv(right->id(), stats, 200.0);
        return 1.0 / std::max({ndv_left, ndv_right, 1.0});
      }
    }
    if (binary.op() == BinaryOp::kAnd) {
      return EstimateJoinSelectivity(binary.left(), stats) *
             EstimateJoinSelectivity(binary.right(), stats);
    }
  }
  return kDefaultSelectivity;
}

}  // namespace vdb::optimizer
