#include "optimizer/prune.h"

#include <cmath>

#include "plan/rewriter.h"

namespace vdb::optimizer {

namespace {

using plan::BoundExpr;
using plan::BoundExprKind;
using storage::ZonePredicate;

/// The column of `expr` if it is a bare reference to a column of
/// `table_id`, else nullptr.
const plan::ColumnExpr* AsTableColumn(const BoundExpr& expr, int table_id) {
  if (expr.kind() != BoundExprKind::kColumn) return nullptr;
  const auto& column = static_cast<const plan::ColumnExpr&>(expr);
  if (column.id().table_id != table_id) return nullptr;
  if (column.id().column_index < 0) return nullptr;
  return &column;
}

/// Maps one comparison conjunct; returns false when it is not sargable.
bool LowerComparison(const plan::BinaryBoundExpr& binary, int table_id,
                     ZonePredicate* out) {
  const plan::ColumnExpr* column = nullptr;
  const BoundExpr* constant = nullptr;
  sql::BinaryOp op = binary.op();
  if ((column = AsTableColumn(binary.left(), table_id)) != nullptr &&
      binary.right().kind() == BoundExprKind::kConstant) {
    constant = &binary.right();
  } else if ((column = AsTableColumn(binary.right(), table_id)) != nullptr &&
             binary.left().kind() == BoundExprKind::kConstant) {
    constant = &binary.left();
    switch (op) {  // mirror the comparison around the column
      case sql::BinaryOp::kLt:
        op = sql::BinaryOp::kGt;
        break;
      case sql::BinaryOp::kLe:
        op = sql::BinaryOp::kGe;
        break;
      case sql::BinaryOp::kGt:
        op = sql::BinaryOp::kLt;
        break;
      case sql::BinaryOp::kGe:
        op = sql::BinaryOp::kLe;
        break;
      default:
        break;
    }
  } else {
    return false;
  }
  const catalog::Value& value =
      static_cast<const plan::ConstantExpr&>(*constant).value();
  if (value.is_null()) return false;  // comparison is NULL for every row
  const double key = value.NumericKey();
  if (std::isnan(key)) return false;  // NaN proves nothing page-wise
  switch (op) {
    case sql::BinaryOp::kLt:
      out->kind = ZonePredicate::Kind::kLt;
      break;
    case sql::BinaryOp::kLe:
      out->kind = ZonePredicate::Kind::kLe;
      break;
    case sql::BinaryOp::kGt:
      out->kind = ZonePredicate::Kind::kGt;
      break;
    case sql::BinaryOp::kGe:
      out->kind = ZonePredicate::Kind::kGe;
      break;
    case sql::BinaryOp::kEq:
      out->kind = ZonePredicate::Kind::kEq;
      break;
    default:
      return false;  // != and arithmetic/boolean ops never prune
  }
  out->column = static_cast<size_t>(column->id().column_index);
  out->key = key;
  return true;
}

bool LowerIsNull(const plan::IsNullBoundExpr& is_null, int table_id,
                 ZonePredicate* out) {
  std::vector<plan::ColumnId> columns;
  is_null.CollectColumns(&columns);
  if (columns.size() != 1 || columns[0].table_id != table_id ||
      columns[0].column_index < 0) {
    return false;
  }
  // Only a bare column reference: IS NULL over an expression would need
  // expression-level null inference.
  if (is_null.OpCount() != 1) return false;
  out->kind = is_null.negated() ? ZonePredicate::Kind::kIsNotNull
                                : ZonePredicate::Kind::kIsNull;
  out->column = static_cast<size_t>(columns[0].column_index);
  return true;
}

bool LowerInList(const plan::InListBoundExpr& in_list, int table_id,
                 ZonePredicate* out) {
  if (in_list.negated()) return false;  // NOT IN never prunes by range
  std::vector<plan::ColumnId> columns;
  in_list.CollectColumns(&columns);
  if (columns.size() != 1 || columns[0].table_id != table_id ||
      columns[0].column_index < 0) {
    return false;
  }
  std::vector<double> keys;
  keys.reserve(in_list.list().size());
  for (const catalog::Value& value : in_list.list()) {
    // A NULL element can never make the IN true, so it is irrelevant to
    // whether a page may hold a match.
    if (value.is_null()) continue;
    const double key = value.NumericKey();
    if (std::isnan(key)) return false;
    keys.push_back(key);
  }
  if (keys.empty()) return false;
  out->kind = ZonePredicate::Kind::kInList;
  out->column = static_cast<size_t>(columns[0].column_index);
  out->keys = std::move(keys);
  return true;
}

}  // namespace

storage::ScanPruneSpec BuildScanPruneSpec(const BoundExpr* filter,
                                          int table_id) {
  storage::ScanPruneSpec spec;
  if (filter == nullptr) return spec;
  for (const plan::BoundExprPtr& conjunct :
       plan::SplitBoundConjuncts(*filter)) {
    ZonePredicate pred;
    bool lowered = false;
    switch (conjunct->kind()) {
      case BoundExprKind::kBinary:
        lowered = LowerComparison(
            static_cast<const plan::BinaryBoundExpr&>(*conjunct), table_id,
            &pred);
        break;
      case BoundExprKind::kIsNull:
        lowered = LowerIsNull(
            static_cast<const plan::IsNullBoundExpr&>(*conjunct), table_id,
            &pred);
        break;
      case BoundExprKind::kInList:
        lowered = LowerInList(
            static_cast<const plan::InListBoundExpr&>(*conjunct), table_id,
            &pred);
        break;
      default:
        break;
    }
    if (lowered) spec.predicates.push_back(std::move(pred));
  }
  return spec;
}

}  // namespace vdb::optimizer
