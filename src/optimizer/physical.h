// Physical plan nodes produced by the optimizer and consumed by both
// executors, carrying per-operator cost estimates.

#ifndef VDB_OPTIMIZER_PHYSICAL_H_
#define VDB_OPTIMIZER_PHYSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/params.h"
#include "plan/expr.h"
#include "plan/logical.h"

namespace vdb::optimizer {

enum class PhysOp {
  kSeqScan,
  kIndexScan,
  kFilter,
  kProject,
  kNestedLoopJoin,
  kHashJoin,
  kMergeJoin,
  kSort,
  kTopN,
  kHashAggregate,
  kLimit,
};

const char* PhysOpName(PhysOp op);

/// A physical plan operator. The tree is produced by the Optimizer and
/// consumed by the executor; every node carries the optimizer's estimates
/// so that estimated and measured times can be compared per plan.
struct PhysicalNode {
  explicit PhysicalNode(PhysOp node_op) : op(node_op) {}
  virtual ~PhysicalNode() = default;
  PhysicalNode(const PhysicalNode&) = delete;
  PhysicalNode& operator=(const PhysicalNode&) = delete;

  const PhysOp op;
  std::vector<plan::OutputColumn> output;
  std::vector<std::unique_ptr<PhysicalNode>> children;

  /// Optimizer estimates.
  double estimated_rows = 0.0;
  double estimated_width = 8.0;  // bytes per output row
  WorkVector self_work;          // this node's own work
  double total_cost_ms = 0.0;    // priced cumulative cost

  /// Cumulative work of the subtree (self + children).
  WorkVector TotalWork() const;

  std::string ToString(int indent = 0) const;

 protected:
  virtual std::string Describe() const = 0;
};

using PhysicalNodePtr = std::unique_ptr<PhysicalNode>;

struct PhysSeqScan final : PhysicalNode {
  PhysSeqScan() : PhysicalNode(PhysOp::kSeqScan) {}
  catalog::TableInfo* table = nullptr;
  std::string alias;
  plan::BoundExprPtr filter;  // may be null
  /// Sargable conjuncts the executors may prune pages on (empty when the
  /// filter has none, or when there is no filter). Built even with zone
  /// maps disabled so EXPLAIN can show what *would* prune; execution
  /// gates on ExecutionContext::zone_maps_enabled().
  storage::ScanPruneSpec prune_spec;
  /// Plan-time estimate of the page fraction the zone maps prune
  /// (selectivity-capped; 0 when zone maps are disabled). Feeds the
  /// what-if cost model's reduced I/O term.
  double zone_skip_fraction = 0.0;

 protected:
  std::string Describe() const override;
};

struct PhysIndexScan final : PhysicalNode {
  PhysIndexScan() : PhysicalNode(PhysOp::kIndexScan) {}
  catalog::TableInfo* table = nullptr;
  catalog::IndexInfo* index = nullptr;
  std::string alias;
  bool has_lower = false;
  int64_t lower = 0;  // inclusive
  bool has_upper = false;
  int64_t upper = 0;  // inclusive
  plan::BoundExprPtr residual_filter;  // evaluated on fetched rows

 protected:
  std::string Describe() const override;
};

struct PhysFilter final : PhysicalNode {
  PhysFilter() : PhysicalNode(PhysOp::kFilter) {}
  plan::BoundExprPtr condition;

 protected:
  std::string Describe() const override;
};

struct PhysProject final : PhysicalNode {
  PhysProject() : PhysicalNode(PhysOp::kProject) {}
  std::vector<plan::BoundExprPtr> exprs;

 protected:
  std::string Describe() const override;
};

struct PhysNestedLoopJoin final : PhysicalNode {
  PhysNestedLoopJoin() : PhysicalNode(PhysOp::kNestedLoopJoin) {}
  plan::LogicalJoinType join_type = plan::LogicalJoinType::kInner;
  plan::BoundExprPtr condition;  // over concat(left, right); may be null

 protected:
  std::string Describe() const override;
};

struct PhysHashJoin final : PhysicalNode {
  PhysHashJoin() : PhysicalNode(PhysOp::kHashJoin) {}
  plan::LogicalJoinType join_type = plan::LogicalJoinType::kInner;
  // Equi-key expressions: left_keys[i] (over the left/probe input) matches
  // right_keys[i] (over the right/build input).
  std::vector<plan::BoundExprPtr> left_keys;
  std::vector<plan::BoundExprPtr> right_keys;
  plan::BoundExprPtr residual;  // over concat(left, right); may be null

 protected:
  std::string Describe() const override;
};

struct PhysMergeJoin final : PhysicalNode {
  PhysMergeJoin() : PhysicalNode(PhysOp::kMergeJoin) {}
  // Inner join only; children must deliver key order (the optimizer plants
  // Sort nodes beneath).
  plan::BoundExprPtr left_key;
  plan::BoundExprPtr right_key;
  plan::BoundExprPtr residual;  // may be null

 protected:
  std::string Describe() const override;
};

struct PhysSort final : PhysicalNode {
  PhysSort() : PhysicalNode(PhysOp::kSort) {}
  struct Key {
    plan::BoundExprPtr expr;
    bool ascending = true;
  };
  std::vector<Key> keys;

 protected:
  std::string Describe() const override;
};

/// Fused ORDER BY ... LIMIT k: keeps only the best k rows in a bounded
/// heap instead of sorting the whole input.
struct PhysTopN final : PhysicalNode {
  PhysTopN() : PhysicalNode(PhysOp::kTopN) {}
  std::vector<PhysSort::Key> keys;
  int64_t limit = 0;

 protected:
  std::string Describe() const override;
};

struct PhysHashAggregate final : PhysicalNode {
  PhysHashAggregate() : PhysicalNode(PhysOp::kHashAggregate) {}
  std::vector<plan::BoundExprPtr> group_exprs;
  std::vector<plan::AggSpec> aggs;

 protected:
  std::string Describe() const override;
};

struct PhysLimit final : PhysicalNode {
  PhysLimit() : PhysicalNode(PhysOp::kLimit) {}
  int64_t limit = 0;

 protected:
  std::string Describe() const override;
};

}  // namespace vdb::optimizer

#endif  // VDB_OPTIMIZER_PHYSICAL_H_
