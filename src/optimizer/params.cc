#include "optimizer/params.h"

#include <cstdio>

namespace vdb::optimizer {

const char* OptimizerParams::CalibratedName(int i) {
  switch (i) {
    case 0:
      return "seq_page_cost";
    case 1:
      return "random_page_cost";
    case 2:
      return "cpu_tuple_cost";
    case 3:
      return "cpu_index_tuple_cost";
    case 4:
      return "cpu_operator_cost";
  }
  return "?";
}

std::string OptimizerParams::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "P{seq_page=%.4gms, random_page=%.4gms, cpu_tuple=%.4gms, "
      "cpu_index_tuple=%.4gms, cpu_operator=%.4gms, "
      "effective_cache=%llu pages, work_mem=%llu bytes}",
      seq_page_cost, random_page_cost, cpu_tuple_cost, cpu_index_tuple_cost,
      cpu_operator_cost,
      static_cast<unsigned long long>(effective_cache_size_pages),
      static_cast<unsigned long long>(work_mem_bytes));
  return buf;
}

double WorkVector::Cost(const OptimizerParams& params) const {
  const auto work = AsArray();
  const auto price = params.CalibratedVector();
  double total = 0.0;
  for (int i = 0; i < OptimizerParams::kNumCalibrated; ++i) {
    total += work[i] * price[i];
  }
  return total;
}

std::string WorkVector::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "W{seq_pages=%.1f, random_pages=%.1f, tuples=%.1f, "
                "index_tuples=%.1f, ops=%.1f}",
                seq_pages, random_pages, tuples, index_tuples,
                operator_evals);
  return buf;
}

}  // namespace vdb::optimizer
