#include "optimizer/physical.h"

#include <cstdio>

namespace vdb::optimizer {

const char* PhysOpName(PhysOp op) {
  switch (op) {
    case PhysOp::kSeqScan:
      return "SeqScan";
    case PhysOp::kIndexScan:
      return "IndexScan";
    case PhysOp::kFilter:
      return "Filter";
    case PhysOp::kProject:
      return "Project";
    case PhysOp::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PhysOp::kHashJoin:
      return "HashJoin";
    case PhysOp::kMergeJoin:
      return "MergeJoin";
    case PhysOp::kSort:
      return "Sort";
    case PhysOp::kTopN:
      return "TopN";
    case PhysOp::kHashAggregate:
      return "HashAggregate";
    case PhysOp::kLimit:
      return "Limit";
  }
  return "?";
}

WorkVector PhysicalNode::TotalWork() const {
  WorkVector total = self_work;
  for (const auto& child : children) {
    total += child->TotalWork();
  }
  return total;
}

std::string PhysicalNode::ToString(int indent) const {
  char estimates[96];
  std::snprintf(estimates, sizeof(estimates), "  [rows=%.0f cost=%.2fms]",
                estimated_rows, total_cost_ms);
  std::string result =
      std::string(indent, ' ') + PhysOpName(op) + "(" + Describe() + ")" +
      estimates + "\n";
  for (const auto& child : children) {
    result += child->ToString(indent + 2);
  }
  return result;
}

std::string PhysSeqScan::Describe() const {
  std::string result = alias;
  if (filter != nullptr) result += ", filter=" + filter->ToString();
  if (!prune_spec.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", zone-prunable=%zu, zone-skip=%.1f%%",
                  prune_spec.predicates.size(),
                  100.0 * zone_skip_fraction);
    result += buf;
  }
  return result;
}

std::string PhysIndexScan::Describe() const {
  std::string result = alias + " via " + index->name;
  if (has_lower) result += ", key>=" + std::to_string(lower);
  if (has_upper) result += ", key<=" + std::to_string(upper);
  if (residual_filter != nullptr) {
    result += ", filter=" + residual_filter->ToString();
  }
  return result;
}

std::string PhysFilter::Describe() const { return condition->ToString(); }

std::string PhysProject::Describe() const {
  std::string result;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) result += ", ";
    result += exprs[i]->ToString();
  }
  return result;
}

std::string PhysNestedLoopJoin::Describe() const {
  return std::string(plan::LogicalJoinTypeName(join_type)) +
         (condition != nullptr ? ", " + condition->ToString() : "");
}

std::string PhysHashJoin::Describe() const {
  std::string result = plan::LogicalJoinTypeName(join_type);
  for (size_t i = 0; i < left_keys.size(); ++i) {
    result += (i == 0 ? ", " : " and ") + left_keys[i]->ToString() + " = " +
              right_keys[i]->ToString();
  }
  if (residual != nullptr) result += ", residual=" + residual->ToString();
  return result;
}

std::string PhysMergeJoin::Describe() const {
  return left_key->ToString() + " = " + right_key->ToString() +
         (residual != nullptr ? ", residual=" + residual->ToString() : "");
}

std::string PhysSort::Describe() const {
  std::string result;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) result += ", ";
    result += keys[i].expr->ToString();
    if (!keys[i].ascending) result += " DESC";
  }
  return result;
}

std::string PhysTopN::Describe() const {
  std::string result = "limit=" + std::to_string(limit);
  for (const auto& key : keys) {
    result += ", " + key.expr->ToString();
    if (!key.ascending) result += " DESC";
  }
  return result;
}

std::string PhysHashAggregate::Describe() const {
  std::string result = "groups=[";
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    if (i > 0) result += ", ";
    result += group_exprs[i]->ToString();
  }
  result += "], aggs=[";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) result += ", ";
    result += plan::AggKindName(aggs[i].kind);
  }
  return result + "]";
}

std::string PhysLimit::Describe() const { return std::to_string(limit); }

}  // namespace vdb::optimizer
