#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "storage/page.h"

namespace vdb::optimizer {

namespace {

double PagesFor(double rows, double width) {
  return std::max(1.0,
                  std::ceil(rows * width /
                            static_cast<double>(storage::kPageSize)));
}

double Log2Safe(double x) { return std::log2(std::max(2.0, x)); }

}  // namespace

WorkVector CostModel::SeqScan(double pages, double rows,
                              double filter_ops) const {
  WorkVector work;
  work.seq_pages = std::max(1.0, pages);
  work.tuples = rows;
  work.operator_evals = rows * filter_ops;
  return work;
}

double CostModel::IndexHeapPages(double entries, double table_pages) const {
  if (entries <= 0.0) return 0.0;
  const double pages = std::max(1.0, table_pages);
  // Cardenas: expected distinct pages touched by `entries` random probes.
  const double unique =
      pages * (1.0 - std::pow(1.0 - 1.0 / pages, entries));
  const double cache =
      static_cast<double>(params_.effective_cache_size_pages);
  if (cache >= unique) return unique;
  // Revisits to already-touched pages miss with probability proportional
  // to how much of the working set fits in cache.
  const double revisits = std::max(0.0, entries - unique);
  const double miss_fraction = 1.0 - cache / std::max(unique, 1.0);
  return unique + revisits * miss_fraction;
}

WorkVector CostModel::IndexScan(double height, double leaf_pages,
                                double entries, double table_pages,
                                double residual_ops) const {
  WorkVector work;
  work.random_pages =
      height + leaf_pages + IndexHeapPages(entries, table_pages);
  work.index_tuples = entries;
  work.tuples = entries;  // heap tuples fetched and checked
  work.operator_evals = entries * residual_ops;
  return work;
}

WorkVector CostModel::Filter(double rows, double ops) const {
  WorkVector work;
  work.operator_evals = rows * std::max(1.0, ops);
  return work;
}

WorkVector CostModel::Project(double rows, double ops) const {
  WorkVector work;
  work.tuples = rows;
  work.operator_evals = rows * ops;
  return work;
}

WorkVector CostModel::Sort(double rows, double width) const {
  WorkVector work;
  work.tuples = rows;  // materialize output
  work.operator_evals = 2.0 * rows * Log2Safe(rows);  // comparisons
  const double bytes = rows * width;
  if (bytes > static_cast<double>(params_.work_mem_bytes)) {
    // External sort: one spill write + one merge read of all pages.
    const double pages = PagesFor(rows, width);
    work.seq_pages += 2.0 * pages;
  }
  return work;
}

WorkVector CostModel::TopN(double rows, double k) const {
  WorkVector work;
  work.tuples = std::min(rows, std::max(1.0, k));
  work.operator_evals =
      2.0 * rows * Log2Safe(std::max(2.0, k));  // heap comparisons
  return work;
}

WorkVector CostModel::HashJoin(double probe_rows, double probe_width,
                               double build_rows, double build_width,
                               double output_rows,
                               double residual_ops) const {
  WorkVector work;
  // Build: hash + insert each build row. Probe: hash each probe row, then
  // compare keys for candidates (approximated by output_rows matches).
  work.tuples = build_rows + output_rows;
  work.operator_evals =
      build_rows + probe_rows + output_rows * (1.0 + residual_ops);
  const double build_bytes = build_rows * build_width;
  if (build_bytes > static_cast<double>(params_.work_mem_bytes)) {
    // Grace hash join: both sides written to and re-read from partitions.
    work.seq_pages += 2.0 * (PagesFor(build_rows, build_width) +
                             PagesFor(probe_rows, probe_width));
  }
  return work;
}

WorkVector CostModel::NestedLoopJoin(double outer_rows, double inner_rows,
                                     double inner_width,
                                     double cond_ops) const {
  WorkVector work;
  const double pairs = outer_rows * inner_rows;
  work.tuples = pairs;
  work.operator_evals = pairs * std::max(1.0, cond_ops);
  const double inner_bytes = inner_rows * inner_width;
  if (inner_bytes > static_cast<double>(params_.work_mem_bytes)) {
    // Materialized inner exceeds memory: write once, re-read per pass.
    const double pages = PagesFor(inner_rows, inner_width);
    work.seq_pages += pages + std::max(0.0, outer_rows) * pages;
  }
  return work;
}

WorkVector CostModel::MergeStep(double left_rows, double right_rows,
                                double output_rows,
                                double residual_ops) const {
  WorkVector work;
  work.tuples = output_rows;
  work.operator_evals =
      left_rows + right_rows + output_rows * (1.0 + residual_ops);
  return work;
}

WorkVector CostModel::HashAggregate(double rows, double groups,
                                    double group_ops, double agg_ops,
                                    double group_width) const {
  WorkVector work;
  work.tuples = rows + groups;
  work.operator_evals = rows * (1.0 + group_ops + agg_ops);
  const double bytes = groups * group_width;
  if (bytes > static_cast<double>(params_.work_mem_bytes)) {
    work.seq_pages += 2.0 * PagesFor(groups, group_width);
  }
  return work;
}

}  // namespace vdb::optimizer
