// Lowers the sargable conjuncts of a scan filter into a
// storage::ScanPruneSpec the executors evaluate against per-page zone
// maps (DESIGN.md §16).

#ifndef VDB_OPTIMIZER_PRUNE_H_
#define VDB_OPTIMIZER_PRUNE_H_

#include "plan/expr.h"
#include "storage/zone_map.h"

namespace vdb::optimizer {

/// Extracts every top-level AND conjunct of `filter` that zone maps can
/// refute page-wise: `col <op> const` (either operand order; `!=` is
/// excluded), `col IS [NOT] NULL`, and non-negated `col IN (consts)`.
/// BETWEEN arrives from the planner as two comparison conjuncts and needs
/// no special case. Only columns of the scanned table instance
/// (`table_id`) participate; NULL and NaN comparison constants are left
/// out (a NaN bound can never justify a prune). An empty spec means the
/// scan cannot skip anything.
storage::ScanPruneSpec BuildScanPruneSpec(const plan::BoundExpr* filter,
                                          int table_id);

}  // namespace vdb::optimizer

#endif  // VDB_OPTIMIZER_PRUNE_H_
