// OptimizerParams: the paper's environment parameter set P
// (seq_page_cost, cpu_tuple_cost, ...).

#ifndef VDB_OPTIMIZER_PARAMS_H_
#define VDB_OPTIMIZER_PARAMS_H_

#include <array>
#include <cstdint>
#include <string>

namespace vdb::optimizer {

/// The optimizer's model of the physical environment — the paper's
/// parameter set `P` (Section 4). PostgreSQL expresses these as ratios to a
/// sequential page fetch; we store absolute per-unit times in milliseconds
/// so that summed plan costs are directly the "estimated execution times"
/// the paper's virtualization design problem minimizes. The PostgreSQL-style
/// ratio (e.g. the paper's Figure 3 y-axis) is `cpu_tuple_cost /
/// seq_page_cost`.
///
/// The five *_cost members are obtained by experimental calibration for
/// each resource allocation R (Section 5); the capacity members are set
/// directly from the VM configuration.
struct OptimizerParams {
  // --- calibrated per-unit times (milliseconds) ---
  /// Time to read one page sequentially.
  double seq_page_cost = 0.13;
  /// Time to read one page with a random seek.
  double random_page_cost = 7.7;
  /// CPU time to process one tuple.
  double cpu_tuple_cost = 0.001;
  /// CPU time to process one index entry.
  double cpu_index_tuple_cost = 0.0005;
  /// CPU time to evaluate one operator / WHERE-clause item.
  double cpu_operator_cost = 0.00025;

  // --- capacity parameters (known from the VM configuration) ---
  /// Pages of the table data the optimizer assumes can stay cached; scales
  /// with the VM's memory share.
  uint64_t effective_cache_size_pages = 8192;
  /// Memory available to each sort/hash operation before spilling.
  uint64_t work_mem_bytes = 8ULL << 20;

  static constexpr int kNumCalibrated = 5;

  /// The calibrated sub-vector, in a fixed order, for the least-squares
  /// calibration solver: [seq_page, random_page, cpu_tuple,
  /// cpu_index_tuple, cpu_operator].
  std::array<double, kNumCalibrated> CalibratedVector() const {
    return {seq_page_cost, random_page_cost, cpu_tuple_cost,
            cpu_index_tuple_cost, cpu_operator_cost};
  }
  void SetCalibratedVector(const std::array<double, kNumCalibrated>& v) {
    seq_page_cost = v[0];
    random_page_cost = v[1];
    cpu_tuple_cost = v[2];
    cpu_index_tuple_cost = v[3];
    cpu_operator_cost = v[4];
  }

  /// Names matching CalibratedVector order.
  static const char* CalibratedName(int i);

  std::string ToString() const;
};

/// The work performed by a (sub)plan in the units the optimizer prices:
/// cost = dot(WorkVector, calibrated params) (+ capacity effects already
/// folded into the page counts). Calibration inverts exactly this relation.
struct WorkVector {
  double seq_pages = 0;
  double random_pages = 0;
  double tuples = 0;
  double index_tuples = 0;
  double operator_evals = 0;

  WorkVector& operator+=(const WorkVector& other) {
    seq_pages += other.seq_pages;
    random_pages += other.random_pages;
    tuples += other.tuples;
    index_tuples += other.index_tuples;
    operator_evals += other.operator_evals;
    return *this;
  }

  std::array<double, OptimizerParams::kNumCalibrated> AsArray() const {
    return {seq_pages, random_pages, tuples, index_tuples, operator_evals};
  }

  /// Priced cost in milliseconds under `params`.
  double Cost(const OptimizerParams& params) const;

  std::string ToString() const;
};

}  // namespace vdb::optimizer

#endif  // VDB_OPTIMIZER_PARAMS_H_
