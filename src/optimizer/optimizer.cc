#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "optimizer/prune.h"
#include "plan/rewriter.h"
#include "storage/page.h"
#include "util/logging.h"

namespace vdb::optimizer {

namespace {

using plan::BoundExpr;
using plan::BoundExprKind;
using plan::BoundExprPtr;
using plan::ColumnId;
using plan::LogicalJoinType;
using plan::LogicalNode;
using plan::LogicalOp;
using plan::OutputColumn;

bool IsInnerJoinNode(const LogicalNode& node) {
  if (node.op != LogicalOp::kJoin) return false;
  const auto& join = static_cast<const plan::LogicalJoin&>(node);
  return join.join_type == LogicalJoinType::kInner ||
         join.join_type == LogicalJoinType::kCross;
}

// Collects the leaves and connecting predicates of a maximal inner-join
// region rooted at `node`.
void CollectJoinBlock(const LogicalNode& node,
                      std::vector<const LogicalNode*>* leaves,
                      std::vector<BoundExprPtr>* predicates) {
  if (IsInnerJoinNode(node)) {
    const auto& join = static_cast<const plan::LogicalJoin&>(node);
    CollectJoinBlock(*node.children[0], leaves, predicates);
    CollectJoinBlock(*node.children[1], leaves, predicates);
    if (join.condition != nullptr) {
      for (BoundExprPtr& conjunct :
           plan::SplitBoundConjuncts(*join.condition)) {
        predicates->push_back(std::move(conjunct));
      }
    }
    return;
  }
  leaves->push_back(&node);
}

bool ColumnsCoveredBy(const std::vector<ColumnId>& needed,
                      const std::vector<OutputColumn>& have) {
  for (const ColumnId& id : needed) {
    bool found = false;
    for (const OutputColumn& column : have) {
      if (column.id == id) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool ExprCoveredBy(const BoundExpr& expr,
                   const std::vector<OutputColumn>& have) {
  std::vector<ColumnId> needed;
  expr.CollectColumns(&needed);
  return ColumnsCoveredBy(needed, have);
}

// An equi-join key pair extracted from `col_a = col_b`.
struct EquiKey {
  BoundExprPtr left;   // over the left input
  BoundExprPtr right;  // over the right input
};

// Splits `predicates` into equi-key pairs (column = column across the two
// inputs) and a residual conjunction.
void ExtractEquiKeys(const std::vector<const BoundExpr*>& predicates,
                     const std::vector<OutputColumn>& left,
                     const std::vector<OutputColumn>& right,
                     std::vector<EquiKey>* keys, BoundExprPtr* residual) {
  for (const BoundExpr* predicate : predicates) {
    bool is_key = false;
    if (predicate->kind() == BoundExprKind::kBinary) {
      const auto& binary =
          static_cast<const plan::BinaryBoundExpr&>(*predicate);
      if (binary.op() == sql::BinaryOp::kEq &&
          binary.left().kind() == BoundExprKind::kColumn &&
          binary.right().kind() == BoundExprKind::kColumn) {
        const bool lr = ExprCoveredBy(binary.left(), left) &&
                        ExprCoveredBy(binary.right(), right);
        const bool rl = ExprCoveredBy(binary.left(), right) &&
                        ExprCoveredBy(binary.right(), left);
        if (lr || rl) {
          EquiKey key;
          key.left = (lr ? binary.left() : binary.right()).Clone();
          key.right = (lr ? binary.right() : binary.left()).Clone();
          keys->push_back(std::move(key));
          is_key = true;
        }
      }
    }
    if (!is_key) {
      *residual = plan::AndExprs(std::move(*residual), predicate->Clone());
    }
  }
}

int OpsOf(const BoundExpr* expr) {
  return expr == nullptr ? 0 : expr->OpCount();
}

// Join method alternatives considered by ChooseJoinMethod.
enum class JoinMethod { kHash, kHashSwapped, kMerge, kNl, kNlSwapped };

struct SideStats {
  double rows = 0;
  double width = 8;
};

struct JoinChoice {
  JoinMethod method = JoinMethod::kNl;
  double work_cost = 0.0;  // priced cost of the join step itself
};

// Picks the cheapest join implementation for an inner join. Deterministic,
// so the join-order DP (cost-only) and plan reconstruction agree.
JoinChoice ChooseInnerJoinMethod(const CostModel& model,
                                 const SideStats& left,
                                 const SideStats& right, size_t num_keys,
                                 double residual_ops, double output_rows) {
  JoinChoice best;
  bool first = true;
  auto consider = [&](JoinMethod method, const WorkVector& work) {
    const double cost = model.Price(work);
    if (first || cost < best.work_cost) {
      best.method = method;
      best.work_cost = cost;
      first = false;
    }
  };
  if (num_keys > 0) {
    consider(JoinMethod::kHash,
             model.HashJoin(left.rows, left.width, right.rows, right.width,
                            output_rows, residual_ops));
    consider(JoinMethod::kHashSwapped,
             model.HashJoin(right.rows, right.width, left.rows, left.width,
                            output_rows, residual_ops));
    WorkVector merge = model.Sort(left.rows, left.width);
    merge += model.Sort(right.rows, right.width);
    merge += model.MergeStep(left.rows, right.rows, output_rows,
                             residual_ops);
    consider(JoinMethod::kMerge, merge);
  }
  const double cond_ops = residual_ops + 2.0 * static_cast<double>(num_keys);
  consider(JoinMethod::kNl, model.NestedLoopJoin(left.rows, right.rows,
                                                 right.width, cond_ops));
  consider(JoinMethod::kNlSwapped,
           model.NestedLoopJoin(right.rows, left.rows, left.width,
                                cond_ops));
  return best;
}

uint32_t Popcount(uint32_t v) { return static_cast<uint32_t>(__builtin_popcount(v)); }

}  // namespace

Result<PhysicalNodePtr> Optimizer::Optimize(const LogicalNode& logical) {
  stats_ = StatsRegistry();
  stats_.RegisterPlan(logical);
  return Translate(logical);
}

double Optimizer::WidthOf(const std::vector<OutputColumn>& columns) const {
  double width = 0.0;
  for (const OutputColumn& column : columns) {
    const catalog::ColumnStats* cs = stats_.Lookup(column.id);
    if (cs != nullptr && cs->non_null_count > 0) {
      width += cs->avg_width + 1;
    } else if (column.type == catalog::TypeId::kString) {
      width += 21;
    } else {
      width += 9;
    }
  }
  return std::max(width, 8.0);
}

Result<PhysicalNodePtr> Optimizer::Translate(const LogicalNode& node) {
  switch (node.op) {
    case LogicalOp::kGet:
      return TranslateScan(static_cast<const plan::LogicalGet&>(node),
                           nullptr);
    case LogicalOp::kFilter: {
      const auto& filter = static_cast<const plan::LogicalFilter&>(node);
      if (filter.children[0]->op == LogicalOp::kGet) {
        return TranslateScan(
            static_cast<const plan::LogicalGet&>(*filter.children[0]),
            filter.condition.get());
      }
      VDB_ASSIGN_OR_RETURN(PhysicalNodePtr child,
                           Translate(*filter.children[0]));
      auto phys = std::make_unique<PhysFilter>();
      phys->condition = filter.condition->Clone();
      phys->output = child->output;
      const double selectivity =
          EstimateSelectivity(*filter.condition, stats_);
      phys->estimated_rows =
          std::max(child->estimated_rows * selectivity, 0.0);
      phys->estimated_width = child->estimated_width;
      phys->self_work = cost_model_.Filter(child->estimated_rows,
                                           filter.condition->OpCount());
      phys->total_cost_ms =
          child->total_cost_ms + cost_model_.Price(phys->self_work);
      phys->children.push_back(std::move(child));
      return PhysicalNodePtr(std::move(phys));
    }
    case LogicalOp::kJoin: {
      const auto& join = static_cast<const plan::LogicalJoin&>(node);
      if (IsInnerJoinNode(node)) return TranslateJoinBlock(node);
      return TranslateSpecialJoin(join);
    }
    case LogicalOp::kProject: {
      const auto& project = static_cast<const plan::LogicalProject&>(node);
      VDB_ASSIGN_OR_RETURN(PhysicalNodePtr child,
                           Translate(*project.children[0]));
      auto phys = std::make_unique<PhysProject>();
      double ops = 0.0;
      for (const BoundExprPtr& expr : project.exprs) {
        phys->exprs.push_back(expr->Clone());
        ops += expr->OpCount();
      }
      phys->output = project.output;
      phys->estimated_rows = child->estimated_rows;
      phys->estimated_width = WidthOf(project.output);
      phys->self_work = cost_model_.Project(child->estimated_rows, ops);
      phys->total_cost_ms =
          child->total_cost_ms + cost_model_.Price(phys->self_work);
      phys->children.push_back(std::move(child));
      return PhysicalNodePtr(std::move(phys));
    }
    case LogicalOp::kAggregate:
      return TranslateAggregate(
          static_cast<const plan::LogicalAggregate&>(node));
    case LogicalOp::kSort:
      return TranslateSort(static_cast<const plan::LogicalSort&>(node));
    case LogicalOp::kLimit: {
      const auto& limit = static_cast<const plan::LogicalLimit&>(node);
      // Fuse ORDER BY + LIMIT into TopN when the retained rows fit in
      // work_mem (a bounded heap beats sorting the full input). The sort
      // may sit directly below the limit, or below a projection
      // (planner shape for plain queries: Limit > Project > Sort).
      const plan::LogicalProject* projection = nullptr;
      const plan::LogicalSort* sort_node = nullptr;
      if (limit.children[0]->op == LogicalOp::kSort) {
        sort_node =
            static_cast<const plan::LogicalSort*>(limit.children[0].get());
      } else if (limit.children[0]->op == LogicalOp::kProject &&
                 limit.children[0]->children[0]->op == LogicalOp::kSort) {
        projection = static_cast<const plan::LogicalProject*>(
            limit.children[0].get());
        sort_node = static_cast<const plan::LogicalSort*>(
            projection->children[0].get());
      }
      if (sort_node != nullptr && limit.limit > 0) {
        const auto& sort = *sort_node;
        VDB_ASSIGN_OR_RETURN(PhysicalNodePtr child,
                             Translate(*sort.children[0]));
        const double kept_bytes =
            static_cast<double>(limit.limit) * child->estimated_width;
        if (kept_bytes <=
            static_cast<double>(cost_model_.params().work_mem_bytes)) {
          auto top_n = std::make_unique<PhysTopN>();
          for (const plan::SortKey& key : sort.keys) {
            PhysSort::Key sort_key;
            sort_key.expr = key.expr->Clone();
            sort_key.ascending = key.ascending;
            top_n->keys.push_back(std::move(sort_key));
          }
          top_n->limit = limit.limit;
          // Pass-through: keep the physical child's column order.
          top_n->output = child->output;
          top_n->estimated_rows = std::min<double>(
              child->estimated_rows, static_cast<double>(limit.limit));
          top_n->estimated_width = child->estimated_width;
          top_n->self_work = cost_model_.TopN(
              child->estimated_rows, static_cast<double>(limit.limit));
          top_n->total_cost_ms =
              child->total_cost_ms + cost_model_.Price(top_n->self_work);
          top_n->children.push_back(std::move(child));
          if (projection == nullptr) {
            return PhysicalNodePtr(std::move(top_n));
          }
          // Re-apply the projection on top of the (small) TopN result.
          auto project = std::make_unique<PhysProject>();
          double ops = 0.0;
          for (const BoundExprPtr& expr : projection->exprs) {
            project->exprs.push_back(expr->Clone());
            ops += expr->OpCount();
          }
          project->output = projection->output;
          project->estimated_rows = top_n->estimated_rows;
          project->estimated_width = WidthOf(projection->output);
          project->self_work =
              cost_model_.Project(top_n->estimated_rows, ops);
          project->total_cost_ms = top_n->total_cost_ms +
                                   cost_model_.Price(project->self_work);
          project->children.push_back(std::move(top_n));
          return PhysicalNodePtr(std::move(project));
        }
        // Falls through: plan the sort normally below.
      }
      VDB_ASSIGN_OR_RETURN(PhysicalNodePtr child,
                           Translate(*limit.children[0]));
      auto phys = std::make_unique<PhysLimit>();
      phys->limit = limit.limit;
      phys->output = child->output;
      phys->estimated_rows = std::min<double>(
          child->estimated_rows, static_cast<double>(limit.limit));
      phys->estimated_width = child->estimated_width;
      phys->total_cost_ms = child->total_cost_ms;
      phys->children.push_back(std::move(child));
      return PhysicalNodePtr(std::move(phys));
    }
  }
  return Status::Internal("unhandled logical operator");
}

Result<PhysicalNodePtr> Optimizer::TranslateScan(
    const plan::LogicalGet& get, const BoundExpr* filter) {
  catalog::TableInfo* table = get.table;
  const double table_rows =
      table->stats.Analyzed()
          ? static_cast<double>(table->stats.row_count)
          : static_cast<double>(table->heap->NumRecords());
  const double table_pages = std::max<double>(
      1.0, static_cast<double>(table->heap->NumPages()));
  const double selectivity =
      filter != nullptr ? EstimateSelectivity(*filter, stats_) : 1.0;
  const double out_rows = std::max(table_rows * selectivity, 0.0);
  const double width = WidthOf(get.output);

  // Baseline: sequential scan, with the zone-map skip fraction folded
  // into its I/O term. The skip estimate is the *observed* prunable page
  // fraction under the current zone maps, capped by 1 - selectivity: a
  // scan can never skip more of the table than the predicate excludes,
  // which also makes the what-if cost monotone in selectivity and never
  // above the no-skip cost (the metamorphic bounds in testing/).
  auto seq = std::make_unique<PhysSeqScan>();
  seq->table = table;
  seq->alias = get.alias;
  seq->filter = filter != nullptr ? filter->Clone() : nullptr;
  seq->output = get.output;
  seq->estimated_rows = out_rows;
  seq->estimated_width = width;
  seq->prune_spec = BuildScanPruneSpec(filter, get.table_id);
  double observed_skip = 0.0;
  if (zone_maps_enabled_ && !seq->prune_spec.empty()) {
    const std::vector<uint8_t> prune =
        table->heap->ComputePruneBitmap(seq->prune_spec);
    uint64_t pruned = 0;
    for (const uint8_t bit : prune) pruned += bit;
    if (!prune.empty()) {
      observed_skip =
          static_cast<double>(pruned) / static_cast<double>(prune.size());
    }
  }
  seq->zone_skip_fraction =
      std::min(observed_skip, std::max(0.0, 1.0 - selectivity));
  const double scan_pages =
      std::max(1.0, table_pages * (1.0 - seq->zone_skip_fraction));
  const double scan_rows =
      std::max(table_rows * (1.0 - seq->zone_skip_fraction), out_rows);
  seq->self_work =
      cost_model_.SeqScan(scan_pages, scan_rows, OpsOf(filter));
  seq->total_cost_ms = cost_model_.Price(seq->self_work);

  PhysicalNodePtr best = std::move(seq);

  if (filter == nullptr) return best;

  // Try each index: usable if some conjunct bounds the indexed column.
  const std::vector<BoundExprPtr> conjuncts =
      plan::SplitBoundConjuncts(*filter);
  for (catalog::IndexInfo* index : table->indexes) {
    const ColumnId indexed_column{
        get.table_id, static_cast<int>(index->column_index)};
    bool has_lower = false;
    bool has_upper = false;
    int64_t lower = 0;
    int64_t upper = 0;
    bool unusable = false;
    BoundExprPtr residual;
    BoundExprPtr bounding;  // conjunction of the bound-forming conjuncts
    for (const BoundExprPtr& conjunct : conjuncts) {
      bool used = false;
      if (conjunct->kind() == BoundExprKind::kBinary) {
        const auto& binary =
            static_cast<const plan::BinaryBoundExpr&>(*conjunct);
        const BoundExpr* column_side = nullptr;
        const BoundExpr* const_side = nullptr;
        sql::BinaryOp op = binary.op();
        if (binary.left().kind() == BoundExprKind::kColumn &&
            binary.right().kind() == BoundExprKind::kConstant) {
          column_side = &binary.left();
          const_side = &binary.right();
        } else if (binary.right().kind() == BoundExprKind::kColumn &&
                   binary.left().kind() == BoundExprKind::kConstant) {
          column_side = &binary.right();
          const_side = &binary.left();
          switch (op) {
            case sql::BinaryOp::kLt:
              op = sql::BinaryOp::kGt;
              break;
            case sql::BinaryOp::kLe:
              op = sql::BinaryOp::kGe;
              break;
            case sql::BinaryOp::kGt:
              op = sql::BinaryOp::kLt;
              break;
            case sql::BinaryOp::kGe:
              op = sql::BinaryOp::kLe;
              break;
            default:
              break;
          }
        }
        if (column_side != nullptr &&
            static_cast<const plan::ColumnExpr*>(column_side)->id() ==
                indexed_column) {
          const catalog::Value& v =
              static_cast<const plan::ConstantExpr*>(const_side)->value();
          if (!v.is_null()) {
            const double d = v.AsDouble();
            switch (op) {
              case sql::BinaryOp::kEq: {
                if (d == std::floor(d)) {
                  const int64_t k = static_cast<int64_t>(d);
                  if (!has_lower || k > lower) lower = k;
                  if (!has_upper || k < upper) upper = k;
                  has_lower = has_upper = true;
                  used = true;
                }
                break;
              }
              case sql::BinaryOp::kGe: {
                const int64_t k = static_cast<int64_t>(std::ceil(d));
                if (!has_lower || k > lower) lower = k;
                has_lower = true;
                used = true;
                break;
              }
              case sql::BinaryOp::kGt: {
                const int64_t k = static_cast<int64_t>(std::floor(d)) + 1;
                if (!has_lower || k > lower) lower = k;
                has_lower = true;
                used = true;
                break;
              }
              case sql::BinaryOp::kLe: {
                const int64_t k = static_cast<int64_t>(std::floor(d));
                if (!has_upper || k < upper) upper = k;
                has_upper = true;
                used = true;
                break;
              }
              case sql::BinaryOp::kLt: {
                const int64_t k = static_cast<int64_t>(std::ceil(d)) - 1;
                if (!has_upper || k < upper) upper = k;
                has_upper = true;
                used = true;
                break;
              }
              default:
                break;
            }
          }
        }
      }
      if (used) {
        bounding = plan::AndExprs(std::move(bounding), conjunct->Clone());
      } else {
        residual = plan::AndExprs(std::move(residual), conjunct->Clone());
      }
    }
    if (!has_lower && !has_upper) continue;
    if (has_lower && has_upper && lower > upper) unusable = false;
    (void)unusable;
    const double bound_selectivity =
        bounding != nullptr ? EstimateSelectivity(*bounding, stats_) : 1.0;
    const double entries = table_rows * bound_selectivity;
    const double index_pages =
        std::max<double>(1.0, static_cast<double>(index->tree->NumPages()));
    const double index_entries = std::max<double>(
        1.0, static_cast<double>(index->tree->NumEntries()));
    const double leaf_pages =
        std::max(1.0, index_pages * entries / index_entries);
    auto scan = std::make_unique<PhysIndexScan>();
    scan->table = table;
    scan->index = index;
    scan->alias = get.alias;
    scan->has_lower = has_lower;
    scan->lower = lower;
    scan->has_upper = has_upper;
    scan->upper = upper;
    scan->residual_filter =
        residual != nullptr ? residual->Clone() : nullptr;
    scan->output = get.output;
    scan->estimated_rows = out_rows;
    scan->estimated_width = width;
    scan->self_work = cost_model_.IndexScan(
        index->tree->Height(), leaf_pages, entries, table_pages,
        OpsOf(residual.get()));
    scan->total_cost_ms = cost_model_.Price(scan->self_work);
    if (scan->total_cost_ms < best->total_cost_ms) {
      best = std::move(scan);
    }
  }
  return best;
}

Result<PhysicalNodePtr> Optimizer::BuildJoin(
    PhysicalNodePtr left, PhysicalNodePtr right,
    const std::vector<const BoundExpr*>& predicates, double output_rows) {
  std::vector<EquiKey> keys;
  BoundExprPtr residual;
  ExtractEquiKeys(predicates, left->output, right->output, &keys,
                  &residual);
  const double residual_ops = OpsOf(residual.get());
  SideStats left_stats{left->estimated_rows, left->estimated_width};
  SideStats right_stats{right->estimated_rows, right->estimated_width};
  const JoinChoice choice =
      ChooseInnerJoinMethod(cost_model_, left_stats, right_stats,
                            keys.size(), residual_ops, output_rows);

  const bool swapped = choice.method == JoinMethod::kHashSwapped ||
                       choice.method == JoinMethod::kNlSwapped;
  if (swapped) {
    std::swap(left, right);
    for (EquiKey& key : keys) std::swap(key.left, key.right);
  }

  PhysicalNodePtr result;
  const double children_cost = left->total_cost_ms + right->total_cost_ms;
  std::vector<OutputColumn> output = left->output;
  output.insert(output.end(), right->output.begin(), right->output.end());

  switch (choice.method) {
    case JoinMethod::kHash:
    case JoinMethod::kHashSwapped: {
      auto join = std::make_unique<PhysHashJoin>();
      join->join_type = LogicalJoinType::kInner;
      for (EquiKey& key : keys) {
        join->left_keys.push_back(std::move(key.left));
        join->right_keys.push_back(std::move(key.right));
      }
      join->residual = residual != nullptr ? residual->Clone() : nullptr;
      join->self_work = cost_model_.HashJoin(
          left->estimated_rows, left->estimated_width,
          right->estimated_rows, right->estimated_width, output_rows,
          residual_ops);
      join->children.push_back(std::move(left));
      join->children.push_back(std::move(right));
      result = std::move(join);
      break;
    }
    case JoinMethod::kMerge: {
      auto join = std::make_unique<PhysMergeJoin>();
      join->left_key = keys[0].left->Clone();
      join->right_key = keys[0].right->Clone();
      // Non-first keys join the residual condition.
      BoundExprPtr merge_residual =
          residual != nullptr ? residual->Clone() : nullptr;
      for (size_t i = 1; i < keys.size(); ++i) {
        merge_residual = plan::AndExprs(
            std::move(merge_residual),
            std::make_unique<plan::BinaryBoundExpr>(
                sql::BinaryOp::kEq, keys[i].left->Clone(),
                keys[i].right->Clone(), catalog::TypeId::kBool));
      }
      join->residual = std::move(merge_residual);
      join->self_work = cost_model_.MergeStep(
          left->estimated_rows, right->estimated_rows, output_rows,
          residual_ops);
      // Sorts under each input.
      auto make_sort = [&](PhysicalNodePtr child,
                           const BoundExprPtr& key) -> PhysicalNodePtr {
        auto sort = std::make_unique<PhysSort>();
        PhysSort::Key sort_key;
        sort_key.expr = key->Clone();
        sort_key.ascending = true;
        sort->keys.push_back(std::move(sort_key));
        sort->output = child->output;
        sort->estimated_rows = child->estimated_rows;
        sort->estimated_width = child->estimated_width;
        sort->self_work = cost_model_.Sort(child->estimated_rows,
                                           child->estimated_width);
        sort->total_cost_ms =
            child->total_cost_ms + cost_model_.Price(sort->self_work);
        sort->children.push_back(std::move(child));
        return sort;
      };
      PhysicalNodePtr left_sorted = make_sort(std::move(left), join->left_key);
      PhysicalNodePtr right_sorted =
          make_sort(std::move(right), join->right_key);
      join->children.push_back(std::move(left_sorted));
      join->children.push_back(std::move(right_sorted));
      result = std::move(join);
      break;
    }
    case JoinMethod::kNl:
    case JoinMethod::kNlSwapped: {
      auto join = std::make_unique<PhysNestedLoopJoin>();
      join->join_type = keys.empty() && residual == nullptr
                            ? LogicalJoinType::kCross
                            : LogicalJoinType::kInner;
      BoundExprPtr condition =
          residual != nullptr ? residual->Clone() : nullptr;
      for (EquiKey& key : keys) {
        condition = plan::AndExprs(
            std::move(condition),
            std::make_unique<plan::BinaryBoundExpr>(
                sql::BinaryOp::kEq, std::move(key.left),
                std::move(key.right), catalog::TypeId::kBool));
      }
      join->condition = std::move(condition);
      join->self_work = cost_model_.NestedLoopJoin(
          left->estimated_rows, right->estimated_rows,
          right->estimated_width, OpsOf(join->condition.get()));
      join->children.push_back(std::move(left));
      join->children.push_back(std::move(right));
      result = std::move(join);
      break;
    }
  }
  result->output = std::move(output);
  result->estimated_rows = output_rows;
  result->estimated_width = WidthOf(result->output);
  // children may include the planted sorts; sum direct children.
  double child_cost = 0.0;
  for (const auto& child : result->children) {
    child_cost += child->total_cost_ms;
  }
  (void)children_cost;
  result->total_cost_ms =
      child_cost + cost_model_.Price(result->self_work);
  return result;
}

Result<PhysicalNodePtr> Optimizer::TranslateJoinBlock(
    const LogicalNode& root) {
  std::vector<const LogicalNode*> leaves;
  std::vector<BoundExprPtr> predicates;
  CollectJoinBlock(root, &leaves, &predicates);
  const size_t n = leaves.size();
  VDB_CHECK(n >= 2);
  if (n > 20) {
    return Status::NotSupported("too many joined relations (max 20)");
  }

  // Base plans and their statistics. Rows/widths are snapshotted because
  // the plans themselves are moved into the final tree at reconstruction.
  std::vector<PhysicalNodePtr> base(n);
  std::vector<double> base_rows(n);
  std::vector<double> base_width(n);
  for (size_t i = 0; i < n; ++i) {
    VDB_ASSIGN_OR_RETURN(base[i], Translate(*leaves[i]));
    base_rows[i] = base[i]->estimated_rows;
    base_width[i] = base[i]->estimated_width;
  }

  // Predicate masks over the relations.
  struct PredInfo {
    const BoundExpr* expr;
    uint32_t mask = 0;
    double selectivity = 1.0;
  };
  std::vector<PredInfo> pred_infos;
  for (const BoundExprPtr& predicate : predicates) {
    PredInfo info;
    info.expr = predicate.get();
    std::vector<ColumnId> columns;
    predicate->CollectColumns(&columns);
    for (const ColumnId& column : columns) {
      for (size_t i = 0; i < n; ++i) {
        if (ColumnsCoveredBy({column}, base[i]->output)) {
          info.mask |= 1u << i;
          break;
        }
      }
    }
    info.selectivity = EstimateJoinSelectivity(*predicate, stats_);
    pred_infos.push_back(info);
  }

  // Cardinality of a relation subset.
  auto subset_rows = [&](uint32_t mask) {
    double rows = 1.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) rows *= std::max(base_rows[i], 1.0);
    }
    for (const PredInfo& info : pred_infos) {
      if (info.mask != 0 && (info.mask & mask) == info.mask &&
          Popcount(info.mask) >= 2) {
        rows *= info.selectivity;
      }
    }
    return std::max(rows, 0.0);
  };

  // Greedy ordering beyond the DP budget; exact left-deep DP otherwise.
  std::vector<size_t> order;  // reconstruction order of relations
  if (n > 12) {
    std::vector<bool> used(n, false);
    // Start from the smallest relation.
    size_t start = 0;
    for (size_t i = 1; i < n; ++i) {
      if (base_rows[i] < base_rows[start]) start = i;
    }
    order.push_back(start);
    used[start] = true;
    uint32_t mask = 1u << start;
    for (size_t step = 1; step < n; ++step) {
      size_t best_rel = n;
      double best_rows = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        // Prefer connected relations with the smallest intermediate size.
        bool connected = false;
        for (const PredInfo& info : pred_infos) {
          if ((info.mask & (1u << i)) && (info.mask & mask)) {
            connected = true;
            break;
          }
        }
        const double rows = subset_rows(mask | (1u << i)) +
                            (connected ? 0.0 : 1e18);
        if (best_rel == n || rows < best_rows) {
          best_rel = i;
          best_rows = rows;
        }
      }
      order.push_back(best_rel);
      used[best_rel] = true;
      mask |= 1u << best_rel;
    }
  } else {
    // DP over subsets; best[S] = cheapest left-deep plan cost and the last
    // relation joined. Plans are reconstructed afterwards.
    const uint32_t full = (1u << n) - 1;
    std::vector<double> best_cost(full + 1, -1.0);
    std::vector<int> best_last(full + 1, -1);
    std::vector<double> rows_cache(full + 1, -1.0);
    auto rows_of = [&](uint32_t mask) {
      if (rows_cache[mask] < 0) rows_cache[mask] = subset_rows(mask);
      return rows_cache[mask];
    };
    for (size_t i = 0; i < n; ++i) {
      best_cost[1u << i] = base[i]->total_cost_ms;
    }
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (Popcount(mask) < 2) continue;
      for (size_t r = 0; r < n; ++r) {
        const uint32_t bit = 1u << r;
        if (!(mask & bit)) continue;
        const uint32_t rest = mask ^ bit;
        if (best_cost[rest] < 0) continue;
        // Connecting predicates between `rest` and relation r.
        std::vector<const BoundExpr*> connecting;
        size_t num_keys = 0;
        double residual_ops = 0;
        for (const PredInfo& info : pred_infos) {
          if ((info.mask & mask) == info.mask && (info.mask & bit) &&
              (info.mask & rest)) {
            connecting.push_back(info.expr);
          }
        }
        // Classify keys for costing (approximate: every eq col-col
        // predicate is a key).
        for (const BoundExpr* predicate : connecting) {
          if (predicate->kind() == BoundExprKind::kBinary &&
              static_cast<const plan::BinaryBoundExpr*>(predicate)->op() ==
                  sql::BinaryOp::kEq) {
            ++num_keys;
          } else {
            residual_ops += predicate->OpCount();
          }
        }
        // Left side width: sum of member widths.
        double left_width = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (rest & (1u << i)) left_width += base_width[i];
        }
        const SideStats left{rows_of(rest), std::max(left_width, 8.0)};
        const SideStats right{base_rows[r], base_width[r]};
        const JoinChoice choice = ChooseInnerJoinMethod(
            cost_model_, left, right, num_keys, residual_ops,
            rows_of(mask));
        const double cost = best_cost[rest] + base[r]->total_cost_ms +
                            choice.work_cost;
        if (best_cost[mask] < 0 || cost < best_cost[mask]) {
          best_cost[mask] = cost;
          best_last[mask] = static_cast<int>(r);
        }
      }
    }
    // Recover the join order.
    uint32_t mask = full;
    std::vector<size_t> reversed;
    while (Popcount(mask) > 1) {
      const int last = best_last[mask];
      VDB_CHECK(last >= 0);
      reversed.push_back(static_cast<size_t>(last));
      mask ^= 1u << last;
    }
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        order.push_back(i);
        break;
      }
    }
    for (size_t i = reversed.size(); i-- > 0;) {
      order.push_back(reversed[i]);
    }
  }

  // Reconstruct the plan along `order`, attaching each predicate at the
  // first step where both of its sides are available.
  std::vector<bool> pred_used(pred_infos.size(), false);
  PhysicalNodePtr plan = std::move(base[order[0]]);
  uint32_t mask = 1u << order[0];
  for (size_t step = 1; step < order.size(); ++step) {
    const size_t r = order[step];
    mask |= 1u << r;
    std::vector<const BoundExpr*> connecting;
    for (size_t p = 0; p < pred_infos.size(); ++p) {
      if (!pred_used[p] && pred_infos[p].mask != 0 &&
          (pred_infos[p].mask & mask) == pred_infos[p].mask) {
        connecting.push_back(pred_infos[p].expr);
        pred_used[p] = true;
      }
    }
    VDB_ASSIGN_OR_RETURN(
        plan, BuildJoin(std::move(plan), std::move(base[r]), connecting,
                        subset_rows(mask)));
  }
  return plan;
}

Result<PhysicalNodePtr> Optimizer::TranslateSpecialJoin(
    const plan::LogicalJoin& join) {
  VDB_ASSIGN_OR_RETURN(PhysicalNodePtr left, Translate(*join.children[0]));
  VDB_ASSIGN_OR_RETURN(PhysicalNodePtr right, Translate(*join.children[1]));

  std::vector<BoundExprPtr> conjuncts;
  if (join.condition != nullptr) {
    conjuncts = plan::SplitBoundConjuncts(*join.condition);
  }
  std::vector<const BoundExpr*> predicate_ptrs;
  predicate_ptrs.reserve(conjuncts.size());
  for (const BoundExprPtr& conjunct : conjuncts) {
    predicate_ptrs.push_back(conjunct.get());
  }
  std::vector<EquiKey> keys;
  BoundExprPtr residual;
  ExtractEquiKeys(predicate_ptrs, left->output, right->output, &keys,
                  &residual);

  // Cardinalities.
  double selectivity = 1.0;
  for (const BoundExprPtr& conjunct : conjuncts) {
    selectivity *= EstimateJoinSelectivity(*conjunct, stats_);
  }
  const double left_rows = std::max(left->estimated_rows, 0.0);
  const double right_rows = std::max(right->estimated_rows, 0.0);
  const double match_fraction =
      std::min(1.0, selectivity * std::max(right_rows, 0.0));
  double output_rows = 0.0;
  switch (join.join_type) {
    case LogicalJoinType::kSemi:
      output_rows = left_rows * match_fraction;
      break;
    case LogicalJoinType::kAnti:
      output_rows = left_rows * (1.0 - match_fraction);
      break;
    case LogicalJoinType::kLeft:
      output_rows =
          std::max(left_rows, left_rows * right_rows * selectivity);
      break;
    default:
      return Status::Internal("not a special join");
  }

  const double residual_ops = OpsOf(residual.get());
  PhysicalNodePtr result;
  if (!keys.empty()) {
    auto hash_join = std::make_unique<PhysHashJoin>();
    hash_join->join_type = join.join_type;
    for (EquiKey& key : keys) {
      hash_join->left_keys.push_back(std::move(key.left));
      hash_join->right_keys.push_back(std::move(key.right));
    }
    hash_join->residual = std::move(residual);
    hash_join->self_work = cost_model_.HashJoin(
        left_rows, left->estimated_width, right_rows,
        right->estimated_width,
        std::max(output_rows, left_rows * match_fraction), residual_ops);
    result = std::move(hash_join);
  } else {
    auto nl_join = std::make_unique<PhysNestedLoopJoin>();
    nl_join->join_type = join.join_type;
    nl_join->condition = std::move(residual);
    nl_join->self_work = cost_model_.NestedLoopJoin(
        left_rows, right_rows, right->estimated_width,
        OpsOf(nl_join->condition.get()));
    result = std::move(nl_join);
  }
  // Declare the output in the *physical* children's column order, not the
  // logical join's: a swapped join below can permute a child's columns,
  // and the executor emits left-child ++ right-child (or left-child only
  // for semi/anti) positionally.
  result->output = left->output;
  if (join.join_type == LogicalJoinType::kLeft) {
    result->output.insert(result->output.end(), right->output.begin(),
                          right->output.end());
  }
  result->estimated_rows = output_rows;
  result->estimated_width = WidthOf(result->output);
  result->total_cost_ms = left->total_cost_ms + right->total_cost_ms +
                          cost_model_.Price(result->self_work);
  result->children.push_back(std::move(left));
  result->children.push_back(std::move(right));
  return result;
}

Result<PhysicalNodePtr> Optimizer::TranslateAggregate(
    const plan::LogicalAggregate& aggregate) {
  VDB_ASSIGN_OR_RETURN(PhysicalNodePtr child,
                       Translate(*aggregate.children[0]));
  auto phys = std::make_unique<PhysHashAggregate>();
  double group_ops = 0.0;
  double groups = 1.0;
  for (const BoundExprPtr& expr : aggregate.group_exprs) {
    phys->group_exprs.push_back(expr->Clone());
    group_ops += 1.0 + expr->OpCount();
    double ndv = 200.0;
    if (expr->kind() == BoundExprKind::kColumn) {
      ndv = EstimateNdv(static_cast<const plan::ColumnExpr*>(expr.get())->id(),
                        stats_, 200.0);
    }
    groups *= ndv;
  }
  groups = std::clamp(groups, 1.0, std::max(child->estimated_rows, 1.0));
  if (aggregate.group_exprs.empty()) groups = 1.0;
  double agg_ops = 0.0;
  for (const plan::AggSpec& spec : aggregate.aggs) {
    phys->aggs.push_back(spec.Clone());
    agg_ops += 1.0 + OpsOf(spec.arg.get());
  }
  phys->output = aggregate.output;
  phys->estimated_rows = groups;
  phys->estimated_width = WidthOf(aggregate.output);
  phys->self_work = cost_model_.HashAggregate(
      child->estimated_rows, groups, group_ops, agg_ops,
      phys->estimated_width);
  phys->total_cost_ms =
      child->total_cost_ms + cost_model_.Price(phys->self_work);
  phys->children.push_back(std::move(child));
  return PhysicalNodePtr(std::move(phys));
}

Result<PhysicalNodePtr> Optimizer::TranslateSort(
    const plan::LogicalSort& sort) {
  VDB_ASSIGN_OR_RETURN(PhysicalNodePtr child, Translate(*sort.children[0]));
  auto phys = std::make_unique<PhysSort>();
  for (const plan::SortKey& key : sort.keys) {
    PhysSort::Key sort_key;
    sort_key.expr = key.expr->Clone();
    sort_key.ascending = key.ascending;
    phys->keys.push_back(std::move(sort_key));
  }
  // Pass-through operator: rows keep the child's (possibly join-reordered)
  // column order, so advertise that order, not the logical node's.
  phys->output = child->output;
  phys->estimated_rows = child->estimated_rows;
  phys->estimated_width = child->estimated_width;
  phys->self_work =
      cost_model_.Sort(child->estimated_rows, child->estimated_width);
  phys->total_cost_ms =
      child->total_cost_ms + cost_model_.Price(phys->self_work);
  phys->children.push_back(std::move(child));
  return PhysicalNodePtr(std::move(phys));
}

}  // namespace vdb::optimizer
