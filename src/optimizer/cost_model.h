// PostgreSQL-style per-operator cost formulas parameterized by P; each
// returns a work vector, keeping costs linear in the parameters.

#ifndef VDB_OPTIMIZER_COST_MODEL_H_
#define VDB_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

#include "optimizer/params.h"

namespace vdb::optimizer {

/// PostgreSQL-style analytic cost formulas, parameterized by the paper's
/// `P` (OptimizerParams). Each method returns the *work vector* of one
/// operator given input estimates; pricing work under P yields estimated
/// milliseconds. Keeping work and price separate is what lets calibration
/// solve for P from measured times.
class CostModel {
 public:
  explicit CostModel(const OptimizerParams& params) : params_(params) {}

  const OptimizerParams& params() const { return params_; }

  double Price(const WorkVector& work) const { return work.Cost(params_); }

  /// Full scan of `pages` pages / `rows` rows, evaluating a filter of
  /// `filter_ops` operators per row.
  WorkVector SeqScan(double pages, double rows, double filter_ops) const;

  /// B+-tree range scan: descend `height` levels, read `leaf_pages` leaf
  /// pages, touch `entries` index entries, then fetch `entries` heap rows
  /// from a table of `table_pages` pages and evaluate `residual_ops` per
  /// fetched row. Heap page fetches use a Cardenas estimate discounted by
  /// effective_cache_size (Mackert-Lohman flavor).
  WorkVector IndexScan(double height, double leaf_pages, double entries,
                       double table_pages, double residual_ops) const;

  /// Number of distinct heap pages the optimizer expects an index scan to
  /// fetch, including cache-miss refetches when the working set exceeds
  /// effective_cache_size. Exposed for tests.
  double IndexHeapPages(double entries, double table_pages) const;

  /// Filter over `rows` input rows with `ops` operators per row.
  WorkVector Filter(double rows, double ops) const;

  /// Projection of `rows` rows computing `ops` operators per row.
  WorkVector Project(double rows, double ops) const;

  /// Sort of `rows` rows of `width` bytes; spills to disk beyond work_mem.
  WorkVector Sort(double rows, double width) const;

  /// Top-k selection over `rows` input rows keeping `k` of `width` bytes
  /// (bounded heap; never spills because k*width must fit work_mem, which
  /// the optimizer checks before choosing it).
  WorkVector TopN(double rows, double k) const;

  /// Hash join probing `probe_rows` against a build side of `build_rows`
  /// rows x `build_width` bytes, producing `output_rows`, with
  /// `residual_ops` per candidate match. Spills (Grace-style) beyond
  /// work_mem.
  WorkVector HashJoin(double probe_rows, double probe_width,
                      double build_rows, double build_width,
                      double output_rows, double residual_ops) const;

  /// Nested-loop join with the inner side materialized: `outer_rows`
  /// passes over `inner_rows` rows of `inner_width` bytes, `cond_ops` per
  /// pair. Re-reads the inner from disk each pass if it exceeds work_mem.
  WorkVector NestedLoopJoin(double outer_rows, double inner_rows,
                            double inner_width, double cond_ops) const;

  /// Merge step of a merge join (children already sorted).
  WorkVector MergeStep(double left_rows, double right_rows,
                       double output_rows, double residual_ops) const;

  /// Hash aggregation of `rows` input rows into `groups` groups with
  /// `group_ops` operators per row; `agg_ops` aggregate updates per row.
  WorkVector HashAggregate(double rows, double groups, double group_ops,
                           double agg_ops, double group_width) const;

 private:
  OptimizerParams params_;
};

}  // namespace vdb::optimizer

#endif  // VDB_OPTIMIZER_COST_MODEL_H_
