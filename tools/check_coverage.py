#!/usr/bin/env python3
"""Warn-only coverage floor for CI.

Usage:
    check_coverage.py --summary coverage-summary.json
                      [--floor tools/coverage_floor.json]

Reads a gcovr JSON summary (`gcovr --json-summary`) and compares its
line coverage percentage against the checked-in floor. The check never
fails the build: dropping below the floor emits a GitHub Actions
warning annotation so the regression is visible on the PR, while the
floor itself is ratcheted up manually as coverage improves.

Floor format (tools/coverage_floor.json):
{
  "line_percent": 55.0,
  "directories": {
    "src/plan/": 70.0
  }
}

The optional "directories" map adds per-directory floors: for each
prefix, line totals are aggregated over the summary's per-file entries
whose filename starts with that prefix (so hot subsystems can carry a
tighter floor than the repo-wide one). These are warn-only too.

Only the standard library is used; exit code is always 0 unless the
inputs themselves are unreadable.
"""

import argparse
import json
import sys


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {what} '{path}': {e}")
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--summary", required=True,
                        help="gcovr --json-summary output")
    parser.add_argument("--floor", default="tools/coverage_floor.json")
    args = parser.parse_args()

    summary = load_json(args.summary, "coverage summary")
    floor = load_json(args.floor, "coverage floor")

    line_percent = summary.get("line_percent")
    if line_percent is None:
        print("error: summary has no 'line_percent' field")
        sys.exit(1)
    floor_percent = floor.get("line_percent", 0.0)

    print(f"line coverage: {line_percent:.1f}% (floor: {floor_percent:.1f}%)")
    if line_percent < floor_percent:
        # GitHub Actions warning annotation; deliberately not an error.
        print(f"::warning title=Coverage below floor::line coverage "
              f"{line_percent:.1f}% is below the checked-in floor "
              f"{floor_percent:.1f}% (tools/coverage_floor.json)")
    else:
        print("coverage floor satisfied")

    for prefix, dir_floor in sorted(floor.get("directories", {}).items()):
        covered = 0
        total = 0
        for entry in summary.get("files", []):
            if str(entry.get("filename", "")).startswith(prefix):
                covered += int(entry.get("line_covered", 0))
                total += int(entry.get("line_total", 0))
        if total == 0:
            print(f"::warning title=Coverage floor has no files::"
                  f"'{prefix}' matches no files in the summary")
            continue
        dir_percent = 100.0 * covered / total
        print(f"{prefix} line coverage: {dir_percent:.1f}% "
              f"(floor: {dir_floor:.1f}%, {covered}/{total} lines)")
        if dir_percent < float(dir_floor):
            print(f"::warning title=Coverage below floor::{prefix} line "
                  f"coverage {dir_percent:.1f}% is below its floor "
                  f"{float(dir_floor):.1f}% (tools/coverage_floor.json)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
