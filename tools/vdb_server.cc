// vdb_server — the multi-tenant SQL server (DESIGN.md §13).
//
// Loads a tenants.conf, carves one VM per tenant out of the paper
// testbed machine, materializes each tenant's dataset, and serves the
// length-prefixed JSON wire protocol until SIGINT/SIGTERM.
//
// Usage:
//   vdb_server --config examples/tenants.conf [--host 127.0.0.1]
//              [--port 0] [--workers N] [--port-file PATH]
//
// --port 0 binds an ephemeral port; the bound port is printed on stdout
// ("listening on HOST:PORT") and, with --port-file, written to a file so
// scripts can find it without parsing logs.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "server/server.h"
#include "server/tenant.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config tenants.conf [--host H] [--port P] "
               "[--workers N] [--port-file PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdb;

  std::string config_path;
  std::string port_file;
  server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--config" && has_value) {
      config_path = argv[++i];
    } else if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      options.num_workers = std::atoi(argv[++i]);
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (config_path.empty()) return Usage(argv[0]);
  options.config_path = config_path;

  auto tenants = server::LoadTenantConfigs(config_path);
  if (!tenants.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 tenants.status().ToString().c_str());
    return 1;
  }

  obs::MetricsRegistry::Global().set_enabled(true);

  server::Server srv(options, std::move(tenants).ValueOrDie());
  std::fprintf(stderr, "materializing %zu tenant database(s)...\n",
               srv.num_tenants());
  if (Status status = srv.Start(); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", options.host.c_str(), srv.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << srv.port() << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
      srv.Stop();
      return 1;
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shutting down...\n");
  srv.Stop();
  std::printf("%s", obs::MetricsRegistry::Global().Snapshot().ToText().c_str());
  return 0;
}
