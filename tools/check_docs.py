#!/usr/bin/env python3
"""Docs gate for CI: the front-door documents must match the repo.

Checks, using only the standard library:

  1. Every file path referenced in backticks in README.md, DESIGN.md,
     EXPERIMENTS.md, or CONTRIBUTING.md exists (include-style paths such
     as `calib/store.h` are resolved under src/ as well).
  2. Every `bench_*` name mentioned in the docs has a source file
     bench/<name>.cc, and every bench/bench_*.cc is mentioned in
     README.md's bench table.
  3. Required sections exist: README's quickstart, DESIGN.md's
     "Robustness model", EXPERIMENTS.md's step-by-step figure guide.
  4. The quickstart's shell commands reference binaries that are real
     CMake targets (grepped from CMakeLists.txt files).
  5. Every header under src/ opens with a top-of-file `//` comment
     summarizing the file (line 1, before the include guard).

Exit code 0 = pass, 1 = fail (each problem printed on its own line).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md"]

# Backtick spans that look like file paths: either contain a slash or
# start with a dot or carry a recognizably file-ish extension.
PATH_EXTS = (".md", ".py", ".json", ".h", ".cc", ".cpp", ".sql", ".txt",
             ".yml", ".clang-format")
# Generated or environment-dependent names that are not tracked files.
SKIP_PREFIXES = ("build/", "build-", "bench-out", "BENCH_", "$", "~", "http")


def is_path_candidate(span: str) -> bool:
    if not span or " " in span or "<" in span or "*" in span:
        return False
    if span.startswith(SKIP_PREFIXES):
        return False
    if span.startswith("."):
        return True
    if "/" in span:
        return span.endswith(PATH_EXTS) or span.endswith("/")
    return span.endswith(PATH_EXTS)


def resolve(span: str) -> bool:
    span = span.rstrip("/")
    return any((ROOT / prefix / span).exists()
               for prefix in ("", "src", "tests"))


def main() -> int:
    problems = []
    texts = {}
    for name in DOCS:
        path = ROOT / name
        if not path.exists():
            problems.append(f"{name}: missing")
            continue
        texts[name] = path.read_text(encoding="utf-8")

    # 1. Referenced paths exist.
    for name, text in texts.items():
        for span in re.findall(r"`([^`\n]+)`", text):
            if is_path_candidate(span) and not resolve(span):
                problems.append(f"{name}: references nonexistent file `{span}`")

    # 2. Bench names <-> bench sources, both directions.
    mentioned = set()
    for name, text in texts.items():
        for bench in set(re.findall(r"\bbench_[a-z0-9_]+\b", text)):
            mentioned.add(bench)
            if not (ROOT / "bench" / f"{bench}.cc").exists():
                problems.append(
                    f"{name}: mentions `{bench}` but bench/{bench}.cc "
                    "does not exist")
    readme = texts.get("README.md", "")
    for source in sorted((ROOT / "bench").glob("bench_*.cc")):
        if source.stem not in readme:
            problems.append(
                f"README.md: bench table is missing {source.name}")

    # 3. Required sections.
    required = {
        "README.md": ["Five-minute quickstart", "Module map", "obs/"],
        "DESIGN.md": ["Robustness model", "Testing strategy"],
        "EXPERIMENTS.md": ["Reproducing Figures 3"],
        "CONTRIBUTING.md": ["clang-format", "VDB_SANITIZE",
                            "check_bench_regression.py", "vdb_fuzz",
                            "ctest -L tier1", "check_coverage.py"],
    }
    for name, needles in required.items():
        for needle in needles:
            if needle not in texts.get(name, ""):
                problems.append(f"{name}: required section/phrase "
                                f"{needle!r} not found")

    # 4. Every src/ module (including src/testing/) is documented in
    # README's module map and DESIGN.md's layout.
    for module_dir in sorted((ROOT / "src").iterdir()):
        if not module_dir.is_dir():
            continue
        name = module_dir.name
        if f"{name}/" not in readme:
            problems.append(
                f"README.md: module map is missing src/{name}/")
        design = texts.get("DESIGN.md", "")
        if name not in design:
            problems.append(f"DESIGN.md: never mentions src/{name}/")

    # 5. Quickstart binaries are real CMake targets.
    cmake_text = "\n".join(
        p.read_text(encoding="utf-8") for p in ROOT.rglob("CMakeLists.txt"))
    for binary in re.findall(r"\./build/\S*/(\w+)", readme):
        if not re.search(rf"\b{re.escape(binary)}\b", cmake_text):
            problems.append(
                f"README.md: quickstart runs `{binary}` but no CMake "
                "target with that name exists")

    # 6. src/ headers carry a top-of-file summary comment.
    for header in sorted((ROOT / "src").rglob("*.h")):
        first = header.read_text(encoding="utf-8").lstrip("﻿")
        if not first.startswith("//"):
            problems.append(
                f"{header.relative_to(ROOT)}: missing top-of-file "
                "summary comment (must start with `//` on line 1)")

    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(f"docs check passed ({len(texts)} documents)")
    return 1 if not texts or problems else 0


if __name__ == "__main__":
    sys.exit(main())
