// vdb_loadgen — closed-loop load generator for vdb_server.
//
// Reads the same tenants.conf the server was started with, opens
// `clients=` connections per tenant, and has each client issue that
// tenant's workload statements round-robin, back to back, until the
// duration elapses. Reports per-tenant throughput and exact p50/p95/p99
// request latencies, plus totals for rejections (admission control),
// budget aborts, and other errors — and writes them as
// BENCH_server_loadgen.json for CI's perf gate.
//
// Usage:
//   vdb_loadgen --config examples/tenants.conf --port P
//               [--host 127.0.0.1] [--duration 30]
//               [--clients N]      override per-tenant client counts
//               [--wait-server S]  retry the first connect for S seconds
//
// Exit code: 0 when every tenant completed requests and no transport
// errors occurred; 1 otherwise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/tenant.h"

namespace {

using namespace vdb;
using Clock = std::chrono::steady_clock;

struct ClientStats {
  std::vector<double> latencies_ms;  // successful requests only
  uint64_t ok = 0;
  uint64_t rejected = 0;        // admission control (ResourceExhausted)
  uint64_t aborted_budget = 0;  // kBudgetExceeded
  uint64_t errors_other = 0;    // any other server-side error
  uint64_t transport_errors = 0;
  // Zone-map skipping totals from the wire `stats` object, so a loadgen
  // run shows how much I/O the workload's predicates elide end-to-end.
  uint64_t pages_pruned = 0;
  uint64_t pages_scanned = 0;
};

struct TenantStats {
  std::string name;
  ClientStats total;
};

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

Result<server::WireClient> ConnectWithRetry(const std::string& host,
                                            int port, double wait_seconds) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(wait_seconds));
  while (true) {
    Result<server::WireClient> client = server::WireClient::Connect(host, port);
    if (client.ok() || Clock::now() >= deadline) return client;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

void RunClient(const std::string& host, int port, const std::string& tenant,
               const std::vector<std::string>& statements, size_t first,
               Clock::time_point deadline, double wait_seconds,
               ClientStats* stats) {
  Result<server::WireClient> client =
      ConnectWithRetry(host, port, wait_seconds);
  if (!client.ok()) {
    ++stats->transport_errors;
    return;
  }
  size_t next = first;  // stagger clients across the statement list
  while (Clock::now() < deadline) {
    const std::string& sql = statements[next % statements.size()];
    ++next;
    const Clock::time_point start = Clock::now();
    Result<server::WireResponse> response = client->Query(tenant, sql);
    if (!response.ok()) {
      ++stats->transport_errors;
      client = ConnectWithRetry(host, port, wait_seconds);
      if (!client.ok()) return;
      continue;
    }
    const Status& error = response->error;
    if (error.ok()) {
      ++stats->ok;
      stats->pages_pruned += response->stats.pages_pruned;
      stats->pages_scanned += response->stats.pages_scanned;
      stats->latencies_ms.push_back(
          1e-6 *
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - start)
                  .count()));
    } else if (error.IsResourceExhausted()) {
      ++stats->rejected;
    } else if (error.IsBudgetExceeded()) {
      ++stats->aborted_budget;
    } else {
      ++stats->errors_other;
    }
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config tenants.conf --port P [--host H] "
               "[--duration SEC] [--clients N] [--wait-server SEC]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string host = "127.0.0.1";
  int port = 0;
  double duration_s = 30.0;
  double wait_server_s = 10.0;
  int clients_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--config" && has_value) {
      config_path = argv[++i];
    } else if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--duration" && has_value) {
      duration_s = std::atof(argv[++i]);
    } else if (arg == "--clients" && has_value) {
      clients_override = std::atoi(argv[++i]);
    } else if (arg == "--wait-server" && has_value) {
      wait_server_s = std::atof(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }
  if (config_path.empty() || port <= 0) return Usage(argv[0]);

  auto configs = server::LoadTenantConfigs(config_path);
  if (!configs.ok()) {
    std::fprintf(stderr, "error: %s\n", configs.status().ToString().c_str());
    return 1;
  }

  std::vector<TenantStats> tenants;
  std::vector<std::thread> threads;
  std::vector<std::vector<ClientStats>> per_client;
  per_client.reserve(configs->size());
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(duration_s));
  for (const server::TenantConfig& config : *configs) {
    auto statements = server::LoadSqlStatements(config.workload);
    if (!statements.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   statements.status().ToString().c_str());
      return 1;
    }
    const int clients =
        clients_override > 0 ? clients_override : config.clients;
    tenants.push_back(TenantStats{config.name, {}});
    per_client.emplace_back(static_cast<size_t>(clients));
    std::vector<ClientStats>& slots = per_client.back();
    for (int c = 0; c < clients; ++c) {
      // std::thread stores its own copy of the statement list, so each
      // client reads private data.
      threads.emplace_back(RunClient, host, port, config.name, *statements,
                           static_cast<size_t>(c), deadline, wait_server_s,
                           &slots[c]);
    }
  }
  for (std::thread& t : threads) t.join();

  bench::BenchReport report("server_loadgen");
  report.AddValue("duration_s", duration_s);
  uint64_t rejected_total = 0;
  uint64_t aborted_total = 0;
  uint64_t errors_other_total = 0;
  uint64_t transport_total = 0;
  bool all_tenants_progressed = true;
  for (size_t i = 0; i < tenants.size(); ++i) {
    TenantStats& tenant = tenants[i];
    for (ClientStats& c : per_client[i]) {
      tenant.total.ok += c.ok;
      tenant.total.rejected += c.rejected;
      tenant.total.aborted_budget += c.aborted_budget;
      tenant.total.errors_other += c.errors_other;
      tenant.total.transport_errors += c.transport_errors;
      tenant.total.pages_pruned += c.pages_pruned;
      tenant.total.pages_scanned += c.pages_scanned;
      tenant.total.latencies_ms.insert(tenant.total.latencies_ms.end(),
                                       c.latencies_ms.begin(),
                                       c.latencies_ms.end());
    }
    std::vector<double>& lat = tenant.total.latencies_ms;
    const double p50 = Percentile(&lat, 0.50);
    const double p95 = Percentile(&lat, 0.95);
    const double p99 = Percentile(&lat, 0.99);
    const double qps = static_cast<double>(tenant.total.ok) / duration_s;
    std::printf(
        "tenant %-8s ok=%llu rejected=%llu budget_aborts=%llu "
        "errors=%llu transport=%llu | %.1f q/s p50=%.2fms p95=%.2fms "
        "p99=%.2fms | pruned=%llu scanned=%llu pages\n",
        tenant.name.c_str(),
        static_cast<unsigned long long>(tenant.total.ok),
        static_cast<unsigned long long>(tenant.total.rejected),
        static_cast<unsigned long long>(tenant.total.aborted_budget),
        static_cast<unsigned long long>(tenant.total.errors_other),
        static_cast<unsigned long long>(tenant.total.transport_errors),
        qps, p50, p95, p99,
        static_cast<unsigned long long>(tenant.total.pages_pruned),
        static_cast<unsigned long long>(tenant.total.pages_scanned));
    report.AddValue(tenant.name + "/qps", qps);
    report.AddTiming(tenant.name + "/p50_s", 1e-3 * p50);
    report.AddTiming(tenant.name + "/p95_s", 1e-3 * p95);
    report.AddTiming(tenant.name + "/p99_s", 1e-3 * p99);
    report.AddValue(tenant.name + "/pages_pruned",
                    static_cast<double>(tenant.total.pages_pruned));
    report.AddValue(tenant.name + "/pages_scanned",
                    static_cast<double>(tenant.total.pages_scanned));
    rejected_total += tenant.total.rejected;
    aborted_total += tenant.total.aborted_budget;
    errors_other_total += tenant.total.errors_other;
    transport_total += tenant.total.transport_errors;
    if (tenant.total.ok == 0) {
      std::fprintf(stderr, "FAIL: tenant %s completed no queries\n",
                   tenant.name.c_str());
      all_tenants_progressed = false;
    }
  }
  report.AddValue("rejected_total", static_cast<double>(rejected_total));
  report.AddValue("aborted_budget_total", static_cast<double>(aborted_total));
  report.AddValue("errors_other_total",
                  static_cast<double>(errors_other_total));
  report.AddValue("transport_errors_total",
                  static_cast<double>(transport_total));

  const bool healthy =
      all_tenants_progressed && transport_total == 0 && errors_other_total == 0;
  if (!healthy) {
    std::fprintf(stderr,
                 "FAIL: transport_errors=%llu errors_other=%llu\n",
                 static_cast<unsigned long long>(transport_total),
                 static_cast<unsigned long long>(errors_other_total));
  }
  return report.Finish(healthy ? 0 : 1);
}
