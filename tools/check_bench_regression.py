#!/usr/bin/env python3
"""Perf gate for CI: compare BENCH_*.json timings against bench/baseline.json.

Usage:
    check_bench_regression.py --bench-dir DIR [--baseline bench/baseline.json]
                              [--threshold 0.25] [--require bench1,bench2]

The baseline file lists, per bench, the tracked keys and their reference
values. A tracked key may name a timing (seconds) or a value (e.g. the
metrics_overhead_ratio); each is looked up first in the bench report's
"timings" map, then in "values". The gate fails when a tracked entry
regresses past the threshold (exceeds baseline * (1 + threshold) for
lower-is-better entries, or falls below baseline * (1 - threshold) for
higher-is-better ones), or when a report that is present is structurally
invalid. An entry that *improves* past the threshold passes but prints a
ratchet reminder to tighten the checked-in baseline so the gain is
locked in.

One baseline file serves several CI jobs, each of which runs a subset of
the benches. A baseline bench whose report file is absent from
--bench-dir — or a tracked key absent from its report — is therefore
skipped with a warning, NOT failed, unless the bench is named in
--require: each job lists the benches it actually ran there, so a
crashed or silently-skipped bench still fails the job that owns it.

Timings below `min_seconds` (default 0.05s) are checked for presence but
not compared: they are dominated by scheduler noise on shared runners.

Baseline format:
{
  "threshold": 0.25,            # optional override, fraction
  "min_seconds": 0.05,          # optional noise floor for timings
  "benches": {
    "search_algorithms": {
      "total_s": 120.0,
      "metrics_overhead_ratio": 1.0,
      "BM_ScanBatchEngine/rows_per_sec": {
        "value": 50e6,           # throughput entries are objects with a
        "higher_is_better": true # direction flag; plain numbers mean
      }                          # lower-is-better
    }
  }
}

Only the standard library is used; exit code 0 = pass, 1 = fail.
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f), None
    except OSError as e:
        return None, f"cannot read {path}: {e}"
    except json.JSONDecodeError as e:
        return None, f"{path} is not valid JSON: {e}"


def validate_report(report, path):
    """Structural check of one BENCH_*.json file."""
    errors = []
    if not isinstance(report, dict):
        return [f"{path}: top level is not an object"]
    for field in ("bench", "schema_version", "timings", "values"):
        if field not in report:
            errors.append(f"{path}: missing field '{field}'")
    for section in ("timings", "values"):
        entries = report.get(section, {})
        if not isinstance(entries, dict):
            errors.append(f"{path}: '{section}' is not an object")
            continue
        for key, value in entries.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{path}: {section}[{key}] is not a number")
    return errors


def lookup(report, key):
    if key in report.get("timings", {}):
        return report["timings"][key], True
    if key in report.get("values", {}):
        return report["values"][key], False
    return None, False


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-dir", required=True,
                        help="directory holding the BENCH_*.json reports")
    parser.add_argument("--baseline", default="bench/baseline.json",
                        help="checked-in baseline file")
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed fractional regression "
                             "(overrides the baseline's value)")
    parser.add_argument("--require", default="",
                        help="comma-separated bench names whose report "
                             "(and every tracked key) must be present; "
                             "other benches missing from --bench-dir are "
                             "skipped with a warning")
    args = parser.parse_args()
    required = {name for name in args.require.split(",") if name}

    baseline, err = load_json(args.baseline)
    if err:
        print(f"FAIL: {err}")
        return 1
    if not isinstance(baseline, dict) or "benches" not in baseline:
        print(f"FAIL: {args.baseline} has no 'benches' section")
        return 1

    threshold = args.threshold
    if threshold is None:
        threshold = float(baseline.get("threshold", 0.25))
    min_seconds = float(baseline.get("min_seconds", 0.05))

    for name in sorted(required - set(baseline["benches"])):
        print(f"WARN: --require names '{name}', which has no entry in "
              f"{args.baseline}")

    failures = []
    ratchets = []
    skips = []
    rows = []
    for bench_name, tracked in sorted(baseline["benches"].items()):
        report_path = os.path.join(args.bench_dir,
                                   f"BENCH_{bench_name}.json")
        if not os.path.exists(report_path):
            if bench_name in required:
                failures.append(
                    f"{bench_name}: required but {report_path} is missing")
            else:
                skips.append(f"{bench_name}: no report in this run")
            continue
        report, err = load_json(report_path)
        if err:
            failures.append(err)
            continue
        structural = validate_report(report, report_path)
        if structural:
            failures.extend(structural)
            continue
        if report.get("bench") != bench_name:
            failures.append(
                f"{report_path}: names bench "
                f"'{report.get('bench')}', expected '{bench_name}'")
            continue
        for key, entry in sorted(tracked.items()):
            higher_is_better = False
            reference = entry
            if isinstance(entry, dict):
                reference = entry["value"]
                higher_is_better = bool(entry.get("higher_is_better", False))
            current, is_timing = lookup(report, key)
            if current is None:
                if bench_name in required:
                    failures.append(f"{bench_name}: tracked key '{key}' "
                                    f"missing from report")
                else:
                    skips.append(
                        f"{bench_name}/{key}: not reported in this run")
                continue
            if higher_is_better:
                limit = reference * (1.0 - threshold)
                improved_past = current > reference * (1.0 + threshold)
                regression = f"falls below baseline {reference:.4g}"
            else:
                limit = reference * (1.0 + threshold)
                improved_past = current < reference * (1.0 - threshold)
                regression = f"exceeds baseline {reference:.4g}"
            noise = is_timing and reference < min_seconds
            regressed = not noise and (current < limit if higher_is_better
                                       else current > limit)
            rows.append((bench_name, key, reference, current, limit,
                         "SKIP(noise)" if noise else
                         ("FAIL" if regressed else "ok")))
            if regressed:
                failures.append(
                    f"{bench_name}/{key}: {current:.4g} {regression} "
                    f"by more than {100 * threshold:.0f}% "
                    f"(limit {limit:.4g})")
            elif not noise and improved_past:
                ratchets.append(
                    f"{bench_name}/{key}: {current:.4g} beats baseline "
                    f"{reference:.4g} by more than {100 * threshold:.0f}% "
                    f"— ratchet the baseline to lock in the gain")

    if rows:
        name_width = max(len(f"{b}/{k}") for b, k, *_ in rows)
        print(f"{'tracked entry':<{name_width}} {'baseline':>12} "
              f"{'current':>12} {'limit':>12}  status")
        for bench_name, key, reference, current, limit, status in rows:
            print(f"{bench_name + '/' + key:<{name_width}} "
                  f"{reference:>12.4g} {current:>12.4g} {limit:>12.4g}  "
                  f"{status}")

    if skips:
        print(f"\nWARN: {len(skips)} baseline entries skipped (absent from "
              f"this run and not in --require):")
        for skip in skips:
            print(f"  - {skip}")

    if ratchets:
        print(f"\nRATCHET: {len(ratchets)} entries improved past the "
              f"threshold — consider updating {args.baseline}:")
        for ratchet in ratchets:
            print(f"  - {ratchet}")

    if failures:
        print(f"\nFAIL: {len(failures)} problem(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nPASS: {len(rows)} tracked entries within "
          f"{100 * threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
