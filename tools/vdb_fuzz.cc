// Differential / metamorphic fuzzing driver (see DESIGN.md §11).
//
// Usage:
//   vdb_fuzz --seeds 0..500              range of seeds, SQL + metamorphic
//   vdb_fuzz --seed 1234                 one seed
//   vdb_fuzz --mode sql|metamorphic|wire|crash|kernels|all   which checks
//                                        (default all = sql + metamorphic)
//   vdb_fuzz --queries N                 SQL queries per seed (default 8)
//   vdb_fuzz --no-env-invariance         skip environment re-runs (faster)
//
// --mode wire starts an in-process vdb_server and drives generated SQL
// through the full wire protocol (frame codec, admission, budgets),
// cross-checking every response against an in-process Database over the
// identical dataset: an unlimited-budget tenant must return exactly the
// in-process rows (or the same error code), and a tight-budget tenant
// must only ever add typed BudgetExceeded errors — never a crash, a
// malformed frame, or a wedged connection (DESIGN.md §13).
//
// --mode kernels runs the kernel differential campaign (DESIGN.md §15):
// each seed materializes an adversarial numeric stress table plus a
// random schema, generates kernel-shaped and generic expression trees,
// and executes every statement under VDB_KERNELS=scalar, the best
// compiled SIMD table, and the row engine, requiring bitwise-identical
// rows and simulated charges across all three.
//
// --mode crash runs the durability fault-injection campaign (DESIGN.md
// §14): each seed builds a durable database under a random workload, cuts
// its WAL at a random byte offset, recovers, and diffs the result against
// an oracle that replays exactly the surviving operation prefix. Scratch
// directories of failing seeds are kept and their paths printed, so CI can
// upload them as artifacts.
//
// Every failure is minimized (query shrinking) and printed with the exact
// command line that reproduces it. Exit status: 0 when every seed passed,
// 1 on any mismatch or invariant violation, 2 on bad usage.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "exec/database.h"
#include "server/client.h"
#include "server/server.h"
#include "server/tenant.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"
#include "testing/crash.h"
#include "testing/differential.h"
#include "testing/generator.h"
#include "testing/kernel_fuzz.h"
#include "testing/metamorphic.h"
#include "util/random.h"

namespace {

struct CliOptions {
  uint64_t first_seed = 0;
  uint64_t last_seed = 0;
  std::string mode = "all";
  vdb::fuzz::DifferentialOptions differential;
  // Metamorphic checks are environment-level (not per-query), so one run
  // per kMetamorphicStride seeds keeps campaigns fast without losing the
  // seed diversity of the probe randomness.
  static constexpr uint64_t kMetamorphicStride = 25;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds A..B | --seed N] [--mode sql|metamorphic"
               "|wire|crash|kernels|all]\n               [--queries N] "
               "[--no-env-invariance]\n",
               argv0);
  return 2;
}

bool ParseSeeds(const std::string& arg, uint64_t* first, uint64_t* last) {
  const size_t dots = arg.find("..");
  try {
    if (dots == std::string::npos) {
      *first = *last = std::stoull(arg);
      return true;
    }
    *first = std::stoull(arg.substr(0, dots));
    *last = std::stoull(arg.substr(dots + 2));
    return *first <= *last;
  } catch (...) {
    return false;
  }
}

// ---------------------------------------------------------------------------
// --mode wire: in-process server vs in-process database.

constexpr uint64_t kWireRows = 500;

/// Serializes a result the way the wire does (ToString / NULL), sorted so
/// comparison is order-insensitive — both sides run the same engine, but
/// the wire check is about transport and policy, not sort stability.
std::vector<std::string> CanonicalRows(
    const std::vector<vdb::catalog::Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const vdb::catalog::Tuple& row : rows) {
    std::string line;
    for (const vdb::catalog::Value& cell : row) {
      line += cell.is_null() ? "\x01" : cell.ToString();
      line += '\x02';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CanonicalRows(
    const std::vector<vdb::server::WireRow>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const vdb::server::WireRow& row : rows) {
    std::string line;
    for (const std::optional<std::string>& cell : row) {
      line += cell.has_value() ? *cell : "\x01";
      line += '\x02';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

int RunWireCampaign(uint64_t first_seed, uint64_t last_seed,
                    int queries_per_seed) {
  using namespace vdb;

  // Tenant "fuzz" has no budget: its responses must be bit-equal to the
  // in-process reference. Tenant "tiny" has a budget small enough that
  // many generated queries abort: its responses must be rows or typed
  // errors, and the connection must survive every abort.
  server::TenantConfig fuzz_cfg;
  fuzz_cfg.name = "fuzz";
  fuzz_cfg.cpu_share = 0.5;
  fuzz_cfg.mem_share = 0.5;
  fuzz_cfg.io_share = 0.5;
  fuzz_cfg.dataset = "synthetic:" + std::to_string(kWireRows);
  fuzz_cfg.max_concurrent = 4;
  fuzz_cfg.queue_depth = 16;
  server::TenantConfig tiny_cfg = fuzz_cfg;
  tiny_cfg.name = "tiny";
  tiny_cfg.cpu_share = 0.25;
  tiny_cfg.mem_share = 0.25;
  tiny_cfg.io_share = 0.25;
  tiny_cfg.budget.max_cpu_seconds = 0.002;  // 2 ms of simulated CPU

  server::ServerOptions server_options;
  server_options.num_workers = 2;
  server::Server srv(server_options, {fuzz_cfg, tiny_cfg});
  if (Status status = srv.Start(); !status.ok()) {
    std::fprintf(stderr, "wire: server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // In-process reference over the identical dataset and shares.
  exec::Database db;
  VDB_CHECK_OK(datagen::GenerateTable(db.catalog(), "events",
                                      server::SyntheticEventColumns(),
                                      kWireRows, server::kSyntheticSeed));
  const sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();
  sim::VirtualMachine vm("wire-ref", machine, sim::HypervisorModel::XenLike(),
                         sim::ResourceShare(0.5, 0.5, 0.5));
  VDB_CHECK_OK(db.ApplyVmConfig(vm));

  // The generator needs a SchemaPlan describing the events table.
  fuzz::SchemaPlan schema;
  fuzz::TablePlan table;
  table.name = "events";
  table.columns = server::SyntheticEventColumns();
  table.num_rows = kWireRows;
  table.data_seed = server::kSyntheticSeed;
  schema.tables.push_back(std::move(table));

  auto client = server::WireClient::Connect("127.0.0.1", srv.port());
  if (!client.ok()) {
    std::fprintf(stderr, "wire: connect failed: %s\n",
                 client.status().ToString().c_str());
    srv.Stop();
    return 1;
  }

  int failures = 0;
  uint64_t queries = 0;
  uint64_t budget_aborts = 0;
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    Random rng(seed);
    fuzz::GeneratorOptions generator_options;
    generator_options.max_from_items = 2;  // bound self-join blowup
    fuzz::QueryGenerator generator(&schema, &rng, generator_options);
    for (int q = 0; q < queries_per_seed; ++q) {
      const std::string sql = generator.Generate().Sql();
      ++queries;
      const Result<exec::QueryResult> local = db.Execute(sql, vm);
      Result<server::WireResponse> remote = client->Query("fuzz", sql);
      if (!remote.ok()) {
        std::printf("wire transport failure (seed %llu): %s\n  sql: %s\n",
                    static_cast<unsigned long long>(seed),
                    remote.status().ToString().c_str(), sql.c_str());
        ++failures;
        srv.Stop();
        return 1;  // framing is gone; nothing after this is meaningful
      }
      const Status& remote_error = remote->error;
      if (local.ok() != remote_error.ok()) {
        std::printf(
            "wire divergence (seed %llu): local %s, server %s\n  sql: %s\n",
            static_cast<unsigned long long>(seed),
            local.ok() ? "rows" : local.status().ToString().c_str(),
            remote_error.ok() ? "rows" : remote_error.ToString().c_str(),
            sql.c_str());
        ++failures;
        continue;
      }
      if (!local.ok()) {
        if (local.status().code() != remote_error.code()) {
          std::printf(
              "wire error-code divergence (seed %llu): local %s, server "
              "%s\n  sql: %s\n",
              static_cast<unsigned long long>(seed),
              server::StatusCodeName(local.status().code()),
              server::StatusCodeName(remote_error.code()), sql.c_str());
          ++failures;
        }
      } else if (CanonicalRows(local->rows) != CanonicalRows(remote->rows)) {
        std::printf(
            "wire row divergence (seed %llu): local %zu rows, server %zu "
            "rows\n  sql: %s\n",
            static_cast<unsigned long long>(seed), local->rows.size(),
            remote->rows.size(), sql.c_str());
        ++failures;
      }

      // Budget tenant: the same statement must produce rows, the typed
      // budget error, or the same non-budget error — and leave the
      // connection usable either way.
      Result<server::WireResponse> tiny = client->Query("tiny", sql);
      if (!tiny.ok()) {
        std::printf(
            "wire budget-tenant transport failure (seed %llu): %s\n"
            "  sql: %s\n",
            static_cast<unsigned long long>(seed),
            tiny.status().ToString().c_str(), sql.c_str());
        ++failures;
        srv.Stop();
        return 1;
      }
      if (tiny->error.IsBudgetExceeded()) {
        ++budget_aborts;
      } else if (!tiny->error.ok() && local.ok()) {
        std::printf(
            "wire budget-tenant divergence (seed %llu): local rows, server "
            "%s\n  sql: %s\n",
            static_cast<unsigned long long>(seed),
            tiny->error.ToString().c_str(), sql.c_str());
        ++failures;
      }
    }
  }
  srv.Stop();
  std::printf(
      "wire seeds %llu..%llu: %llu queries, %llu budget aborts, "
      "%d failure%s\n",
      static_cast<unsigned long long>(first_seed),
      static_cast<unsigned long long>(last_seed),
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(budget_aborts), failures,
      failures == 1 ? "" : "s");
  if (failures == 0 && budget_aborts == 0 && queries > 20) {
    // The tight tenant never hitting its budget means the budget path was
    // not exercised at all — that is a campaign bug, not a pass.
    std::printf("wire: no budget aborts over %llu queries — "
                "tighten tiny_cfg.budget\n",
                static_cast<unsigned long long>(queries));
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --mode crash: WAL truncation fault injection vs surviving-prefix oracle.

int RunCrashCampaign(uint64_t first_seed, uint64_t last_seed) {
  const char* scratch = std::getenv("VDB_CRASH_SCRATCH");
  const std::string scratch_root =
      scratch != nullptr && scratch[0] != '\0' ? scratch : "/tmp";
  int failures = 0;
  uint64_t total_ops = 0;
  uint64_t surviving_ops = 0;
  uint64_t checkpoints = 0;
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    const vdb::fuzz::CrashRunReport report =
        vdb::fuzz::RunCrashSeed(seed, scratch_root);
    total_ops += report.total_ops;
    surviving_ops += report.surviving_ops;
    checkpoints += report.checkpoints;
    if (!report.ok) {
      std::printf(
          "crash-recovery failure (seed %llu): %s\n"
          "  cut %llu of %llu WAL bytes, %zu/%zu ops expected to survive\n"
          "  artifacts: %s\n"
          "  repro:  vdb_fuzz --seed %llu --mode crash\n",
          static_cast<unsigned long long>(seed), report.failure.c_str(),
          static_cast<unsigned long long>(report.truncate_at),
          static_cast<unsigned long long>(report.wal_file_bytes),
          report.surviving_ops, report.total_ops,
          report.artifact_dir.c_str(),
          static_cast<unsigned long long>(seed));
      ++failures;
    }
    if ((seed - first_seed) % 50 == 49) {
      std::printf("... seed %llu: %llu ops, %llu survived truncation, "
                  "%llu checkpoints, %d failure%s\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(total_ops),
                  static_cast<unsigned long long>(surviving_ops),
                  static_cast<unsigned long long>(checkpoints), failures,
                  failures == 1 ? "" : "s");
      std::fflush(stdout);
    }
  }
  std::printf(
      "crash seeds %llu..%llu: %llu ops (%llu survived truncation, "
      "%llu checkpoints), %d failure%s\n",
      static_cast<unsigned long long>(first_seed),
      static_cast<unsigned long long>(last_seed),
      static_cast<unsigned long long>(total_ops),
      static_cast<unsigned long long>(surviving_ops),
      static_cast<unsigned long long>(checkpoints), failures,
      failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --mode kernels: batch engine under every kernel ISA vs the row engine.

int RunKernelCampaign(uint64_t first_seed, uint64_t last_seed) {
  vdb::fuzz::KernelFuzzStats stats;
  int failures = 0;
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    for (const std::string& violation :
         vdb::fuzz::RunKernelFuzzSeed(seed, &stats)) {
      std::printf("%s\n", violation.c_str());
      ++failures;
    }
    if ((seed - first_seed) % 50 == 49) {
      std::printf("... seed %llu: %s, %d failure%s\n",
                  static_cast<unsigned long long>(seed),
                  stats.ToString().c_str(), failures,
                  failures == 1 ? "" : "s");
      std::fflush(stdout);
    }
  }
  std::printf("kernel seeds %llu..%llu: %s; %d failure%s\n",
              static_cast<unsigned long long>(first_seed),
              static_cast<unsigned long long>(last_seed),
              stats.ToString().c_str(), failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool run_metamorphic_every_seed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds" || arg == "--seed") {
      const char* value = next();
      if (value == nullptr ||
          !ParseSeeds(value, &options.first_seed, &options.last_seed)) {
        return Usage(argv[0]);
      }
      // A single named seed always runs every mode in full.
      run_metamorphic_every_seed =
          run_metamorphic_every_seed || arg == "--seed";
    } else if (arg == "--mode") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.mode = value;
      if (options.mode != "sql" && options.mode != "metamorphic" &&
          options.mode != "wire" && options.mode != "crash" &&
          options.mode != "kernels" && options.mode != "all") {
        return Usage(argv[0]);
      }
    } else if (arg == "--queries") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.differential.queries_per_seed = std::atoi(value);
      if (options.differential.queries_per_seed <= 0) return Usage(argv[0]);
    } else if (arg == "--no-env-invariance") {
      options.differential.check_environment_invariance = false;
    } else {
      return Usage(argv[0]);
    }
  }

  if (options.mode == "wire") {
    return RunWireCampaign(options.first_seed, options.last_seed,
                           options.differential.queries_per_seed);
  }
  if (options.mode == "crash") {
    return RunCrashCampaign(options.first_seed, options.last_seed);
  }
  if (options.mode == "kernels") {
    return RunKernelCampaign(options.first_seed, options.last_seed);
  }

  const bool run_sql = options.mode == "sql" || options.mode == "all";
  const bool run_meta =
      options.mode == "metamorphic" || options.mode == "all";

  vdb::fuzz::CampaignStats stats;
  int failures = 0;
  uint64_t metamorphic_runs = 0;
  for (uint64_t seed = options.first_seed; seed <= options.last_seed;
       ++seed) {
    if (run_sql) {
      vdb::fuzz::FailureReport report;
      if (vdb::fuzz::RunDifferentialSeed(seed, options.differential, &stats,
                                         &report)) {
        std::printf("%s\n", report.ToString().c_str());
        ++failures;
      }
    }
    if (run_meta &&
        (run_metamorphic_every_seed || options.mode == "metamorphic" ||
         seed % CliOptions::kMetamorphicStride == options.first_seed %
                                                      CliOptions::
                                                          kMetamorphicStride)) {
      ++metamorphic_runs;
      for (const std::string& violation :
           vdb::fuzz::RunMetamorphicChecks(seed)) {
        std::printf("metamorphic violation (seed %llu): %s\n"
                    "  repro:  vdb_fuzz --seed %llu --mode metamorphic\n",
                    static_cast<unsigned long long>(seed), violation.c_str(),
                    static_cast<unsigned long long>(seed));
        ++failures;
      }
    }
    if ((seed - options.first_seed) % 50 == 49) {
      std::printf("... seed %llu: %s\n",
                  static_cast<unsigned long long>(seed),
                  stats.ToString().c_str());
      std::fflush(stdout);
    }
  }

  std::printf("seeds %llu..%llu: %s; %llu metamorphic runs; %d failure%s\n",
              static_cast<unsigned long long>(options.first_seed),
              static_cast<unsigned long long>(options.last_seed),
              stats.ToString().c_str(),
              static_cast<unsigned long long>(metamorphic_runs), failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
