// Differential / metamorphic fuzzing driver (see DESIGN.md §11).
//
// Usage:
//   vdb_fuzz --seeds 0..500              range of seeds, SQL + metamorphic
//   vdb_fuzz --seed 1234                 one seed
//   vdb_fuzz --mode sql|metamorphic|all  which checks to run (default all)
//   vdb_fuzz --queries N                 SQL queries per seed (default 8)
//   vdb_fuzz --no-env-invariance         skip environment re-runs (faster)
//
// Every failure is minimized (query shrinking) and printed with the exact
// command line that reproduces it. Exit status: 0 when every seed passed,
// 1 on any mismatch or invariant violation, 2 on bad usage.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/metamorphic.h"

namespace {

struct CliOptions {
  uint64_t first_seed = 0;
  uint64_t last_seed = 0;
  std::string mode = "all";
  vdb::fuzz::DifferentialOptions differential;
  // Metamorphic checks are environment-level (not per-query), so one run
  // per kMetamorphicStride seeds keeps campaigns fast without losing the
  // seed diversity of the probe randomness.
  static constexpr uint64_t kMetamorphicStride = 25;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds A..B | --seed N] [--mode sql|metamorphic"
               "|all]\n               [--queries N] [--no-env-invariance]\n",
               argv0);
  return 2;
}

bool ParseSeeds(const std::string& arg, uint64_t* first, uint64_t* last) {
  const size_t dots = arg.find("..");
  try {
    if (dots == std::string::npos) {
      *first = *last = std::stoull(arg);
      return true;
    }
    *first = std::stoull(arg.substr(0, dots));
    *last = std::stoull(arg.substr(dots + 2));
    return *first <= *last;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool run_metamorphic_every_seed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds" || arg == "--seed") {
      const char* value = next();
      if (value == nullptr ||
          !ParseSeeds(value, &options.first_seed, &options.last_seed)) {
        return Usage(argv[0]);
      }
      // A single named seed always runs every mode in full.
      run_metamorphic_every_seed =
          run_metamorphic_every_seed || arg == "--seed";
    } else if (arg == "--mode") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.mode = value;
      if (options.mode != "sql" && options.mode != "metamorphic" &&
          options.mode != "all") {
        return Usage(argv[0]);
      }
    } else if (arg == "--queries") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.differential.queries_per_seed = std::atoi(value);
      if (options.differential.queries_per_seed <= 0) return Usage(argv[0]);
    } else if (arg == "--no-env-invariance") {
      options.differential.check_environment_invariance = false;
    } else {
      return Usage(argv[0]);
    }
  }

  const bool run_sql = options.mode == "sql" || options.mode == "all";
  const bool run_meta =
      options.mode == "metamorphic" || options.mode == "all";

  vdb::fuzz::CampaignStats stats;
  int failures = 0;
  uint64_t metamorphic_runs = 0;
  for (uint64_t seed = options.first_seed; seed <= options.last_seed;
       ++seed) {
    if (run_sql) {
      vdb::fuzz::FailureReport report;
      if (vdb::fuzz::RunDifferentialSeed(seed, options.differential, &stats,
                                         &report)) {
        std::printf("%s\n", report.ToString().c_str());
        ++failures;
      }
    }
    if (run_meta &&
        (run_metamorphic_every_seed || options.mode == "metamorphic" ||
         seed % CliOptions::kMetamorphicStride == options.first_seed %
                                                      CliOptions::
                                                          kMetamorphicStride)) {
      ++metamorphic_runs;
      for (const std::string& violation :
           vdb::fuzz::RunMetamorphicChecks(seed)) {
        std::printf("metamorphic violation (seed %llu): %s\n"
                    "  repro:  vdb_fuzz --seed %llu --mode metamorphic\n",
                    static_cast<unsigned long long>(seed), violation.c_str(),
                    static_cast<unsigned long long>(seed));
        ++failures;
      }
    }
    if ((seed - options.first_seed) % 50 == 49) {
      std::printf("... seed %llu: %s\n",
                  static_cast<unsigned long long>(seed),
                  stats.ToString().c_str());
      std::fflush(stdout);
    }
  }

  std::printf("seeds %llu..%llu: %s; %llu metamorphic runs; %d failure%s\n",
              static_cast<unsigned long long>(options.first_seed),
              static_cast<unsigned long long>(options.last_seed),
              stats.ToString().c_str(),
              static_cast<unsigned long long>(metamorphic_runs), failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
