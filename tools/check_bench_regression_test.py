#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (the CI perf gate).

Runs the gate as a subprocess against synthetic baseline/report files in
a temp directory and asserts on exit code + output, so the tests cover
the same surface CI uses: direction-aware gating (lower-is-better
timings vs higher-is-better throughput entries), the --require contract,
warn-skip of absent benches/keys, the min_seconds noise floor, ratchet
reminders, and structural validation of malformed reports.

Registered in ctest as `check_bench_regression_test` (tier1); also
runnable directly: python3 tools/check_bench_regression_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def write_json(path, payload):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f)


def make_report(bench, timings=None, values=None):
    return {
        "bench": bench,
        "schema_version": 1,
        "timings": timings or {},
        "values": values or {},
    }


class GateHarness(unittest.TestCase):
    """Shared temp-dir scaffolding for gate invocations."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.bench_dir = os.path.join(self.tmp.name, "reports")
        os.mkdir(self.bench_dir)
        self.baseline_path = os.path.join(self.tmp.name, "baseline.json")

    def tearDown(self):
        self.tmp.cleanup()

    def write_baseline(self, benches, **extra):
        payload = dict(extra)
        payload["benches"] = benches
        write_json(self.baseline_path, payload)

    def write_report(self, bench, timings=None, values=None):
        write_json(os.path.join(self.bench_dir, f"BENCH_{bench}.json"),
                   make_report(bench, timings, values))

    def run_gate(self, *args):
        proc = subprocess.run(
            [sys.executable, GATE, "--bench-dir", self.bench_dir,
             "--baseline", self.baseline_path, *args],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout + proc.stderr


class DirectionAwareGating(GateHarness):
    def test_lower_is_better_within_threshold_passes(self):
        self.write_baseline({"micro": {"total_s": 10.0}}, threshold=0.25)
        self.write_report("micro", timings={"total_s": 12.0})
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("PASS", out)

    def test_lower_is_better_regression_fails(self):
        self.write_baseline({"micro": {"total_s": 10.0}}, threshold=0.25)
        self.write_report("micro", timings={"total_s": 13.0})
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("exceeds baseline", out)

    def test_higher_is_better_drop_fails(self):
        # A throughput entry is an object with higher_is_better: a value
        # *below* baseline*(1-threshold) must fail even though it would
        # pass the lower-is-better rule.
        self.write_baseline(
            {"micro": {"BM_Scan/rows_per_sec":
                       {"value": 100e6, "higher_is_better": True}}},
            threshold=0.25)
        self.write_report("micro", values={"BM_Scan/rows_per_sec": 70e6})
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("falls below baseline", out)

    def test_higher_is_better_gain_passes_with_ratchet_hint(self):
        self.write_baseline(
            {"micro": {"BM_Scan/rows_per_sec":
                       {"value": 100e6, "higher_is_better": True}}},
            threshold=0.25)
        self.write_report("micro", values={"BM_Scan/rows_per_sec": 140e6})
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("RATCHET", out)

    def test_lower_is_better_gain_prints_ratchet(self):
        self.write_baseline({"micro": {"total_s": 10.0}}, threshold=0.25)
        self.write_report("micro", timings={"total_s": 5.0})
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("RATCHET", out)

    def test_threshold_flag_overrides_baseline(self):
        # 12.0 vs 10.0 passes at the baseline's 25% but fails at --threshold
        # 0.1, proving the CLI override wins.
        self.write_baseline({"micro": {"total_s": 10.0}}, threshold=0.25)
        self.write_report("micro", timings={"total_s": 12.0})
        code, out = self.run_gate("--threshold", "0.1")
        self.assertEqual(code, 1, out)


class RequireContract(GateHarness):
    def test_missing_report_skips_with_warning_by_default(self):
        self.write_baseline({"micro": {"total_s": 10.0},
                             "other": {"total_s": 1.0}})
        self.write_report("micro", timings={"total_s": 10.0})
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("WARN", out)
        self.assertIn("other: no report in this run", out)

    def test_missing_report_fails_when_required(self):
        self.write_baseline({"micro": {"total_s": 10.0}})
        code, out = self.run_gate("--require", "micro")
        self.assertEqual(code, 1, out)
        self.assertIn("required", out)

    def test_missing_tracked_key_fails_only_when_required(self):
        self.write_baseline({"micro": {"total_s": 10.0, "gone_s": 1.0}})
        self.write_report("micro", timings={"total_s": 10.0})
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("micro/gone_s: not reported in this run", out)
        code, out = self.run_gate("--require", "micro")
        self.assertEqual(code, 1, out)
        self.assertIn("tracked key 'gone_s' missing", out)

    def test_require_of_unknown_bench_warns(self):
        self.write_baseline({"micro": {"total_s": 10.0}})
        self.write_report("micro", timings={"total_s": 10.0})
        code, out = self.run_gate("--require", "micro,nonexistent")
        self.assertEqual(code, 0, out)
        self.assertIn("no entry in", out)


class NoiseFloorAndStructure(GateHarness):
    def test_timing_below_noise_floor_not_compared(self):
        # Baseline 0.01s < min_seconds 0.05: a 10x "regression" must be
        # reported as SKIP(noise), not failed.
        self.write_baseline({"micro": {"tiny_s": 0.01}})
        self.write_report("micro", timings={"tiny_s": 0.1})
        code, out = self.run_gate()
        self.assertEqual(code, 0, out)
        self.assertIn("SKIP(noise)", out)

    def test_value_entries_ignore_noise_floor(self):
        # The floor applies to timings only; a small *value* still gates.
        self.write_baseline({"micro": {"ratio": 0.01}})
        self.write_report("micro", values={"ratio": 0.1})
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)

    def test_malformed_report_fails(self):
        self.write_baseline({"micro": {"total_s": 10.0}})
        write_json(os.path.join(self.bench_dir, "BENCH_micro.json"),
                   {"bench": "micro", "timings": {"total_s": "fast"}})
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("is not a number", out)

    def test_report_naming_wrong_bench_fails(self):
        self.write_baseline({"micro": {"total_s": 10.0}})
        write_json(os.path.join(self.bench_dir, "BENCH_micro.json"),
                   make_report("something_else", timings={"total_s": 10.0}))
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("expected 'micro'", out)

    def test_missing_baseline_file_fails(self):
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("cannot read", out)


if __name__ == "__main__":
    unittest.main()
