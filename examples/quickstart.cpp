// Quickstart: the full virtualization-design loop in ~60 lines of API use.
//
//   1. describe the physical machine,
//   2. generate a calibration database and calibrate P(R) over a grid,
//   3. define two database workloads,
//   4. ask the Advisor for a resource allocation,
//   5. measure the recommendation against the default equal split.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "calib/grid.h"
#include "core/advisor.h"
#include "datagen/calibration_db.h"
#include "datagen/synthetic.h"
#include "exec/database.h"
#include "sim/machine.h"

using namespace vdb;

int main() {
  // --- 1. The physical machine the VMs will share. ---
  const sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();

  // --- 2. Calibrate the optimizer for different resource allocations. ---
  exec::Database calibration_db;
  datagen::CalibrationDbConfig cal_config;
  cal_config.base_rows = 5000;  // small: quickstart favors speed
  VDB_CHECK_OK(
      datagen::GenerateCalibrationDb(calibration_db.catalog(), cal_config));

  calib::CalibrationGridSpec grid;
  grid.cpu_shares = {0.25, 0.5, 0.75};
  grid.memory_shares = {0.5};
  grid.io_shares = {0.5};
  auto store = calib::CalibrateGrid(&calibration_db, machine,
                                    sim::HypervisorModel::XenLike(), grid);
  VDB_CHECK(store.ok()) << store.status();
  std::printf("calibrated P(R) at %zu allocations\n", store->size());

  // --- 3. Two databases with opposite workloads. ---
  exec::Database db;
  datagen::ColumnSpec key;
  key.name = "k";
  key.distribution = datagen::Distribution::kSequential;
  datagen::ColumnSpec text;
  text.name = "s";
  text.type = catalog::TypeId::kString;
  text.distribution = datagen::Distribution::kRandomText;
  text.string_length = 40;
  datagen::ColumnSpec pad = text;
  pad.name = "pad";
  pad.string_length = 1500;
  // scans: wide rows -> I/O-bound;  events: text matching -> CPU-bound.
  VDB_CHECK_OK(datagen::GenerateTable(db.catalog(), "archive", {key, pad},
                                      8000, 1));
  VDB_CHECK_OK(datagen::GenerateTable(db.catalog(), "events", {key, text},
                                      40000, 2));
  VDB_CHECK_OK(db.catalog()->AnalyzeAll());

  core::VirtualizationDesignProblem problem;
  problem.machine = machine;
  problem.workloads = {
      core::Workload::Repeated("archive-scans",
                               "select count(*) from archive", 2),
      core::Workload::Repeated(
          "event-search",
          "select count(*) from events where s like '%foxes%' and s like "
          "'%beans%'",
          2)};
  problem.databases = {&db, &db};
  problem.controlled = {sim::ResourceKind::kCpu};
  problem.grid_steps = 4;

  // --- 4. Recommend an allocation from what-if estimates alone. ---
  core::Advisor advisor(&*store);
  auto design = advisor.Recommend(problem);
  VDB_CHECK(design.ok()) << design.status();
  std::printf("\n%s\n", design->ToString().c_str());

  // --- 5. Validate by actually running the workloads in VMs. ---
  auto recommended = core::Advisor::Measure(problem, design->allocations);
  auto equal = core::Advisor::Measure(
      problem, core::EqualSplitSolution(problem).allocations);
  VDB_CHECK(recommended.ok());
  VDB_CHECK(equal.ok());
  std::printf("\nmeasured total: equal split %.2fs -> recommended %.2fs "
              "(%.1f%% better)\n",
              equal->total_seconds, recommended->total_seconds,
              100.0 * (1.0 - recommended->total_seconds /
                                 equal->total_seconds));
  return 0;
}
