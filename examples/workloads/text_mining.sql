-- Text-mining workload: CPU-heavy LIKE scans over order comments.
select c_count, count(*) as custdist from (select c_custkey,
  count(o_orderkey) from customer left outer join orders on
  c_custkey = o_custkey and o_comment not like '%special%requests%'
  group by c_custkey) as c_orders (c_custkey, c_count)
  group by c_count order by custdist desc, c_count desc;
select count(*) from orders where o_comment like '%furiously%'
  and o_comment like '%deposits%';
