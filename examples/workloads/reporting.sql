-- Reporting workload: scan-heavy TPC-H analytics.
select o_orderpriority, count(*) as order_count from orders
  where o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-10-01'
  and exists (select * from lineitem where l_orderkey = o_orderkey
              and l_commitdate < l_receiptdate)
  group by o_orderpriority order by o_orderpriority;
select sum(l_extendedprice * l_discount) as revenue from lineitem
  where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07 and l_quantity < 24;
