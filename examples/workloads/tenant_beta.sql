-- Tenant beta: a mixed workload where the self-join aggregate is far
-- beyond the tenant's budget_cpu_ms and must abort with BudgetExceeded
-- (the two cheap statements keep its success rate non-zero).
select count(*) from events where grp = 3;
select a.grp, count(*) as pairs from events a join events b
  on a.grp = b.grp group by a.grp order by pairs desc limit 5;
select grp, count(*) from events where id < 1000 group by grp limit 5;
