-- Tenant alpha: cheap single-table analytics over the synthetic `events`
-- table (id sequential, grp Zipf 0..100, val uniform real, note text).
select grp, count(*) as n, avg(val) as mean_val from events
  where grp < 50 group by grp order by n desc limit 10;
select count(*) from events where val between 100.0 and 200.0;
select id, val from events where grp = 7 order by val desc limit 5;
select max(val) as hi, min(val) as lo from events;
