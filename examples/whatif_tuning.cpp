// What-if tuning demo: the same SQL statement, optimized under the
// calibrated parameters of three different VM allocations. Shows the
// virtualization-aware what-if mode producing different costs — and
// different *plans* — per allocation, without ever running the query with
// those allocations.
//
// Build & run:  ./build/examples/whatif_tuning

#include <cstdio>

#include "calib/calibration.h"
#include "datagen/calibration_db.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

using namespace vdb;

int main() {
  const sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();

  exec::Database db;
  datagen::CalibrationDbConfig config;
  config.base_rows = 70000;
  VDB_CHECK_OK(datagen::GenerateCalibrationDb(db.catalog(), config));

  // A range query near the sequential/index crossover: the best plan
  // depends on how expensive tuple CPU is relative to page I/O.
  const std::string sql =
      "select count(*) from cal_indexed where a between 35000 and 35039";
  std::printf("query: %s\n", sql.c_str());

  calib::Calibrator calibrator(&db);
  for (double cpu : {0.10, 0.50, 0.90}) {
    sim::VirtualMachine vm("vm", machine, sim::HypervisorModel::XenLike(),
                           sim::ResourceShare(cpu, 0.5, 0.5));
    auto calibrated = calibrator.Calibrate(vm);
    VDB_CHECK(calibrated.ok()) << calibrated.status();
    db.SetOptimizerParams(calibrated->params);

    auto plan = db.Prepare(sql);
    VDB_CHECK(plan.ok()) << plan.status();
    std::printf("\n--- what-if: VM with %.0f%% CPU ---\n", 100 * cpu);
    std::printf("calibrated %s\n", calibrated->params.ToString().c_str());
    std::printf("estimated time: %.2f ms\nplan:\n%s",
                (*plan)->total_cost_ms, (*plan)->ToString(2).c_str());

    // Sanity: run it for real under that allocation.
    VDB_CHECK_OK(db.DropCaches());
    auto result = db.ExecutePlan(**plan, vm);
    VDB_CHECK(result.ok()) << result.status();
    std::printf("actual time:    %.2f ms (%llu physical reads)\n",
                1000.0 * result->elapsed_seconds,
                static_cast<unsigned long long>(result->physical_reads));
  }
  return 0;
}
