// design_advisor — command-line front end for the full pipeline:
//
//   calibrate:  build (or refresh) a P(R) calibration store for a machine
//               and save it to a file
//   recommend:  load the store, load N workloads from .sql files, run the
//               design search, print (and optionally measure) the result
//
// Usage:
//   design_advisor calibrate --store FILE [--points N]
//   design_advisor recommend --store FILE --workload w1.sql --workload
//       w2.sql [...] [--resources cpu,io] [--steps K] [--algorithm
//       greedy|dp|exhaustive] [--measure]
//
// Workload SQL runs against a built-in TPC-H database (SF 0.02), so the
// .sql files can reference the TPC-H schema. See examples/workloads/.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "calib/grid.h"
#include "core/advisor.h"
#include "core/workload_io.h"
#include "datagen/calibration_db.h"
#include "datagen/tpch.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "util/string_util.h"

using namespace vdb;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  design_advisor calibrate --store FILE [--points N]\n"
      "  design_advisor recommend --store FILE --workload FILE.sql ... \n"
      "      [--resources cpu,io] [--steps K]\n"
      "      [--algorithm greedy|dp|exhaustive] [--measure]\n");
  return 2;
}

int Calibrate(const std::string& store_path, int points) {
  exec::Database db;
  datagen::CalibrationDbConfig config;
  config.base_rows = 8000;
  VDB_CHECK_OK(datagen::GenerateCalibrationDb(db.catalog(), config));
  calib::CalibrationGridSpec spec;
  spec.cpu_shares.clear();
  spec.io_shares.clear();
  for (int i = 0; i < points; ++i) {
    const double share =
        0.1 + 0.8 * static_cast<double>(i) / (points - 1);
    spec.cpu_shares.push_back(share);
    spec.io_shares.push_back(share);
  }
  spec.memory_shares = {0.5};
  std::printf("calibrating %dx%d (cpu x io) grid...\n", points, points);
  auto store = calib::CalibrateGrid(
      &db, sim::MachineSpec::PaperTestbed(),
      sim::HypervisorModel::XenLike(), spec,
      [](const sim::ResourceShare& share,
         const calib::CalibrationResult& result) {
        std::printf("  %s -> fit residual %.2f ms\n",
                    share.ToString().c_str(), result.residual_rms_ms);
      });
  VDB_CHECK(store.ok()) << store.status();
  VDB_CHECK_OK(store->SaveToFile(store_path));
  std::printf("saved %zu points to %s\n", store->size(),
              store_path.c_str());
  return 0;
}

int Recommend(const std::string& store_path,
              const std::vector<std::string>& workload_files,
              const std::string& resources, int steps,
              const std::string& algorithm_name, bool measure) {
  auto store = calib::CalibrationStore::LoadFromFile(store_path);
  if (!store.ok()) {
    std::fprintf(stderr, "cannot load store: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  core::VirtualizationDesignProblem problem;
  problem.machine = sim::MachineSpec::PaperTestbed();
  problem.grid_steps = steps;
  problem.controlled.clear();
  for (const std::string& resource : Split(resources, ',')) {
    if (resource == "cpu") {
      problem.controlled.push_back(sim::ResourceKind::kCpu);
    } else if (resource == "io") {
      problem.controlled.push_back(sim::ResourceKind::kIo);
    } else if (resource == "memory") {
      problem.controlled.push_back(sim::ResourceKind::kMemory);
    } else {
      std::fprintf(stderr, "unknown resource '%s'\n", resource.c_str());
      return 2;
    }
  }

  // One database instance per workload, all with the TPC-H schema.
  std::vector<std::unique_ptr<exec::Database>> databases;
  std::printf("loading TPC-H data for %zu VMs...\n", workload_files.size());
  for (const std::string& file : workload_files) {
    auto workload = core::LoadWorkloadFile(file);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   workload.status().ToString().c_str());
      return 1;
    }
    auto db = std::make_unique<exec::Database>();
    datagen::TpchConfig config;
    config.scale_factor = 0.02;
    VDB_CHECK_OK(datagen::GenerateTpch(db->catalog(), config));
    problem.workloads.push_back(std::move(*workload));
    problem.databases.push_back(db.get());
    databases.push_back(std::move(db));
  }

  core::SearchAlgorithm algorithm;
  if (algorithm_name == "greedy") {
    algorithm = core::SearchAlgorithm::kGreedy;
  } else if (algorithm_name == "exhaustive") {
    algorithm = core::SearchAlgorithm::kExhaustive;
  } else {
    algorithm = core::SearchAlgorithm::kDynamicProgramming;
  }

  core::Advisor advisor(&*store);
  auto design = advisor.Recommend(problem, algorithm);
  if (!design.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 design.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", design->ToString().c_str());
  std::printf("(%llu what-if evaluations)\n",
              static_cast<unsigned long long>(design->evaluations));

  if (measure) {
    auto recommended = core::Advisor::Measure(problem, design->allocations);
    auto equal = core::Advisor::Measure(
        problem, core::EqualSplitSolution(problem).allocations);
    VDB_CHECK(recommended.ok()) << recommended.status();
    VDB_CHECK(equal.ok());
    std::printf("\nmeasured (simulated) workload times:\n");
    for (size_t i = 0; i < problem.workloads.size(); ++i) {
      std::printf("  %-20s equal %.2fs -> recommended %.2fs\n",
                  problem.workloads[i].name.c_str(),
                  equal->workload_seconds[i],
                  recommended->workload_seconds[i]);
    }
    std::printf("total: equal %.2fs -> recommended %.2fs\n",
                equal->total_seconds, recommended->total_seconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  std::string store_path;
  std::vector<std::string> workloads;
  std::string resources = "cpu";
  std::string algorithm = "dp";
  int steps = 8;
  int points = 4;
  bool measure = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--store") {
      const char* v = next();
      if (!v) return Usage();
      store_path = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (!v) return Usage();
      workloads.push_back(v);
    } else if (arg == "--resources") {
      const char* v = next();
      if (!v) return Usage();
      resources = v;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (!v) return Usage();
      algorithm = v;
    } else if (arg == "--steps") {
      const char* v = next();
      if (!v) return Usage();
      steps = std::atoi(v);
    } else if (arg == "--points") {
      const char* v = next();
      if (!v) return Usage();
      points = std::atoi(v);
    } else if (arg == "--measure") {
      measure = true;
    } else {
      return Usage();
    }
  }
  if (store_path.empty()) return Usage();
  if (mode == "calibrate") return Calibrate(store_path, points);
  if (mode == "recommend") {
    if (workloads.size() < 2) {
      std::fprintf(stderr, "need at least two --workload files\n");
      return 2;
    }
    return Recommend(store_path, workloads, resources, steps, algorithm,
                     measure);
  }
  return Usage();
}
