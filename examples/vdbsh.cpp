// vdbsh — an interactive SQL shell over the engine, running inside a
// configurable virtual machine. Demonstrates the whole stack as a usable
// tool: type SQL, get rows plus the simulated execution time and the
// optimizer's estimate for the current VM allocation.
//
// Commands:
//   <sql>;                 execute a SELECT statement
//   \vm <cpu> <mem> <io>   reconfigure the VM's resource shares (0..1]
//   \explain <sql>         show the chosen physical plan and estimate
//   \tables                list tables with row/page counts
//   \cold                  drop the buffer pool (cold cache)
//   \timing on|off         toggle the timing footer
//   \metrics [json|reset|on|off]   engine metrics (DESIGN.md §9)
//   \help                  this text
//   \q                     quit
//
// Build & run:  ./build/examples/vdbsh [tpch-scale-factor]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/tpch.h"
#include "exec/database.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"
#include "util/string_util.h"

using namespace vdb;

namespace {

void PrintHelp() {
  std::printf(
      "  <sql>;                 execute a SELECT statement\n"
      "  \\vm <cpu> <mem> <io>   reconfigure the VM's resource shares\n"
      "  \\explain <sql>         show the physical plan and estimate\n"
      "  \\tables                list tables\n"
      "  \\cold                  drop the buffer pool\n"
      "  \\zonemaps on|off       toggle zone-map page skipping (§16)\n"
      "  \\timing on|off         toggle the timing footer\n"
      "  \\metrics               show engine metrics since startup\n"
      "  \\metrics json          the same, as a JSON snapshot\n"
      "  \\metrics reset         zero all metrics\n"
      "  \\metrics on|off        enable/disable metric collection\n"
      "  \\q                     quit\n");
}

void PrintRows(const exec::QueryResult& result, size_t max_rows) {
  for (const std::string& name : result.column_names) {
    std::printf("%-18s", name.substr(0, 17).c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < result.column_names.size(); ++i) {
    std::printf("%-18s", "-----------------");
  }
  std::printf("\n");
  for (size_t r = 0; r < result.rows.size() && r < max_rows; ++r) {
    for (const catalog::Value& v : result.rows[r]) {
      std::printf("%-18s", v.ToString().substr(0, 17).c_str());
    }
    std::printf("\n");
  }
  if (result.rows.size() > max_rows) {
    std::printf("... (%zu rows total)\n", result.rows.size());
  }
  std::printf("(%zu rows)\n", result.rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  const double scale_factor = argc > 1 ? std::atof(argv[1]) : 0.01;

  exec::Database db;
  std::printf("loading TPC-H data at scale factor %.3f...\n", scale_factor);
  datagen::TpchConfig config;
  config.scale_factor = scale_factor;
  VDB_CHECK_OK(datagen::GenerateTpch(db.catalog(), config));

  obs::MetricsRegistry::Global().set_enabled(true);

  const sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();
  sim::VirtualMachine vm("shell-vm", machine,
                         sim::HypervisorModel::XenLike(),
                         sim::ResourceShare(0.5, 0.5, 0.5));
  VDB_CHECK_OK(db.ApplyVmConfig(vm));

  std::printf(
      "vdbsh — %s inside a VM with shares %s\n"
      "type \\help for commands; statements end with ';'\n\n",
      machine.name.c_str(), vm.share().ToString().c_str());

  bool timing = true;
  std::string buffer;
  std::string line;
  while (std::printf("vdb%s ", buffer.empty() ? ">" : "-"),
         std::getline(std::cin, line)) {
    const std::string trimmed(Trim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      std::istringstream args(trimmed);
      std::string command;
      args >> command;
      if (command == "\\q" || command == "\\quit") break;
      if (command == "\\help") {
        PrintHelp();
      } else if (command == "\\tables") {
        for (catalog::TableInfo* table : db.catalog()->Tables()) {
          std::printf("  %-12s %9llu rows %7llu pages, %zu indexes\n",
                      table->name.c_str(),
                      static_cast<unsigned long long>(
                          table->heap->NumRecords()),
                      static_cast<unsigned long long>(
                          table->heap->NumPages()),
                      table->indexes.size());
        }
      } else if (command == "\\cold") {
        const Status status = db.DropCaches();
        std::printf("%s\n", status.ToString().c_str());
      } else if (command == "\\zonemaps") {
        std::string mode;
        args >> mode;
        if (mode == "on" || mode == "off") {
          db.set_zone_maps_enabled(mode == "on");
        } else if (!mode.empty()) {
          std::printf("usage: \\zonemaps on|off\n");
          continue;
        }
        std::printf("zone maps %s\n",
                    db.zone_maps_enabled() ? "on" : "off");
      } else if (command == "\\timing") {
        std::string mode;
        args >> mode;
        timing = mode != "off";
        std::printf("timing %s\n", timing ? "on" : "off");
      } else if (command == "\\metrics") {
        std::string mode;
        args >> mode;
        auto& registry = obs::MetricsRegistry::Global();
        if (mode.empty()) {
          std::printf("%s", registry.Snapshot().ToText().c_str());
        } else if (mode == "json") {
          std::printf("%s\n", registry.ToJson().c_str());
        } else if (mode == "reset") {
          registry.Reset();
          std::printf("metrics reset\n");
        } else if (mode == "on" || mode == "off") {
          registry.set_enabled(mode == "on");
          std::printf("metrics %s\n", mode.c_str());
        } else {
          std::printf("usage: \\metrics [json|reset|on|off]\n");
        }
      } else if (command == "\\vm") {
        double cpu = 0;
        double memory = 0;
        double io = 0;
        if (!(args >> cpu >> memory >> io)) {
          std::printf("usage: \\vm <cpu> <mem> <io>\n");
          continue;
        }
        const sim::ResourceShare share(cpu, memory, io);
        if (Status status = share.Validate(); !status.ok()) {
          std::printf("%s\n", status.ToString().c_str());
          continue;
        }
        vm.set_share(share);
        if (Status status = db.ApplyVmConfig(vm); !status.ok()) {
          std::printf("%s\n", status.ToString().c_str());
          continue;
        }
        std::printf("VM now %s (pool %llu pages, work_mem %s)\n",
                    share.ToString().c_str(),
                    static_cast<unsigned long long>(
                        db.config().buffer_pool_pages),
                    FormatBytes(db.config().work_mem_bytes).c_str());
      } else if (command == "\\explain") {
        std::string sql;
        std::getline(args, sql);
        auto plan = db.Prepare(sql);
        if (!plan.ok()) {
          std::printf("error: %s\n", plan.status().ToString().c_str());
          continue;
        }
        std::printf("%sestimated time: %.2f ms (zone maps %s)\n",
                    (*plan)->ToString().c_str(), (*plan)->total_cost_ms,
                    db.zone_maps_enabled() ? "on" : "off");
      } else {
        std::printf("unknown command %s (try \\help)\n", command.c_str());
      }
      continue;
    }
    // Accumulate SQL until a ';'.
    buffer += line;
    buffer += ' ';
    if (trimmed.empty() || trimmed.back() != ';') continue;
    const std::string sql = buffer;
    buffer.clear();
    if (Trim(sql).empty() || Trim(sql) == ";") continue;

    auto result = db.Execute(sql, vm);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintRows(*result, 40);
    if (timing) {
      std::printf(
          "time: %.2f ms simulated (cpu %.2f ms, io %.2f ms, %llu "
          "physical reads) | pages: %llu scanned, %llu pruned | "
          "optimizer estimate: %.2f ms\n",
          1000 * result->elapsed_seconds, 1000 * result->cpu_seconds,
          1000 * result->io_seconds,
          static_cast<unsigned long long>(result->physical_reads),
          static_cast<unsigned long long>(result->pages_scanned),
          static_cast<unsigned long long>(result->pages_pruned),
          result->estimated_ms);
    }
  }
  std::printf("\nbye\n");
  return 0;
}
