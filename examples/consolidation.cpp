// Server consolidation (the paper's Section 1.1 motivation): three
// departmental database servers — an orders database doing key lookups, a
// reporting warehouse running TPC-H-style analytics, and a log-search
// service doing text matching — are consolidated onto one physical
// machine as three VMs. The virtualization design problem is to divide
// CPU and I/O among them.
//
// Build & run:  ./build/examples/consolidation

#include <cstdio>

#include "calib/grid.h"
#include "core/advisor.h"
#include "datagen/calibration_db.h"
#include "datagen/synthetic.h"
#include "datagen/tpch.h"
#include "datagen/tpch_queries.h"
#include "exec/database.h"
#include "sim/machine.h"

using namespace vdb;

int main() {
  const sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();
  std::printf("consolidating 3 departmental databases onto %s\n\n",
              machine.name.c_str());

  // Offline, once per machine: calibrate P(R).
  exec::Database calibration_db;
  datagen::CalibrationDbConfig cal_config;
  cal_config.base_rows = 8000;
  VDB_CHECK_OK(
      datagen::GenerateCalibrationDb(calibration_db.catalog(), cal_config));
  calib::CalibrationGridSpec grid;
  grid.cpu_shares = {0.15, 0.35, 0.55, 0.75};
  grid.memory_shares = {1.0 / 3.0};
  grid.io_shares = {0.15, 0.35, 0.55, 0.75};
  auto store = calib::CalibrateGrid(&calibration_db, machine,
                                    sim::HypervisorModel::XenLike(), grid);
  VDB_CHECK(store.ok()) << store.status();

  // Department 1: orders service (indexed point lookups).
  exec::Database orders_db;
  {
    datagen::ColumnSpec id;
    id.name = "order_id";
    id.distribution = datagen::Distribution::kSequential;
    datagen::ColumnSpec cust;
    cust.name = "customer_id";
    cust.distribution = datagen::Distribution::kZipf;
    cust.min_value = 1;
    cust.max_value = 5000;
    datagen::ColumnSpec note;
    note.name = "note";
    note.type = catalog::TypeId::kString;
    note.distribution = datagen::Distribution::kRandomText;
    note.string_length = 60;
    VDB_CHECK_OK(datagen::GenerateTable(orders_db.catalog(), "orders",
                                        {id, cust, note}, 60000, 3));
    VDB_CHECK(orders_db.catalog()
                  ->CreateIndex("orders_pk", "orders", "order_id")
                  .ok());
    VDB_CHECK(orders_db.catalog()
                  ->CreateIndex("orders_cust", "orders", "customer_id")
                  .ok());
    VDB_CHECK_OK(orders_db.catalog()->AnalyzeAll());
  }
  core::Workload orders_workload("orders-lookups", {});
  for (int i = 0; i < 40; ++i) {
    orders_workload.statements.push_back(
        "select note from orders where order_id = " +
        std::to_string(1500 * i + 77));
  }

  // Department 2: reporting warehouse (TPC-H analytics).
  exec::Database warehouse_db;
  {
    datagen::TpchConfig config;
    config.scale_factor = 0.02;
    VDB_CHECK_OK(datagen::GenerateTpch(warehouse_db.catalog(), config));
  }
  core::Workload warehouse_workload(
      "reporting", {*datagen::TpchQuery(1), *datagen::TpchQuery(3),
                    *datagen::TpchQuery(6)});

  // Department 3: log search (LIKE-heavy text matching).
  exec::Database logs_db;
  {
    datagen::ColumnSpec ts;
    ts.name = "ts";
    ts.distribution = datagen::Distribution::kSequential;
    datagen::ColumnSpec line;
    line.name = "line";
    line.type = catalog::TypeId::kString;
    line.distribution = datagen::Distribution::kRandomText;
    line.string_length = 90;
    VDB_CHECK_OK(datagen::GenerateTable(logs_db.catalog(), "logs",
                                        {ts, line}, 50000, 4));
    VDB_CHECK_OK(logs_db.catalog()->AnalyzeAll());
  }
  core::Workload logs_workload(
      "log-search",
      std::vector<std::string>(
          3, "select count(*) from logs where line like '%deposits%' and "
             "line like '%furiously%' or line like '%theodolites%'"));

  core::VirtualizationDesignProblem problem;
  problem.machine = machine;
  problem.workloads = {orders_workload, warehouse_workload, logs_workload};
  problem.databases = {&orders_db, &warehouse_db, &logs_db};
  problem.controlled = {sim::ResourceKind::kCpu, sim::ResourceKind::kIo};
  problem.grid_steps = 9;

  core::Advisor advisor(&*store);
  auto design =
      advisor.Recommend(problem, core::SearchAlgorithm::kDynamicProgramming);
  VDB_CHECK(design.ok()) << design.status();

  std::printf("recommended allocation (memory fixed at 1/3 each):\n");
  for (size_t i = 0; i < problem.workloads.size(); ++i) {
    std::printf("  %-16s cpu=%2.0f%%  io=%2.0f%%\n",
                problem.workloads[i].name.c_str(),
                100 * design->allocations[i].cpu,
                100 * design->allocations[i].io);
  }

  auto recommended = core::Advisor::Measure(problem, design->allocations);
  auto equal = core::Advisor::Measure(
      problem, core::EqualSplitSolution(problem).allocations);
  VDB_CHECK(recommended.ok()) << recommended.status();
  VDB_CHECK(equal.ok());

  std::printf("\nper-department measured times (equal -> recommended):\n");
  for (size_t i = 0; i < problem.workloads.size(); ++i) {
    std::printf("  %-16s %6.2fs -> %6.2fs\n",
                problem.workloads[i].name.c_str(),
                equal->workload_seconds[i],
                recommended->workload_seconds[i]);
  }
  std::printf("total: %.2fs -> %.2fs (%.1f%% better)\n",
              equal->total_seconds, recommended->total_seconds,
              100.0 * (1.0 - recommended->total_seconds /
                                 equal->total_seconds));
  return 0;
}
