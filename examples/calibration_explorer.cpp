// Calibration explorer: runs the paper's Section 5 calibration process
// over a grid of resource allocations, prints the fitted optimizer
// parameters P(R), persists the store to disk, reloads it, and
// demonstrates interpolated lookups at off-grid allocations.
//
// Build & run:  ./build/examples/calibration_explorer [store-path]

#include <cstdio>
#include <string>

#include "calib/grid.h"
#include "calib/store.h"
#include "datagen/calibration_db.h"
#include "exec/database.h"
#include "sim/machine.h"

using namespace vdb;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/vdb_calibration_store.txt";
  const sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();

  exec::Database db;
  datagen::CalibrationDbConfig config;
  config.base_rows = 8000;
  VDB_CHECK_OK(datagen::GenerateCalibrationDb(db.catalog(), config));

  calib::CalibrationGridSpec grid;
  grid.cpu_shares = {0.25, 0.5, 0.75};
  grid.memory_shares = {0.5};
  grid.io_shares = {0.25, 0.5, 0.75};

  std::printf("calibrating %s over a %zux%zu (cpu x io) grid...\n\n",
              machine.name.c_str(), grid.cpu_shares.size(),
              grid.io_shares.size());
  std::printf("%-22s %10s %12s %10s %12s %12s %9s\n", "allocation",
              "seq_page", "random_page", "cpu_tuple", "cpu_idx_tup",
              "cpu_operator", "fit RMS");

  auto store = calib::CalibrateGrid(
      &db, machine, sim::HypervisorModel::XenLike(), grid,
      [](const sim::ResourceShare& share,
         const calib::CalibrationResult& result) {
        const auto v = result.params.CalibratedVector();
        std::printf("cpu=%.2f io=%.2f       %8.3fms %10.3fms %8.4fms "
                    "%10.4fms %10.5fms %7.2fms\n",
                    share.cpu, share.io, v[0], v[1], v[2], v[3], v[4],
                    result.residual_rms_ms);
      });
  VDB_CHECK(store.ok()) << store.status();

  VDB_CHECK_OK(store->SaveToFile(path));
  std::printf("\nsaved %zu calibrated points to %s\n", store->size(),
              path.c_str());

  auto reloaded = calib::CalibrationStore::LoadFromFile(path);
  VDB_CHECK(reloaded.ok()) << reloaded.status();
  std::printf("reloaded store with %zu points\n\n", reloaded->size());

  std::printf("interpolated lookups at off-grid allocations:\n");
  for (const auto& [cpu, io] :
       {std::pair{0.33, 0.5}, {0.6, 0.4}, {0.5, 0.66}}) {
    auto params = reloaded->Lookup(sim::ResourceShare(cpu, 0.5, io));
    VDB_CHECK(params.ok()) << params.status();
    std::printf("  cpu=%.2f io=%.2f -> %s\n", cpu, io,
                params->ToString().c_str());
  }
  return 0;
}
