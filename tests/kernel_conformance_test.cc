// Conformance matrix for the SIMD expression kernels (src/plan/kernels/):
// every kernel of every compiled-in ISA table must produce byte-identical
// outputs to the scalar reference table over adversarial batches —
// all-NULL / null-free / alternating null maps, dense, sparse, and empty
// selection vectors, batch sizes around the SIMD width and the default
// batch size, and payloads seeded with NaN, ±0.0, INT64_MIN/MAX.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "plan/kernels/kernels.h"
#include "plan/kernels/kernels_isa.h"

namespace vdb::plan::kernels {
namespace {

constexpr CmpOp kAllCmpOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
constexpr ArithOp kAllArithOps[] = {ArithOp::kAdd, ArithOp::kSub,
                                    ArithOp::kMul};
constexpr size_t kBatchSizes[] = {0, 1, 2, 3, 7, 1023, 1024, 1025};

std::vector<const KernelTable*> NonScalarTables() {
  std::vector<const KernelTable*> tables;
  for (int i = 1; i < kNumIsas; ++i) {
    const KernelTable* t = TableFor(static_cast<Isa>(i));
    if (t != nullptr) tables.push_back(t);
  }
  return tables;
}

// Null-map shapes the matrix sweeps for each operand.
enum class NullShape { kNone, kAll, kAlternating, kSparse };
constexpr NullShape kNullShapes[] = {NullShape::kNone, NullShape::kAll,
                                     NullShape::kAlternating,
                                     NullShape::kSparse};

std::vector<uint8_t> MakeNulls(NullShape shape, size_t n) {
  std::vector<uint8_t> nulls(n, 0);
  switch (shape) {
    case NullShape::kNone:
      break;
    case NullShape::kAll:
      std::fill(nulls.begin(), nulls.end(), 1);
      break;
    case NullShape::kAlternating:
      for (size_t i = 0; i < n; i += 2) nulls[i] = 1;
      break;
    case NullShape::kSparse:
      for (size_t i = 0; i < n; i += 97) nulls[i] = 1;
      break;
  }
  return nulls;
}

// Selection-vector shapes: identity (SIMD path), sparse and dense
// non-identity subsets (scalar fallback path), and empty.
enum class SelShape { kIdentity, kSparse, kDenseOffset, kEmpty };
constexpr SelShape kSelShapes[] = {SelShape::kIdentity, SelShape::kSparse,
                                   SelShape::kDenseOffset, SelShape::kEmpty};

std::vector<uint32_t> MakeSel(SelShape shape, size_t n) {
  std::vector<uint32_t> sel;
  switch (shape) {
    case SelShape::kIdentity:
      for (size_t i = 0; i < n; ++i) sel.push_back(static_cast<uint32_t>(i));
      break;
    case SelShape::kSparse:
      for (size_t i = 0; i < n; i += 3) sel.push_back(static_cast<uint32_t>(i));
      break;
    case SelShape::kDenseOffset:
      // Dense run that skips row 0, so SelIsIdentity is false even though
      // consecutive rows are adjacent.
      for (size_t i = 1; i < n; ++i) sel.push_back(static_cast<uint32_t>(i));
      break;
    case SelShape::kEmpty:
      break;
  }
  return sel;
}

std::vector<int64_t> MakeInt64Payload(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0:
        vals[i] = 0;
        break;
      case 1:
        vals[i] = std::numeric_limits<int64_t>::min();
        break;
      case 2:
        vals[i] = std::numeric_limits<int64_t>::max();
        break;
      case 3:
        vals[i] = -1;
        break;
      case 4:
        vals[i] = 42;
        break;
      default:
        vals[i] = static_cast<int64_t>(rng());
        break;
    }
  }
  return vals;
}

std::vector<double> MakeDoublePayload(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  std::vector<double> vals(n);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 8) {
      case 0:
        vals[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        vals[i] = 0.0;
        break;
      case 2:
        vals[i] = -0.0;
        break;
      case 3:
        vals[i] = std::numeric_limits<double>::infinity();
        break;
      case 4:
        vals[i] = -std::numeric_limits<double>::infinity();
        break;
      case 5:
        vals[i] = 42.5;
        break;
      default:
        vals[i] = dist(rng);
        break;
    }
  }
  return vals;
}

std::string CaseLabel(const char* isa, size_t n, int null_shape,
                      int sel_shape, int op) {
  return std::string("isa=") + isa + " n=" + std::to_string(n) +
         " nulls=" + std::to_string(null_shape) +
         " sel=" + std::to_string(sel_shape) + " op=" + std::to_string(op);
}

TEST(KernelConformance, AtLeastSse2IsCompiledInOnX86) {
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_NE(TableFor(Isa::kSse2), nullptr);
#else
  GTEST_SKIP() << "non-x86 target: only the scalar table is expected";
#endif
}

TEST(KernelConformance, FilterInt64ColConst) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  for (const KernelTable* table : NonScalarTables()) {
    for (size_t n : kBatchSizes) {
      const std::vector<int64_t> vals = MakeInt64Payload(n, 0x1234 + n);
      for (NullShape null_shape : kNullShapes) {
        const std::vector<uint8_t> nulls = MakeNulls(null_shape, n);
        const uint8_t* nulls_ptr =
            null_shape == NullShape::kNone ? nullptr : nulls.data();
        for (SelShape sel_shape : kSelShapes) {
          const std::vector<uint32_t> base_sel = MakeSel(sel_shape, n);
          for (CmpOp op : kAllCmpOps) {
            for (int64_t constant :
                 {int64_t{0}, int64_t{42},
                  std::numeric_limits<int64_t>::min(),
                  std::numeric_limits<int64_t>::max()}) {
              std::vector<uint32_t> expect_sel = base_sel;
              std::vector<uint32_t> got_sel = base_sel;
              const size_t expect_kept = ref->filter_i64_col_const(
                  op, vals.data(), nulls_ptr, expect_sel.data(),
                  expect_sel.size(), constant);
              const size_t got_kept = table->filter_i64_col_const(
                  op, vals.data(), nulls_ptr, got_sel.data(), got_sel.size(),
                  constant);
              expect_sel.resize(expect_kept);
              got_sel.resize(got_kept);
              ASSERT_EQ(expect_sel, got_sel)
                  << CaseLabel(IsaName(table->isa), n,
                               static_cast<int>(null_shape),
                               static_cast<int>(sel_shape),
                               static_cast<int>(op))
                  << " const=" << constant;
            }
          }
        }
      }
    }
  }
}

TEST(KernelConformance, FilterDoubleColConst) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  for (const KernelTable* table : NonScalarTables()) {
    for (size_t n : kBatchSizes) {
      const std::vector<double> vals = MakeDoublePayload(n, 0x9876 + n);
      for (NullShape null_shape : kNullShapes) {
        const std::vector<uint8_t> nulls = MakeNulls(null_shape, n);
        const uint8_t* nulls_ptr =
            null_shape == NullShape::kNone ? nullptr : nulls.data();
        for (SelShape sel_shape : kSelShapes) {
          const std::vector<uint32_t> base_sel = MakeSel(sel_shape, n);
          for (CmpOp op : kAllCmpOps) {
            for (double constant : {0.0, -0.0, 42.5, kNan}) {
              std::vector<uint32_t> expect_sel = base_sel;
              std::vector<uint32_t> got_sel = base_sel;
              const size_t expect_kept = ref->filter_f64_col_const(
                  op, vals.data(), nulls_ptr, expect_sel.data(),
                  expect_sel.size(), constant);
              const size_t got_kept = table->filter_f64_col_const(
                  op, vals.data(), nulls_ptr, got_sel.data(), got_sel.size(),
                  constant);
              expect_sel.resize(expect_kept);
              got_sel.resize(got_kept);
              ASSERT_EQ(expect_sel, got_sel)
                  << CaseLabel(IsaName(table->isa), n,
                               static_cast<int>(null_shape),
                               static_cast<int>(sel_shape),
                               static_cast<int>(op))
                  << " const=" << constant;
            }
          }
        }
      }
    }
  }
}

TEST(KernelConformance, FilterColCol) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  for (const KernelTable* table : NonScalarTables()) {
    for (size_t n : kBatchSizes) {
      const std::vector<int64_t> ia = MakeInt64Payload(n, 0x11 + n);
      const std::vector<int64_t> ib = MakeInt64Payload(n, 0x22 + n);
      const std::vector<double> da = MakeDoublePayload(n, 0x33 + n);
      const std::vector<double> db = MakeDoublePayload(n, 0x44 + n);
      for (NullShape a_shape : kNullShapes) {
        const std::vector<uint8_t> a_nulls = MakeNulls(a_shape, n);
        const uint8_t* a_ptr =
            a_shape == NullShape::kNone ? nullptr : a_nulls.data();
        for (NullShape b_shape : {NullShape::kNone, NullShape::kAlternating}) {
          const std::vector<uint8_t> b_nulls = MakeNulls(b_shape, n);
          const uint8_t* b_ptr =
              b_shape == NullShape::kNone ? nullptr : b_nulls.data();
          for (SelShape sel_shape : kSelShapes) {
            const std::vector<uint32_t> base_sel = MakeSel(sel_shape, n);
            for (CmpOp op : kAllCmpOps) {
              {
                std::vector<uint32_t> expect_sel = base_sel;
                std::vector<uint32_t> got_sel = base_sel;
                const size_t ek = ref->filter_i64_col_col(
                    op, ia.data(), a_ptr, ib.data(), b_ptr, expect_sel.data(),
                    expect_sel.size());
                const size_t gk = table->filter_i64_col_col(
                    op, ia.data(), a_ptr, ib.data(), b_ptr, got_sel.data(),
                    got_sel.size());
                expect_sel.resize(ek);
                got_sel.resize(gk);
                ASSERT_EQ(expect_sel, got_sel)
                    << "i64 "
                    << CaseLabel(IsaName(table->isa), n,
                                 static_cast<int>(a_shape),
                                 static_cast<int>(sel_shape),
                                 static_cast<int>(op));
              }
              {
                std::vector<uint32_t> expect_sel = base_sel;
                std::vector<uint32_t> got_sel = base_sel;
                const size_t ek = ref->filter_f64_col_col(
                    op, da.data(), a_ptr, db.data(), b_ptr, expect_sel.data(),
                    expect_sel.size());
                const size_t gk = table->filter_f64_col_col(
                    op, da.data(), a_ptr, db.data(), b_ptr, got_sel.data(),
                    got_sel.size());
                expect_sel.resize(ek);
                got_sel.resize(gk);
                ASSERT_EQ(expect_sel, got_sel)
                    << "f64 "
                    << CaseLabel(IsaName(table->isa), n,
                                 static_cast<int>(a_shape),
                                 static_cast<int>(sel_shape),
                                 static_cast<int>(op));
              }
            }
          }
        }
      }
    }
  }
}

TEST(KernelConformance, EvalCompareByteIdentical) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  for (const KernelTable* table : NonScalarTables()) {
    for (size_t n : kBatchSizes) {
      const std::vector<int64_t> ia = MakeInt64Payload(n, 0x55 + n);
      const std::vector<int64_t> ib = MakeInt64Payload(n, 0x66 + n);
      const std::vector<double> da = MakeDoublePayload(n, 0x77 + n);
      const std::vector<double> db = MakeDoublePayload(n, 0x88 + n);
      for (NullShape null_shape : kNullShapes) {
        const std::vector<uint8_t> nulls = MakeNulls(null_shape, n);
        const uint8_t* nulls_ptr =
            null_shape == NullShape::kNone ? nullptr : nulls.data();
        for (SelShape sel_shape : kSelShapes) {
          const std::vector<uint32_t> sel = MakeSel(sel_shape, n);
          const size_t out_n = sel.size();
          for (CmpOp op : kAllCmpOps) {
            // col vs const, int64 and double channels.
            std::vector<int64_t> ev(out_n, -7), gv(out_n, -7);
            std::vector<uint8_t> en(out_n, 9), gn(out_n, 9);
            ref->eval_i64_col_const(op, ia.data(), nulls_ptr, sel.data(),
                                    out_n, 42, ev.data(), en.data());
            table->eval_i64_col_const(op, ia.data(), nulls_ptr, sel.data(),
                                      out_n, 42, gv.data(), gn.data());
            ASSERT_EQ(ev, gv) << CaseLabel(IsaName(table->isa), n,
                                           static_cast<int>(null_shape),
                                           static_cast<int>(sel_shape),
                                           static_cast<int>(op));
            ASSERT_EQ(en, gn);
            ref->eval_f64_col_const(op, da.data(), nulls_ptr, sel.data(),
                                    out_n, 0.0, ev.data(), en.data());
            table->eval_f64_col_const(op, da.data(), nulls_ptr, sel.data(),
                                      out_n, 0.0, gv.data(), gn.data());
            ASSERT_EQ(ev, gv);
            ASSERT_EQ(en, gn);
            // col vs col on both channels.
            ref->eval_i64_col_col(op, ia.data(), nulls_ptr, ib.data(), nullptr,
                                  sel.data(), out_n, ev.data(), en.data());
            table->eval_i64_col_col(op, ia.data(), nulls_ptr, ib.data(),
                                    nullptr, sel.data(), out_n, gv.data(),
                                    gn.data());
            ASSERT_EQ(ev, gv);
            ASSERT_EQ(en, gn);
            ref->eval_f64_col_col(op, da.data(), nulls_ptr, db.data(), nullptr,
                                  sel.data(), out_n, ev.data(), en.data());
            table->eval_f64_col_col(op, da.data(), nulls_ptr, db.data(),
                                    nullptr, sel.data(), out_n, gv.data(),
                                    gn.data());
            ASSERT_EQ(ev, gv);
            ASSERT_EQ(en, gn);
          }
        }
      }
    }
  }
}

TEST(KernelConformance, FusedArithByteIdentical) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  ASSERT_NE(ref, nullptr);
  for (const KernelTable* table : NonScalarTables()) {
    for (size_t n : kBatchSizes) {
      const std::vector<int64_t> ix = MakeInt64Payload(n, 0xa1 + n);
      const std::vector<int64_t> iy = MakeInt64Payload(n, 0xb2 + n);
      const std::vector<int64_t> iz = MakeInt64Payload(n, 0xc3 + n);
      const std::vector<double> dx = MakeDoublePayload(n, 0xd4 + n);
      const std::vector<double> dy = MakeDoublePayload(n, 0xe5 + n);
      const std::vector<double> dz = MakeDoublePayload(n, 0xf6 + n);
      const std::vector<uint8_t> x_nulls = MakeNulls(NullShape::kAlternating, n);
      const std::vector<uint8_t> z_nulls = MakeNulls(NullShape::kSparse, n);
      for (SelShape sel_shape : kSelShapes) {
        const std::vector<uint32_t> sel = MakeSel(sel_shape, n);
        const size_t out_n = sel.size();
        for (ArithOp inner : kAllArithOps) {
          for (ArithOp outer : kAllArithOps) {
            for (bool inner_on_left : {true, false}) {
              for (bool y_is_const : {false, true}) {
                I64Operand x{ix.data(), x_nulls.data(), 0};
                I64Operand y =
                    y_is_const ? I64Operand{nullptr, nullptr, -3}
                               : I64Operand{iy.data(), nullptr, 0};
                I64Operand z{iz.data(), z_nulls.data(), 0};
                std::vector<int64_t> ev(out_n, -7), gv(out_n, -7);
                std::vector<uint8_t> en(out_n, 9), gn(out_n, 9);
                ref->fused_arith_i64(inner, outer, inner_on_left, x, y, z,
                                     sel.data(), out_n, ev.data(), en.data());
                table->fused_arith_i64(inner, outer, inner_on_left, x, y, z,
                                       sel.data(), out_n, gv.data(),
                                       gn.data());
                ASSERT_EQ(ev, gv)
                    << "i64 " << IsaName(table->isa) << " n=" << n
                    << " inner=" << static_cast<int>(inner)
                    << " outer=" << static_cast<int>(outer)
                    << " left=" << inner_on_left << " yconst=" << y_is_const;
                ASSERT_EQ(en, gn);

                F64Operand fx{dx.data(), x_nulls.data(), 0.0};
                F64Operand fy =
                    y_is_const ? F64Operand{nullptr, nullptr, 2.5}
                               : F64Operand{dy.data(), nullptr, 0.0};
                F64Operand fz{dz.data(), z_nulls.data(), 0.0};
                std::vector<double> fev(out_n, -7.0), fgv(out_n, -7.0);
                ref->fused_arith_f64(inner, outer, inner_on_left, fx, fy, fz,
                                     sel.data(), out_n, fev.data(),
                                     en.data());
                table->fused_arith_f64(inner, outer, inner_on_left, fx, fy,
                                       fz, sel.data(), out_n, fgv.data(),
                                       gn.data());
                // Bitwise comparison (NaN != NaN under operator==).
                ASSERT_EQ(0, std::memcmp(fev.data(), fgv.data(),
                                         out_n * sizeof(double)))
                    << "f64 " << IsaName(table->isa) << " n=" << n
                    << " inner=" << static_cast<int>(inner)
                    << " outer=" << static_cast<int>(outer)
                    << " left=" << inner_on_left << " yconst=" << y_is_const;
                ASSERT_EQ(en, gn);
              }
            }
          }
        }
      }
    }
  }
}

TEST(KernelDispatch, EnvEscapeHatchAndSetActiveIsa) {
  const Isa original = ActiveIsa();
  EXPECT_TRUE(SetActiveIsa(Isa::kScalar));
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_EQ(Active().isa, Isa::kScalar);
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_TRUE(SetActiveIsa(Isa::kSse2));
  EXPECT_EQ(ActiveIsa(), Isa::kSse2);
#endif
  // Restoring the startup table must always succeed.
  EXPECT_TRUE(SetActiveIsa(original));
  EXPECT_EQ(ActiveIsa(), original);
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kSse2), "sse2");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
}

TEST(KernelDispatch, HasNullsProbesExactPrefix) {
  std::vector<uint8_t> nulls(100, 0);
  EXPECT_FALSE(HasNulls(nulls.data(), nulls.size()));
  EXPECT_FALSE(HasNulls(nullptr, 50));
  nulls[99] = 1;
  EXPECT_TRUE(HasNulls(nulls.data(), 100));
  EXPECT_FALSE(HasNulls(nulls.data(), 99));
  EXPECT_FALSE(HasNulls(nulls.data(), 0));
}

TEST(KernelDispatch, SelIsIdentityChecksEndpoints) {
  std::vector<uint32_t> sel = {0, 1, 2, 3};
  EXPECT_TRUE(SelIsIdentity(sel.data(), sel.size()));
  EXPECT_TRUE(SelIsIdentity(sel.data(), 0));
  std::vector<uint32_t> gap = {0, 2, 3};
  EXPECT_FALSE(SelIsIdentity(gap.data(), gap.size()));
  std::vector<uint32_t> offset = {1, 2, 3};
  EXPECT_FALSE(SelIsIdentity(offset.data(), offset.size()));
}

}  // namespace
}  // namespace vdb::plan::kernels
