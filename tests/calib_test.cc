#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "calib/calibration.h"
#include "calib/grid.h"
#include "calib/store.h"
#include "datagen/calibration_db.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb::calib {
namespace {

using optimizer::OptimizerParams;
using sim::ResourceShare;

OptimizerParams ParamsWith(double seq, double random, double tuple) {
  OptimizerParams params;
  params.seq_page_cost = seq;
  params.random_page_cost = random;
  params.cpu_tuple_cost = tuple;
  return params;
}

TEST(CalibrationStoreTest, ExactLookup) {
  CalibrationStore store;
  store.Put(ResourceShare(0.25, 0.5, 0.5), ParamsWith(1, 4, 0.01));
  store.Put(ResourceShare(0.75, 0.5, 0.5), ParamsWith(2, 8, 0.03));
  auto params = store.Lookup(ResourceShare(0.25, 0.5, 0.5));
  ASSERT_TRUE(params.ok());
  EXPECT_DOUBLE_EQ(params->seq_page_cost, 1.0);
  EXPECT_EQ(store.size(), 2u);
}

TEST(CalibrationStoreTest, PutReplaces) {
  CalibrationStore store;
  store.Put(ResourceShare(0.5, 0.5, 0.5), ParamsWith(1, 4, 0.01));
  store.Put(ResourceShare(0.5, 0.5, 0.5), ParamsWith(9, 4, 0.01));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(store.Lookup(ResourceShare(0.5, 0.5, 0.5))
                       ->seq_page_cost,
                   9.0);
}

TEST(CalibrationStoreTest, EmptyLookupFails) {
  CalibrationStore store;
  EXPECT_TRUE(
      store.Lookup(ResourceShare(0.5, 0.5, 0.5)).status().IsNotFound());
}

TEST(CalibrationStoreTest, LinearInterpolationAlongCpuAxis) {
  CalibrationStore store;
  store.Put(ResourceShare(0.25, 0.5, 0.5), ParamsWith(1.0, 4.0, 0.01));
  store.Put(ResourceShare(0.75, 0.5, 0.5), ParamsWith(3.0, 8.0, 0.03));
  auto mid = store.Lookup(ResourceShare(0.5, 0.5, 0.5));
  ASSERT_TRUE(mid.ok()) << mid.status();
  EXPECT_NEAR(mid->seq_page_cost, 2.0, 1e-9);
  EXPECT_NEAR(mid->random_page_cost, 6.0, 1e-9);
  EXPECT_NEAR(mid->cpu_tuple_cost, 0.02, 1e-9);
}

TEST(CalibrationStoreTest, ClampsOutsideGrid) {
  CalibrationStore store;
  store.Put(ResourceShare(0.25, 0.5, 0.5), ParamsWith(1.0, 4.0, 0.01));
  store.Put(ResourceShare(0.75, 0.5, 0.5), ParamsWith(3.0, 8.0, 0.03));
  auto low = store.Lookup(ResourceShare(0.1, 0.5, 0.5));
  ASSERT_TRUE(low.ok());
  EXPECT_NEAR(low->seq_page_cost, 1.0, 1e-9);
  auto high = store.Lookup(ResourceShare(0.9, 0.5, 0.5));
  ASSERT_TRUE(high.ok());
  EXPECT_NEAR(high->seq_page_cost, 3.0, 1e-9);
}

TEST(CalibrationStoreTest, BilinearInterpolation) {
  CalibrationStore store;
  // seq_page_cost = cpu + 10 * memory at the four corners.
  for (double cpu : {0.2, 0.8}) {
    for (double mem : {0.2, 0.8}) {
      store.Put(ResourceShare(cpu, mem, 0.5),
                ParamsWith(cpu + 10 * mem, 1, 1));
    }
  }
  auto mid = store.Lookup(ResourceShare(0.5, 0.5, 0.5));
  ASSERT_TRUE(mid.ok());
  EXPECT_NEAR(mid->seq_page_cost, 0.5 + 5.0, 1e-9);
  auto off = store.Lookup(ResourceShare(0.35, 0.65, 0.5));
  ASSERT_TRUE(off.ok());
  EXPECT_NEAR(off->seq_page_cost, 0.35 + 6.5, 1e-9);
}

TEST(CalibrationStoreTest, SaveLoadRoundTrip) {
  CalibrationStore store;
  OptimizerParams params = ParamsWith(1.25, 7.5, 0.0125);
  params.effective_cache_size_pages = 4321;
  params.work_mem_bytes = 1234567;
  store.Put(ResourceShare(0.25, 0.5, 0.75), params);
  store.Put(ResourceShare(0.75, 0.25, 0.5), ParamsWith(2, 3, 4));
  const std::string path = ::testing::TempDir() + "/calib_store.txt";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = CalibrationStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  auto back = loaded->Lookup(ResourceShare(0.25, 0.5, 0.75));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->seq_page_cost, 1.25);
  EXPECT_DOUBLE_EQ(back->random_page_cost, 7.5);
  EXPECT_EQ(back->effective_cache_size_pages, 4321u);
  EXPECT_EQ(back->work_mem_bytes, 1234567u);
  std::remove(path.c_str());
}

TEST(CalibrationStoreTest, LoadRejectsTruncatedRecord) {
  // Regression: LoadFromFile used to stop silently at the first partial
  // record, yielding a truncated store that skewed interpolation.
  const std::string path = ::testing::TempDir() + "/calib_truncated.txt";
  {
    CalibrationStore store;
    store.Put(ResourceShare(0.25, 0.5, 0.75), ParamsWith(1, 4, 0.01));
    ASSERT_TRUE(store.SaveToFile(path).ok());
    std::ofstream out(path, std::ios::app);
    out << "0.5 0.5 0.5 1.0 2.0\n";  // record cut off mid-way
  }
  auto loaded = CalibrationStore::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
  EXPECT_NE(loaded.status().ToString().find("line 2"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST(CalibrationStoreTest, LoadRejectsTrailingGarbage) {
  const std::string path = ::testing::TempDir() + "/calib_garbage.txt";
  {
    CalibrationStore store;
    store.Put(ResourceShare(0.25, 0.5, 0.75), ParamsWith(1, 4, 0.01));
    ASSERT_TRUE(store.SaveToFile(path).ok());
    std::ofstream out(path, std::ios::app);
    out << "0.5 0.5 0.5 1 2 3 4 5 100 200 EXTRA\n";
  }
  auto loaded = CalibrationStore::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
  std::remove(path.c_str());
}

TEST(CalibrationStoreTest, LoadToleratesBlankLines) {
  const std::string path = ::testing::TempDir() + "/calib_blank.txt";
  {
    std::ofstream out(path);
    out << "0.25 0.5 0.75 1 4 0.01 0.005 0.00025 8192 8388608\n";
    out << "\n  \t\n";
    out << "0.75 0.5 0.25 2 8 0.03 0.005 0.00025 8192 8388608\n";
  }
  auto loaded = CalibrationStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

class CalibratorTest : public ::testing::Test {
 protected:
  CalibratorTest() {
    datagen::CalibrationDbConfig config;
    config.base_rows = 2000;
    VDB_CHECK_OK(datagen::GenerateCalibrationDb(db_.catalog(), config));
  }

  sim::VirtualMachine Vm(double cpu, double memory, double io) {
    return sim::VirtualMachine("vm", sim::MachineSpec::PaperTestbed(),
                               sim::HypervisorModel::XenLike(),
                               ResourceShare(cpu, memory, io));
  }

  exec::Database db_;
};

TEST_F(CalibratorTest, ProducesPositiveParamsWithSmallResidual) {
  Calibrator calibrator(&db_);
  auto result = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->params.seq_page_cost, 0.0);
  EXPECT_GT(result->params.random_page_cost, 0.0);
  EXPECT_GT(result->params.cpu_tuple_cost, 0.0);
  // Random reads are far slower than sequential ones on this disk.
  EXPECT_GT(result->params.random_page_cost,
            result->params.seq_page_cost);
  // Fit quality: residual well under the largest measurement.
  double max_measured = 0.0;
  for (double v : result->measured_ms) {
    max_measured = std::max(max_measured, v);
  }
  EXPECT_LT(result->residual_rms_ms, 0.1 * max_measured);
}

TEST_F(CalibratorTest, DeterministicAcrossRuns) {
  Calibrator calibrator(&db_);
  auto a = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  auto b = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->params.cpu_tuple_cost, b->params.cpu_tuple_cost);
  EXPECT_DOUBLE_EQ(a->params.seq_page_cost, b->params.seq_page_cost);
}

TEST_F(CalibratorTest, CpuCostsRiseWhenCpuShareDrops) {
  // The heart of Figure 3: the optimizer's CPU parameters must be
  // sensitive to the VM's CPU allocation, and calibration must detect it.
  Calibrator calibrator(&db_);
  auto low = calibrator.Calibrate(Vm(0.25, 0.5, 0.5));
  auto high = calibrator.Calibrate(Vm(0.75, 0.5, 0.5));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(low->params.cpu_tuple_cost, 1.5 * high->params.cpu_tuple_cost);
  EXPECT_GT(low->params.cpu_operator_cost,
            high->params.cpu_operator_cost);
}

TEST_F(CalibratorTest, PageCostsRiseWhenIoShareDrops) {
  Calibrator calibrator(&db_);
  auto low = calibrator.Calibrate(Vm(0.5, 0.5, 0.25));
  auto high = calibrator.Calibrate(Vm(0.5, 0.5, 0.75));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(low->params.seq_page_cost, 1.5 * high->params.seq_page_cost);
  EXPECT_GT(low->params.random_page_cost,
            1.5 * high->params.random_page_cost);
}

TEST_F(CalibratorTest, EstimatesRankQueriesLikeMeasurements) {
  // The paper's requirement: optimizer estimates under calibrated P need
  // to *rank* alternatives correctly. Check fitted vs measured orderings
  // pairwise for well-separated pairs.
  Calibrator calibrator(&db_);
  auto result = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  ASSERT_TRUE(result.ok());
  const auto& measured = result->measured_ms;
  const auto& fitted = result->fitted_ms;
  int checked = 0;
  for (size_t i = 0; i < measured.size(); ++i) {
    for (size_t j = 0; j < measured.size(); ++j) {
      if (measured[i] > 3.0 * measured[j] && measured[j] > 0.0) {
        EXPECT_GT(fitted[i], fitted[j])
            << "pair (" << i << ", " << j << ")";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 5);
}

TEST_F(CalibratorTest, CapacityParamsTrackVmMemory) {
  Calibrator calibrator(&db_);
  auto small = calibrator.Calibrate(Vm(0.5, 0.25, 0.5));
  auto large = calibrator.Calibrate(Vm(0.5, 0.75, 0.5));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_NEAR(static_cast<double>(large->params.effective_cache_size_pages),
              3.0 * static_cast<double>(
                        small->params.effective_cache_size_pages),
              4.0);
  EXPECT_GT(large->params.work_mem_bytes, small->params.work_mem_bytes);
}

TEST_F(CalibratorTest, GridCalibration) {
  CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.75};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.5};
  int progress_calls = 0;
  auto store = CalibrateGrid(
      &db_, sim::MachineSpec::PaperTestbed(),
      sim::HypervisorModel::XenLike(), spec,
      [&](const ResourceShare&, const CalibrationResult&) {
        ++progress_calls;
      });
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(progress_calls, 2);
  // Interpolated midpoint lies between the endpoints.
  auto low = store->Lookup(ResourceShare(0.25, 0.5, 0.5));
  auto mid = store->Lookup(ResourceShare(0.5, 0.5, 0.5));
  auto high = store->Lookup(ResourceShare(0.75, 0.5, 0.5));
  ASSERT_TRUE(mid.ok());
  EXPECT_LT(high->cpu_tuple_cost, mid->cpu_tuple_cost);
  EXPECT_LT(mid->cpu_tuple_cost, low->cpu_tuple_cost);
}

TEST_F(CalibratorTest, EmptyGridAxisFails) {
  CalibrationGridSpec spec;
  spec.cpu_shares = {};
  auto store = CalibrateGrid(&db_, sim::MachineSpec::PaperTestbed(),
                             sim::HypervisorModel::XenLike(), spec);
  EXPECT_TRUE(store.status().IsInvalidArgument());
}

TEST(CalibrationStoreTest, LoadRejectsNonNumericField) {
  const std::string path = ::testing::TempDir() + "/calib_nonnumeric.txt";
  {
    std::ofstream out(path);
    out << "0.25 0.5 0.75 1 4 0.01 0.005 0.00025 8192 8388608\n";
    out << "0.5 0.5 abc 1 4 0.01 0.005 0.00025 8192 8388608\n";
  }
  auto loaded = CalibrationStore::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
  EXPECT_NE(loaded.status().ToString().find("line 2"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST(CalibrationStoreTest, LoadMissingFileIsIOError) {
  auto loaded = CalibrationStore::LoadFromFile("/nonexistent/calib.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
}

}  // namespace
}  // namespace vdb::calib
