#include <string>

#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace vdb::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE a >= 10.5;");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "a");
  EXPECT_EQ(t[2].type, TokenType::kComma);
  EXPECT_EQ(t[3].text, "b2");
  EXPECT_TRUE(t[4].IsKeyword("FROM"));
  EXPECT_TRUE(t[6].IsKeyword("WHERE"));
  EXPECT_TRUE(t[8].IsOperator(">="));
  EXPECT_EQ(t[9].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(t[9].float_value, 10.5);
  EXPECT_EQ(t[10].type, TokenType::kSemicolon);
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select SeLeCt SELECT");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE((*tokens)[i].IsKeyword("SELECT"));
  }
}

TEST(LexerTest, IdentifiersLowercased) {
  auto tokens = Tokenize("MyTable.MyColumn");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "mytable");
  EXPECT_EQ((*tokens)[1].type, TokenType::kDot);
  EXPECT_EQ((*tokens)[2].text, "mycolumn");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Tokenize("'hello' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, OperatorsAndNotEqual) {
  auto tokens = Tokenize("a <> b != c <= d");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsOperator("<>"));
  EXPECT_TRUE((*tokens)[3].IsOperator("<>"));  // != normalizes to <>
  EXPECT_TRUE((*tokens)[5].IsOperator("<="));
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("a -- comment here\n b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[2].type, TokenType::kEnd);
}

TEST(LexerTest, UnexpectedCharacter) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseSelect("select a from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items.size(), 1u);
  EXPECT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0].table.name, "t");
  EXPECT_EQ((*stmt)->where, nullptr);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseSelect("select * from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].expr->type, ExprType::kStar);
}

TEST(ParserTest, Aliases) {
  auto stmt = ParseSelect("select a as x, b y from t1 as u, t2 v");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].alias, "x");
  EXPECT_EQ((*stmt)->items[1].alias, "y");
  EXPECT_EQ((*stmt)->from[0].table.alias, "u");
  EXPECT_EQ((*stmt)->from[1].table.alias, "v");
  EXPECT_EQ((*stmt)->from[1].join_type, JoinType::kCross);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("select 1 + 2 * 3 from t");
  ASSERT_TRUE(stmt.ok());
  const auto* add = dynamic_cast<const BinaryExpr*>(
      (*stmt)->items[0].expr.get());
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->op, BinaryOp::kAdd);
  const auto* mul = dynamic_cast<const BinaryExpr*>(add->right.get());
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->op, BinaryOp::kMul);
}

TEST(ParserTest, BooleanPrecedence) {
  // a = 1 OR b = 2 AND c = 3  =>  a=1 OR (b=2 AND c=3)
  auto stmt = ParseSelect("select * from t where a = 1 or b = 2 and c = 3");
  ASSERT_TRUE(stmt.ok());
  const auto* or_expr =
      dynamic_cast<const BinaryExpr*>((*stmt)->where.get());
  ASSERT_NE(or_expr, nullptr);
  EXPECT_EQ(or_expr->op, BinaryOp::kOr);
  const auto* and_expr =
      dynamic_cast<const BinaryExpr*>(or_expr->right.get());
  ASSERT_NE(and_expr, nullptr);
  EXPECT_EQ(and_expr->op, BinaryOp::kAnd);
}

TEST(ParserTest, NotBindsTighterThanAnd) {
  auto stmt = ParseSelect("select * from t where not a = 1 and b = 2");
  ASSERT_TRUE(stmt.ok());
  const auto* and_expr =
      dynamic_cast<const BinaryExpr*>((*stmt)->where.get());
  ASSERT_NE(and_expr, nullptr);
  EXPECT_EQ(and_expr->op, BinaryOp::kAnd);
  EXPECT_EQ(and_expr->left->type, ExprType::kUnary);
}

TEST(ParserTest, PredicateForms) {
  auto stmt = ParseSelect(
      "select * from t where a between 1 and 10 and b not in (1, 2, 3) "
      "and c like '%x%' and d not like 'y%' and e is null and f is not "
      "null");
  ASSERT_TRUE(stmt.ok());
  const std::string text = (*stmt)->where->ToString();
  EXPECT_NE(text.find("BETWEEN"), std::string::npos);
  EXPECT_NE(text.find("NOT IN"), std::string::npos);
  EXPECT_NE(text.find("LIKE '%x%'"), std::string::npos);
  EXPECT_NE(text.find("NOT LIKE 'y%'"), std::string::npos);
  EXPECT_NE(text.find("IS NULL"), std::string::npos);
  EXPECT_NE(text.find("IS NOT NULL"), std::string::npos);
}

TEST(ParserTest, DateLiteral) {
  auto stmt = ParseSelect(
      "select * from t where d >= date '1994-01-01'");
  ASSERT_TRUE(stmt.ok());
  const auto* cmp = dynamic_cast<const BinaryExpr*>((*stmt)->where.get());
  ASSERT_NE(cmp, nullptr);
  const auto* lit = dynamic_cast<const LiteralExpr*>(cmp->right.get());
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->value.type(), catalog::TypeId::kDate);
  EXPECT_EQ(lit->value.ToString(), "1994-01-01");
}

TEST(ParserTest, BadDateLiteral) {
  EXPECT_FALSE(ParseSelect("select date 'nope' from t").ok());
}

TEST(ParserTest, Aggregates) {
  auto stmt = ParseSelect(
      "select count(*), count(distinct a), sum(b * 2), avg(c), min(d), "
      "max(e) from t group by f having count(*) > 5");
  ASSERT_TRUE(stmt.ok());
  const auto* count_star = dynamic_cast<const FunctionCallExpr*>(
      (*stmt)->items[0].expr.get());
  ASSERT_NE(count_star, nullptr);
  EXPECT_TRUE(count_star->star);
  const auto* count_distinct = dynamic_cast<const FunctionCallExpr*>(
      (*stmt)->items[1].expr.get());
  ASSERT_NE(count_distinct, nullptr);
  EXPECT_TRUE(count_distinct->distinct);
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_NE((*stmt)->having, nullptr);
}

TEST(ParserTest, Joins) {
  auto stmt = ParseSelect(
      "select * from a join b on a.x = b.x left outer join c on b.y = c.y "
      "cross join d");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->from.size(), 4u);
  EXPECT_EQ((*stmt)->from[1].join_type, JoinType::kInner);
  ASSERT_NE((*stmt)->from[1].join_condition, nullptr);
  EXPECT_EQ((*stmt)->from[2].join_type, JoinType::kLeft);
  EXPECT_EQ((*stmt)->from[3].join_type, JoinType::kCross);
  EXPECT_EQ((*stmt)->from[3].join_condition, nullptr);
}

TEST(ParserTest, ExistsSubquery) {
  auto stmt = ParseSelect(
      "select * from orders where exists (select * from lineitem where "
      "l_orderkey = o_orderkey)");
  ASSERT_TRUE(stmt.ok());
  const auto* exists =
      dynamic_cast<const ExistsExpr*>((*stmt)->where.get());
  ASSERT_NE(exists, nullptr);
  EXPECT_FALSE(exists->negated);
  EXPECT_EQ(exists->subquery->from[0].table.name, "lineitem");
}

TEST(ParserTest, NotExistsViaNot) {
  auto stmt = ParseSelect(
      "select * from t where not exists (select * from u where u.a = t.a)");
  ASSERT_TRUE(stmt.ok());
  const auto* not_expr =
      dynamic_cast<const UnaryExpr*>((*stmt)->where.get());
  ASSERT_NE(not_expr, nullptr);
  EXPECT_EQ(not_expr->operand->type, ExprType::kExists);
}

TEST(ParserTest, InSubquery) {
  auto stmt = ParseSelect(
      "select * from orders where o_orderkey in (select l_orderkey from "
      "lineitem where l_quantity > 300)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto* in =
      dynamic_cast<const InSubqueryExpr*>((*stmt)->where.get());
  ASSERT_NE(in, nullptr);
  EXPECT_FALSE(in->negated);
  EXPECT_EQ(in->subquery->from[0].table.name, "lineitem");
  // NOT IN (subquery).
  stmt = ParseSelect(
      "select * from t where a not in (select b from u)");
  ASSERT_TRUE(stmt.ok());
  const auto* not_in =
      dynamic_cast<const InSubqueryExpr*>((*stmt)->where.get());
  ASSERT_NE(not_in, nullptr);
  EXPECT_TRUE(not_in->negated);
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt = ParseSelect(
      "select * from t where a < (select avg(b) from u) + 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto* cmp = dynamic_cast<const BinaryExpr*>((*stmt)->where.get());
  ASSERT_NE(cmp, nullptr);
  const auto* add = dynamic_cast<const BinaryExpr*>(cmp->right.get());
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->left->type, ExprType::kScalarSubquery);
}

TEST(ParserTest, DerivedTableWithColumnAliases) {
  auto stmt = ParseSelect(
      "select c_count, count(*) from (select c_custkey, count(o_orderkey) "
      "from customer group by c_custkey) as c_orders (c_custkey, c_count) "
      "group by c_count");
  ASSERT_TRUE(stmt.ok());
  const TableRef& ref = (*stmt)->from[0].table;
  EXPECT_EQ(ref.kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(ref.alias, "c_orders");
  ASSERT_EQ(ref.column_aliases.size(), 2u);
  EXPECT_EQ(ref.column_aliases[0], "c_custkey");
  EXPECT_EQ(ref.column_aliases[1], "c_count");
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt = ParseSelect(
      "select a, b from t order by a desc, b asc, a + b limit 10");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->order_by.size(), 3u);
  EXPECT_FALSE((*stmt)->order_by[0].ascending);
  EXPECT_TRUE((*stmt)->order_by[1].ascending);
  EXPECT_TRUE((*stmt)->order_by[2].ascending);
  EXPECT_EQ((*stmt)->limit, 10);
}

TEST(ParserTest, CaseExpression) {
  auto stmt = ParseSelect(
      "select sum(case when p_type like 'PROMO%' then l_extendedprice "
      "else 0 end) from lineitem");
  ASSERT_TRUE(stmt.ok());
  const auto* sum = dynamic_cast<const FunctionCallExpr*>(
      (*stmt)->items[0].expr.get());
  ASSERT_NE(sum, nullptr);
  ASSERT_EQ(sum->args.size(), 1u);
  const auto* case_expr =
      dynamic_cast<const CaseExpr*>(sum->args[0].get());
  ASSERT_NE(case_expr, nullptr);
  EXPECT_EQ(case_expr->branches.size(), 1u);
  ASSERT_NE(case_expr->else_result, nullptr);
}

TEST(ParserTest, SelectWithoutFrom) {
  auto stmt = ParseSelect("select 1 + 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->from.empty());
}

TEST(ParserTest, ErrorsOnMalformedInput) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("selec a from t").ok());
  EXPECT_FALSE(ParseSelect("select from t").ok());
  EXPECT_FALSE(ParseSelect("select a from").ok());
  EXPECT_FALSE(ParseSelect("select a from t where").ok());
  EXPECT_FALSE(ParseSelect("select a from t group a").ok());
  EXPECT_FALSE(ParseSelect("select a from t limit x").ok());
  EXPECT_FALSE(ParseSelect("select a from t extra junk").ok());
  EXPECT_FALSE(ParseSelect("select a from (select b from u)").ok())
      << "subquery without alias must fail";
  EXPECT_FALSE(ParseSelect("select a from t join u").ok())
      << "JOIN without ON must fail";
  EXPECT_FALSE(ParseSelect("select count(* from t").ok());
  EXPECT_FALSE(ParseSelect("select case end from t").ok());
}

TEST(ParserTest, ToStringRoundTripReparses) {
  const char* queries[] = {
      "select a, sum(b) as total from t where a > 5 group by a having "
      "sum(b) > 100 order by total desc limit 3",
      "select * from a join b on a.x = b.x where a.y between 1 and 2",
      "select count(*) from t where s like '%x%' and not exists (select * "
      "from u where u.k = t.k)",
  };
  for (const char* sql : queries) {
    auto stmt = ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    const std::string printed = (*stmt)->ToString();
    auto reparsed = ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ((*reparsed)->ToString(), printed);
  }
}

// The actual TPC-H query texts used by the experiments must parse.
class TpchQueryParseTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TpchQueryParseTest, Parses) {
  auto stmt = ParseSelect(GetParam());
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, TpchQueryParseTest,
    ::testing::Values(
        // Q1 (pricing summary)
        "select l_returnflag, l_linestatus, sum(l_quantity), "
        "sum(l_extendedprice), sum(l_extendedprice * (1 - l_discount)), "
        "avg(l_quantity), count(*) from lineitem where l_shipdate <= date "
        "'1998-09-02' group by l_returnflag, l_linestatus order by "
        "l_returnflag, l_linestatus",
        // Q4 (order priority checking)
        "select o_orderpriority, count(*) as order_count from orders where "
        "o_orderdate >= date '1993-07-01' and o_orderdate < date "
        "'1993-10-01' and exists (select * from lineitem where l_orderkey "
        "= o_orderkey and l_commitdate < l_receiptdate) group by "
        "o_orderpriority order by o_orderpriority",
        // Q6 (forecasting revenue change)
        "select sum(l_extendedprice * l_discount) as revenue from lineitem "
        "where l_shipdate >= date '1994-01-01' and l_shipdate < date "
        "'1995-01-01' and l_discount between 0.05 and 0.07 and l_quantity "
        "< 24",
        // Q13 (customer distribution)
        "select c_count, count(*) as custdist from (select c_custkey, "
        "count(o_orderkey) from customer left outer join orders on "
        "c_custkey = o_custkey and o_comment not like "
        "'%special%requests%' group by c_custkey) as c_orders (c_custkey, "
        "c_count) group by c_count order by custdist desc, c_count desc"));

// Error paths must come back as Status with the byte offset of the
// offending token — positions are what make fuzzer repros actionable.
TEST(LexerTest, ErrorsReportByteOffsets) {
  auto bad_char = Tokenize("select @ x");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_NE(bad_char.status().ToString().find("at offset 7"),
            std::string::npos)
      << bad_char.status();

  auto unterminated = Tokenize("select 'oops");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().ToString().find("at offset"),
            std::string::npos)
      << unterminated.status();
}

TEST(ParserTest, ErrorsReportByteOffsets) {
  auto at_end = ParseSelect("select a from t where");
  ASSERT_FALSE(at_end.ok());
  EXPECT_NE(at_end.status().ToString().find("at offset 21"),
            std::string::npos)
      << at_end.status();
  EXPECT_NE(at_end.status().ToString().find("<end>"), std::string::npos)
      << at_end.status();

  auto bad_limit = ParseSelect("select a from t limit x");
  ASSERT_FALSE(bad_limit.ok());
  EXPECT_NE(bad_limit.status().ToString().find("at offset 22"),
            std::string::npos)
      << bad_limit.status();
}

// Adversarial nesting must resolve to a Status (or a parse), never a
// crash; the fuzzer generates expressions in this shape.
TEST(ParserTest, DeepNestingDoesNotCrash) {
  constexpr int kDepth = 200;
  std::string balanced = "select ";
  for (int i = 0; i < kDepth; ++i) balanced += "(";
  balanced += "1";
  for (int i = 0; i < kDepth; ++i) balanced += ")";
  EXPECT_TRUE(ParseSelect(balanced).ok());

  std::string unbalanced = "select ";
  for (int i = 0; i < kDepth; ++i) unbalanced += "(";
  unbalanced += "1";
  EXPECT_FALSE(ParseSelect(unbalanced).ok());
}

}  // namespace
}  // namespace vdb::sql
