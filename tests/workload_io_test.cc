#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/workload_io.h"

namespace vdb::core {
namespace {

TEST(WorkloadIoTest, SplitsStatementsOnSemicolons) {
  auto workload = ParseWorkloadText(
      "w", "select 1 from t; select 2 from u;\nselect 3 from v");
  ASSERT_TRUE(workload.ok());
  ASSERT_EQ(workload->statements.size(), 3u);
  EXPECT_EQ(workload->statements[0], "select 1 from t");
  EXPECT_EQ(workload->statements[2], "select 3 from v");
}

TEST(WorkloadIoTest, IgnoresCommentsAndBlankStatements) {
  auto workload = ParseWorkloadText(
      "w",
      "-- header comment\n"
      "select a from t; -- trailing comment\n"
      ";;\n"
      "select b from t;\n");
  ASSERT_TRUE(workload.ok());
  ASSERT_EQ(workload->statements.size(), 2u);
  EXPECT_EQ(workload->statements[1], "select b from t");
}

TEST(WorkloadIoTest, SemicolonInsideStringLiteralDoesNotSplit) {
  auto workload = ParseWorkloadText(
      "w", "select count(*) from t where s = 'a;b'; select 1 from t");
  ASSERT_TRUE(workload.ok());
  ASSERT_EQ(workload->statements.size(), 2u);
  EXPECT_NE(workload->statements[0].find("'a;b'"), std::string::npos);
}

TEST(WorkloadIoTest, EscapedQuoteInsideLiteral) {
  auto workload = ParseWorkloadText(
      "w", "select count(*) from t where s = 'it''s; fine'");
  ASSERT_TRUE(workload.ok());
  ASSERT_EQ(workload->statements.size(), 1u);
}

TEST(WorkloadIoTest, CommentMarkerInsideLiteralPreserved) {
  auto workload =
      ParseWorkloadText("w", "select count(*) from t where s like '%--%'");
  ASSERT_TRUE(workload.ok());
  EXPECT_NE(workload->statements[0].find("'%--%'"), std::string::npos);
}

TEST(WorkloadIoTest, Errors) {
  EXPECT_TRUE(ParseWorkloadText("w", "").status().IsInvalidArgument());
  EXPECT_TRUE(ParseWorkloadText("w", "-- only comments\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseWorkloadText("w", "select 'oops from t")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LoadWorkloadFile("/nonexistent/w.sql").status().IsIOError());
}

TEST(WorkloadIoTest, LoadFileAndDeriveName) {
  const std::string path = ::testing::TempDir() + "/my_workload.sql";
  {
    std::ofstream out(path);
    out << "select 1 from t;\nselect 2 from t;\n";
  }
  auto workload = LoadWorkloadFile(path);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->name, "my_workload");
  EXPECT_EQ(workload->statements.size(), 2u);
  std::remove(path.c_str());
}

// A workload file cut off inside a string literal must fail cleanly
// (InvalidArgument from the parse, not a crash or a silent half-load).
TEST(WorkloadIoTest, TruncatedFileFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/truncated_workload.sql";
  {
    std::ofstream out(path);
    out << "select 1 from t;\nselect c from t where s = 'cut off";
  }
  auto workload = LoadWorkloadFile(path);
  ASSERT_FALSE(workload.ok());
  EXPECT_TRUE(workload.status().IsInvalidArgument()) << workload.status();
  EXPECT_NE(workload.status().ToString().find("unterminated"),
            std::string::npos)
      << workload.status();
  std::remove(path.c_str());
}

// Unreadable paths (here: a directory) must produce a Status, not a
// crash or an empty workload that passes downstream.
TEST(WorkloadIoTest, DirectoryPathFailsCleanly) {
  auto workload = LoadWorkloadFile(::testing::TempDir());
  EXPECT_FALSE(workload.ok());
}

}  // namespace
}  // namespace vdb::core
