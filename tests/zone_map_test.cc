// Zone-map unit and heap-integration tests (DESIGN.md §16): prune-rule
// three-valued-logic edge cases, fold/widening behavior, maintenance
// through Catalog::Insert/Delete, and the heap edge paths — pages whose
// rows were all deleted, empty-table iterators, untracked (schema-blind)
// pages, and the NumPages/zone-entry agreement invariant. The randomized
// counterpart is `vdb_fuzz --mode sql`, whose zone-map cross-check
// re-executes matched plans with pruning off and diffs the rows bitwise.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/zone_map.h"

namespace vdb::storage {
namespace {

using catalog::Catalog;
using catalog::Column;
using catalog::Schema;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

ZoneEntry TrackedEntry(double min, double max, uint64_t rows = 10,
                       uint64_t nulls = 0) {
  ZoneEntry entry;
  entry.row_count = rows;
  ZoneColumnStats col;
  col.null_count = nulls;
  col.has_values = nulls < rows;
  col.min = min;
  col.max = max;
  entry.columns.push_back(col);
  return entry;
}

ScanPruneSpec SpecOf(ZonePredicate::Kind kind, double key) {
  ScanPruneSpec spec;
  ZonePredicate pred;
  pred.kind = kind;
  pred.column = 0;
  pred.key = key;
  spec.predicates.push_back(pred);
  return spec;
}

TEST(ZonePruneRuleTest, UntrackedPageNeverPrunes) {
  ZoneEntry entry = TrackedEntry(0, 100);
  entry.tracked = false;
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(ZonePredicate::Kind::kEq,
                                              1e9)));
}

TEST(ZonePruneRuleTest, EmptySpecNeverPrunes) {
  EXPECT_FALSE(ZonePageCanPrune(TrackedEntry(0, 100), ScanPruneSpec{}));
}

TEST(ZonePruneRuleTest, EmptyTrackedPagePrunes) {
  // A tracked page with zero rows ever inserted can satisfy nothing.
  ZoneEntry entry;
  EXPECT_TRUE(ZonePageCanPrune(entry, SpecOf(ZonePredicate::Kind::kGe,
                                             0.0)));
}

TEST(ZonePruneRuleTest, ComparisonBoundsAreStrict) {
  const ZoneEntry entry = TrackedEntry(10, 20);
  using K = ZonePredicate::Kind;
  // Outside the range on either side: prune.
  EXPECT_TRUE(ZonePageCanPrune(entry, SpecOf(K::kEq, 9.5)));
  EXPECT_TRUE(ZonePageCanPrune(entry, SpecOf(K::kEq, 20.5)));
  EXPECT_TRUE(ZonePageCanPrune(entry, SpecOf(K::kLt, 9.5)));
  EXPECT_TRUE(ZonePageCanPrune(entry, SpecOf(K::kLe, 9.0)));
  EXPECT_TRUE(ZonePageCanPrune(entry, SpecOf(K::kGt, 20.5)));
  EXPECT_TRUE(ZonePageCanPrune(entry, SpecOf(K::kGe, 21.0)));
  // On the boundary, key equality proves nothing (the numeric key is not
  // injective): keep the page even when a numeric-only domain could prune
  // (e.g. `col < 10` with min == 10).
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(K::kEq, 10.0)));
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(K::kEq, 20.0)));
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(K::kLt, 10.0)));
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(K::kLe, 10.0)));
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(K::kGt, 20.0)));
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(K::kGe, 20.0)));
  // Inside the range: keep.
  EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(K::kEq, 15.0)));
}

TEST(ZonePruneRuleTest, NaNComparisonKeyNeverPrunes) {
  const ZoneEntry entry = TrackedEntry(10, 20);
  using K = ZonePredicate::Kind;
  for (K kind : {K::kLt, K::kLe, K::kGt, K::kGe, K::kEq}) {
    EXPECT_FALSE(ZonePageCanPrune(entry, SpecOf(kind, kNaN)));
  }
}

TEST(ZonePruneRuleTest, AllNullColumnPrunesComparisons) {
  // Every comparison against an all-NULL column is NULL, and a top-level
  // AND conjunct that is NULL rejects the row — so the page prunes.
  const ZoneEntry entry = TrackedEntry(0, 0, /*rows=*/5, /*nulls=*/5);
  EXPECT_TRUE(
      ZonePageCanPrune(entry, SpecOf(ZonePredicate::Kind::kEq, 0.0)));
  // ... but IS NULL keeps it, and IS NOT NULL prunes it.
  EXPECT_FALSE(
      ZonePageCanPrune(entry, SpecOf(ZonePredicate::Kind::kIsNull, 0)));
  EXPECT_TRUE(
      ZonePageCanPrune(entry, SpecOf(ZonePredicate::Kind::kIsNotNull, 0)));
}

TEST(ZonePruneRuleTest, NullPredicatesUseNullCounts) {
  // No NULL ever inserted: IS NULL prunes, IS NOT NULL keeps.
  const ZoneEntry no_nulls = TrackedEntry(1, 2, 10, 0);
  EXPECT_TRUE(ZonePageCanPrune(no_nulls,
                               SpecOf(ZonePredicate::Kind::kIsNull, 0)));
  EXPECT_FALSE(ZonePageCanPrune(
      no_nulls, SpecOf(ZonePredicate::Kind::kIsNotNull, 0)));
  // Mixed: neither prunes.
  const ZoneEntry mixed = TrackedEntry(1, 2, 10, 3);
  EXPECT_FALSE(
      ZonePageCanPrune(mixed, SpecOf(ZonePredicate::Kind::kIsNull, 0)));
  EXPECT_FALSE(ZonePageCanPrune(
      mixed, SpecOf(ZonePredicate::Kind::kIsNotNull, 0)));
}

TEST(ZonePruneRuleTest, InListPrunesOnlyWhenEveryKeyMisses) {
  const ZoneEntry entry = TrackedEntry(10, 20);
  ScanPruneSpec spec;
  ZonePredicate pred;
  pred.kind = ZonePredicate::Kind::kInList;
  pred.column = 0;
  pred.keys = {1.0, 5.0, 30.0};
  spec.predicates.push_back(pred);
  EXPECT_TRUE(ZonePageCanPrune(entry, spec));
  spec.predicates[0].keys.push_back(15.0);  // one key inside: keep
  EXPECT_FALSE(ZonePageCanPrune(entry, spec));
  spec.predicates[0].keys = {kNaN};  // NaN element proves nothing
  EXPECT_FALSE(ZonePageCanPrune(entry, spec));
  spec.predicates[0].keys.clear();  // empty IN list: lowering keeps it out
  EXPECT_FALSE(ZonePageCanPrune(entry, spec));
}

TEST(ZonePruneRuleTest, AnyConjunctSufficesToPrune) {
  ZoneEntry entry = TrackedEntry(10, 20);
  ScanPruneSpec spec = SpecOf(ZonePredicate::Kind::kEq, 15.0);  // keeps
  ZonePredicate killer;
  killer.kind = ZonePredicate::Kind::kGt;
  killer.column = 0;
  killer.key = 25.0;  // max < 25: prunes
  spec.predicates.push_back(killer);
  EXPECT_TRUE(ZonePageCanPrune(entry, spec));
}

TEST(ZoneFoldTest, NaNSampleWidensToFullRange) {
  ZoneColumnStats col;
  col.Fold(ZoneSample{kNaN, false});
  EXPECT_TRUE(col.has_values);
  EXPECT_EQ(col.min, -kInf);
  EXPECT_EQ(col.max, kInf);
  // Any later sample stays inside the widened range.
  col.Fold(ZoneSample{5.0, false});
  EXPECT_EQ(col.min, -kInf);
  EXPECT_EQ(col.max, kInf);
}

TEST(ZoneFoldTest, NullSamplesCountWithoutTouchingBounds) {
  ZoneColumnStats col;
  col.Fold(ZoneSample{0.0, true});
  EXPECT_EQ(col.null_count, 1u);
  EXPECT_FALSE(col.has_values);
  col.Fold(ZoneSample{7.0, false});
  col.Fold(ZoneSample{3.0, false});
  EXPECT_EQ(col.null_count, 1u);
  EXPECT_DOUBLE_EQ(col.min, 3.0);
  EXPECT_DOUBLE_EQ(col.max, 7.0);
}

TEST(ZoneMapTest, UntrackedInsertPoisonsPageForever) {
  ZoneMap map;
  map.AddPage();
  std::vector<ZoneSample> samples = {{1.0, false}};
  map.FoldInsert(&samples);
  EXPECT_TRUE(map.entries()[0].tracked);
  map.FoldInsert(nullptr);  // schema-blind insert
  EXPECT_FALSE(map.entries()[0].tracked);
  map.FoldInsert(&samples);  // later samples cannot un-poison
  EXPECT_FALSE(map.entries()[0].tracked);
  EXPECT_EQ(map.entries()[0].row_count, 3u);
}

class ZoneMapHeapTest : public ::testing::Test {
 protected:
  ZoneMapHeapTest() : pool_(&disk_, 256), catalog_(&disk_, &pool_) {}

  catalog::TableInfo* MakeTable() {
    auto table = catalog_.CreateTable(
        "t", Schema({Column("k", TypeId::kInt64),
                     Column("pad", TypeId::kString)}));
    VDB_CHECK(table.ok());
    return *table;
  }

  /// Inserts rows with sequential keys and a pad sized so several pages
  /// fill up.
  void FillSequential(catalog::TableInfo* table, int rows) {
    for (int i = 0; i < rows; ++i) {
      VDB_CHECK_OK(catalog_.Insert(
          table,
          Tuple{Value::Int64(i), Value::String(std::string(200, 'x'))}));
    }
  }

  /// All live rids of `table`, in heap-scan order.
  static std::vector<RecordId> LiveRids(catalog::TableInfo* table) {
    std::vector<RecordId> rids;
    for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
      rids.push_back(it.rid());
    }
    return rids;
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(ZoneMapHeapTest, EntriesTrackPagesAndBounds) {
  catalog::TableInfo* table = MakeTable();
  FillSequential(table, 500);
  const ZoneMap& map = table->heap->zone_map();
  ASSERT_GT(table->heap->NumPages(), 3u);
  ASSERT_EQ(map.entries().size(), table->heap->NumPages());
  uint64_t rows = 0;
  double prev_max = -kInf;
  for (const ZoneEntry& entry : map.entries()) {
    ASSERT_TRUE(entry.tracked);
    ASSERT_EQ(entry.columns.size(), 2u);
    rows += entry.row_count;
    // Sequential inserts: page ranges are disjoint and increasing.
    EXPECT_GT(entry.columns[0].min, prev_max);
    EXPECT_GE(entry.columns[0].max, entry.columns[0].min);
    prev_max = entry.columns[0].max;
  }
  EXPECT_EQ(rows, 500u);
}

TEST_F(ZoneMapHeapTest, PruneBitmapMatchesBruteForce) {
  catalog::TableInfo* table = MakeTable();
  FillSequential(table, 500);
  ScanPruneSpec spec = SpecOf(ZonePredicate::Kind::kLt, 40.0);
  const std::vector<uint8_t> bitmap = table->heap->ComputePruneBitmap(spec);
  ASSERT_EQ(bitmap.size(), table->heap->NumPages());
  // A pruned page must contain no matching row.
  size_t pruned = 0;
  for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = catalog::DeserializeTuple(it.record(), table->schema);
    ASSERT_TRUE(tuple.ok());
    if ((*tuple)[0].AsInt64() < 40) {
      EXPECT_EQ(bitmap[it.rid().page_id], 0)
          << "row " << (*tuple)[0].AsInt64() << " lives on pruned page";
    }
  }
  for (uint8_t b : bitmap) pruned += b;
  EXPECT_GT(pruned, 0u);
  EXPECT_LT(pruned, bitmap.size());
}

TEST_F(ZoneMapHeapTest, DeleteKeepsSupersetBounds) {
  catalog::TableInfo* table = MakeTable();
  FillSequential(table, 300);
  const std::vector<RecordId> rids = LiveRids(table);
  const ZoneEntry before = table->heap->zone_map().entries()[0];
  // Delete every row on page 0; bounds stay put (superset semantics).
  for (const RecordId& rid : rids) {
    if (rid.page_id == 0) VDB_CHECK_OK(catalog_.Delete(table, rid));
  }
  const ZoneEntry& after = table->heap->zone_map().entries()[0];
  EXPECT_EQ(after, before);
  // The stale bounds still prune correctly: no key < 0 was ever inserted,
  // so every page (including the emptied one) prunes for k < -5 ...
  const auto none = table->heap->ComputePruneBitmap(
      SpecOf(ZonePredicate::Kind::kLt, -5.0));
  for (uint8_t b : none) EXPECT_EQ(b, 1);
  // ... and the emptied page does NOT prune for its old range — a scan
  // visits it and finds only deleted slots, which is correct (never
  // wrong), just not minimal.
  const auto old_range =
      table->heap->ComputePruneBitmap(SpecOf(ZonePredicate::Kind::kLe, 1.0));
  EXPECT_EQ(old_range[0], 0);
  // Scanning after the deletes yields exactly the surviving rows.
  size_t live = 0;
  for (auto it = table->heap->Begin(); it.Valid(); it.Next()) ++live;
  EXPECT_EQ(live, 300u - before.row_count);
}

TEST_F(ZoneMapHeapTest, EmptyTableHasNoPagesAndNeverIterates) {
  catalog::TableInfo* table = MakeTable();
  EXPECT_EQ(table->heap->NumPages(), 0u);
  EXPECT_TRUE(table->heap->zone_map().entries().empty());
  EXPECT_FALSE(table->heap->Begin().Valid());
  const auto bitmap =
      table->heap->ComputePruneBitmap(SpecOf(ZonePredicate::Kind::kEq, 1.0));
  EXPECT_TRUE(bitmap.empty());
}

TEST_F(ZoneMapHeapTest, SchemaBlindInsertNeverPrunes) {
  catalog::TableInfo* table = MakeTable();
  const std::string record = catalog::SerializeTuple(
      Tuple{Value::Int64(5), Value::String("x")}, table->schema);
  ASSERT_TRUE(table->heap->Insert(record).ok());  // no samples
  const ZoneMap& map = table->heap->zone_map();
  ASSERT_EQ(map.entries().size(), 1u);
  EXPECT_FALSE(map.entries()[0].tracked);
  const auto bitmap =
      table->heap->ComputePruneBitmap(SpecOf(ZonePredicate::Kind::kEq, 1e9));
  EXPECT_EQ(bitmap[0], 0);
}

}  // namespace
}  // namespace vdb::storage
