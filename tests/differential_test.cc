// Tier-1 corpus for the differential-testing subsystem (src/testing/).
// Runs a small, fixed set of seeds through the generator -> engine vs.
// reference-oracle pipeline plus one metamorphic sweep, so every CI run
// exercises the fuzzer end to end. The scheduled CI campaign and
// `tools/vdb_fuzz` cover wide seed ranges; this keeps the bounded corpus
// cheap enough for `ctest -L tier1`.
//
// Every failure message includes the seed and a reproduction command.
// Set VDB_TEST_SEED=<n> to re-run the differential corpus on one
// specific seed (e.g. to bisect a failure from the CI campaign).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/metamorphic.h"

namespace vdb::fuzz {
namespace {

// Seeds exercised on every CI run. Chosen as a spread, not for any known
// property; historical engine bugs (double-literal round-trip, dropped
// derived-table column aliases, swapped-join output order) all reproduced
// within this range.
const uint64_t kCorpusSeeds[] = {0, 1, 2, 3, 4, 7, 9, 11, 16, 23};

// VDB_TEST_SEED overrides the corpus with a single seed.
std::vector<uint64_t> CorpusSeeds() {
  if (const char* env = std::getenv("VDB_TEST_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 10))};
  }
  return std::vector<uint64_t>(std::begin(kCorpusSeeds),
                               std::end(kCorpusSeeds));
}

TEST(DifferentialCorpus, EngineMatchesOracle) {
  DifferentialOptions options;
  CampaignStats stats;
  for (uint64_t seed : CorpusSeeds()) {
    FailureReport failure;
    const bool failed = RunDifferentialSeed(seed, options, &stats, &failure);
    ASSERT_FALSE(failed) << "seed " << seed << " failed:\n"
                         << failure.ToString();
  }
  // The corpus must actually compare results, not skip everything.
  EXPECT_GT(stats.matched, 0u) << stats.ToString();
  SCOPED_TRACE(stats.ToString());
}

TEST(DifferentialCorpus, MetamorphicInvariantsHold) {
  uint64_t seed = 0;
  if (const char* env = std::getenv("VDB_TEST_SEED")) {
    seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  const std::vector<std::string> violations = RunMetamorphicChecks(seed);
  for (const std::string& violation : violations) {
    ADD_FAILURE() << "seed " << seed << ": " << violation
                  << "\nrepro: vdb_fuzz --seed " << seed
                  << " --mode metamorphic";
  }
}

}  // namespace
}  // namespace vdb::fuzz
