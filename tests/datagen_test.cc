#include <set>
#include <string>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/calibration_db.h"
#include "datagen/synthetic.h"
#include "datagen/tpch.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/string_util.h"

namespace vdb::datagen {
namespace {

using catalog::Catalog;
using catalog::DeserializeTuple;
using catalog::TableInfo;
using catalog::Tuple;
using catalog::TypeId;

class DatagenTest : public ::testing::Test {
 protected:
  DatagenTest() : pool_(&disk_, 4096), catalog_(&disk_, &pool_) {}

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  Catalog catalog_;
};

TEST_F(DatagenTest, GenerateTableBasics) {
  ColumnSpec id;
  id.name = "id";
  id.distribution = Distribution::kSequential;
  ColumnSpec v;
  v.name = "v";
  v.distribution = Distribution::kUniform;
  v.min_value = 0;
  v.max_value = 9;
  ASSERT_TRUE(GenerateTable(&catalog_, "t", {id, v}, 200, 1).ok());
  auto table = catalog_.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->heap->NumRecords(), 200u);
  int64_t expected_id = 0;
  for (auto it = (*table)->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = DeserializeTuple(it.record(), (*table)->schema);
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ((*tuple)[0].AsInt64(), expected_id++);
    EXPECT_GE((*tuple)[1].AsInt64(), 0);
    EXPECT_LE((*tuple)[1].AsInt64(), 9);
  }
}

TEST_F(DatagenTest, DeterministicAcrossRuns) {
  ColumnSpec v;
  v.name = "v";
  v.distribution = Distribution::kUniform;
  v.min_value = 0;
  v.max_value = 1000000;
  ASSERT_TRUE(GenerateTable(&catalog_, "a", {v}, 100, 99).ok());
  ASSERT_TRUE(GenerateTable(&catalog_, "b", {v}, 100, 99).ok());
  auto ta = catalog_.GetTable("a");
  auto tb = catalog_.GetTable("b");
  auto ita = (*ta)->heap->Begin();
  auto itb = (*tb)->heap->Begin();
  while (ita.Valid() && itb.Valid()) {
    EXPECT_EQ(ita.record(), itb.record());
    ita.Next();
    itb.Next();
  }
  EXPECT_EQ(ita.Valid(), itb.Valid());
}

TEST_F(DatagenTest, NullFractionRespected) {
  ColumnSpec v;
  v.name = "v";
  v.distribution = Distribution::kUniform;
  v.null_fraction = 0.25;
  ASSERT_TRUE(GenerateTable(&catalog_, "t", {v}, 2000, 5).ok());
  auto table = catalog_.GetTable("t");
  int nulls = 0;
  for (auto it = (*table)->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = DeserializeTuple(it.record(), (*table)->schema);
    if ((*tuple)[0].is_null()) ++nulls;
  }
  EXPECT_NEAR(nulls / 2000.0, 0.25, 0.04);
}

TEST_F(DatagenTest, RandomTextLengthAndAlphabet) {
  Random rng(1);
  const std::string text = RandomText(40, &rng);
  EXPECT_GE(text.size(), 40u);
  EXPECT_LT(text.size(), 60u);
  for (char c : text) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ') << c;
  }
}

TEST_F(DatagenTest, CalibrationDbShapes) {
  CalibrationDbConfig config;
  config.base_rows = 500;
  ASSERT_TRUE(GenerateCalibrationDb(&catalog_, config).ok());
  auto small = catalog_.GetTable("cal_small");
  auto large = catalog_.GetTable("cal_large");
  auto indexed = catalog_.GetTable("cal_indexed");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ((*small)->heap->NumRecords(), 500u);
  EXPECT_EQ((*large)->heap->NumRecords(), 4000u);
  EXPECT_EQ((*indexed)->indexes.size(), 2u);
  EXPECT_TRUE((*small)->stats.Analyzed());
  // Column a is sequential-unique.
  EXPECT_EQ((*small)->stats.columns[0].ndv, 500u);
}

class TpchTest : public ::testing::Test {
 protected:
  TpchTest() : pool_(&disk_, 8192), catalog_(&disk_, &pool_) {
    TpchConfig config;
    config.scale_factor = 0.002;
    config.seed = 11;
    VDB_CHECK(GenerateTpch(&catalog_, config).ok());
  }

  TableInfo* Table(const std::string& name) {
    auto table = catalog_.GetTable(name);
    VDB_CHECK(table.ok());
    return *table;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  Catalog catalog_;
};

TEST_F(TpchTest, AllTablesPresentWithExpectedCardinalities) {
  EXPECT_EQ(Table("region")->heap->NumRecords(), 5u);
  EXPECT_EQ(Table("nation")->heap->NumRecords(), 25u);
  const uint64_t customers = Table("customer")->heap->NumRecords();
  EXPECT_EQ(customers, 300u);  // 150000 * 0.002
  EXPECT_EQ(Table("orders")->heap->NumRecords(), customers * 10);
  const uint64_t orders = Table("orders")->heap->NumRecords();
  const uint64_t lines = Table("lineitem")->heap->NumRecords();
  EXPECT_GE(lines, orders);        // >= 1 line per order
  EXPECT_LE(lines, orders * 7);    // <= 7 lines per order
  EXPECT_EQ(Table("partsupp")->heap->NumRecords(),
            Table("part")->heap->NumRecords() * 4);
}

TEST_F(TpchTest, ForeignKeysResolve) {
  // Every order's custkey exists in customer (keys are 1..N sequential).
  const int64_t num_customers =
      static_cast<int64_t>(Table("customer")->heap->NumRecords());
  TableInfo* orders = Table("orders");
  for (auto it = orders->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = DeserializeTuple(it.record(), orders->schema);
    ASSERT_TRUE(tuple.ok());
    const int64_t custkey = (*tuple)[1].AsInt64();
    ASSERT_GE(custkey, 1);
    ASSERT_LE(custkey, num_customers);
  }
}

TEST_F(TpchTest, DatesConsistent) {
  TableInfo* lineitem = Table("lineitem");
  const auto& schema = lineitem->schema;
  const size_t ship = *schema.ColumnIndex("l_shipdate");
  const size_t commit = *schema.ColumnIndex("l_commitdate");
  const size_t receipt = *schema.ColumnIndex("l_receiptdate");
  for (auto it = lineitem->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = DeserializeTuple(it.record(), schema);
    ASSERT_TRUE(tuple.ok());
    const int64_t shipdate = (*tuple)[ship].AsInt64();
    const int64_t receiptdate = (*tuple)[receipt].AsInt64();
    ASSERT_GT(receiptdate, shipdate);
    ASSERT_GE((*tuple)[commit].AsInt64(), TpchStartDate());
    ASSERT_GE(shipdate, TpchStartDate());
    ASSERT_LE(receiptdate, TpchEndDate() + 31);
  }
}

TEST_F(TpchTest, SomeLineitemsMissCommitDate) {
  // Q4's EXISTS predicate needs lineitems with commitdate < receiptdate;
  // with commit ~ U[30,90] and receipt up to 152 days out, a large
  // fraction qualifies but not all.
  TableInfo* lineitem = Table("lineitem");
  const auto& schema = lineitem->schema;
  const size_t commit = *schema.ColumnIndex("l_commitdate");
  const size_t receipt = *schema.ColumnIndex("l_receiptdate");
  uint64_t late = 0;
  uint64_t total = 0;
  for (auto it = lineitem->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = DeserializeTuple(it.record(), schema);
    ++total;
    if ((*tuple)[commit].AsInt64() < (*tuple)[receipt].AsInt64()) ++late;
  }
  EXPECT_GT(late, 0u);
  EXPECT_LT(late, total);
}

TEST_F(TpchTest, SpecialRequestsCommentsRare) {
  TableInfo* orders = Table("orders");
  const size_t comment = *orders->schema.ColumnIndex("o_comment");
  uint64_t matches = 0;
  uint64_t total = 0;
  for (auto it = orders->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = DeserializeTuple(it.record(), orders->schema);
    ++total;
    if (LikeMatch((*tuple)[comment].AsString(), "%special%requests%")) {
      ++matches;
    }
  }
  EXPECT_GT(matches, 0u);
  EXPECT_LT(static_cast<double>(matches) / static_cast<double>(total), 0.05);
}

TEST_F(TpchTest, IndexesCreatedAndConsistent) {
  auto index = catalog_.GetIndex("orders_pk");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->tree->NumEntries(),
            Table("orders")->heap->NumRecords());
  auto lineitem_order = catalog_.GetIndex("lineitem_order");
  ASSERT_TRUE(lineitem_order.ok());
  EXPECT_EQ((*lineitem_order)->tree->NumEntries(),
            Table("lineitem")->heap->NumRecords());
  // Point lookup through the index returns that order's lineitems.
  auto rids = (*lineitem_order)->tree->Lookup(1);
  ASSERT_TRUE(rids.ok());
  EXPECT_GE(rids->size(), 1u);
  EXPECT_LE(rids->size(), 7u);
}

TEST_F(TpchTest, StatisticsAnalyzed) {
  TableInfo* orders = Table("orders");
  ASSERT_TRUE(orders->stats.Analyzed());
  EXPECT_EQ(orders->stats.row_count, orders->heap->NumRecords());
  const size_t date_col = *orders->schema.ColumnIndex("o_orderdate");
  const auto& date_stats = orders->stats.columns[date_col];
  EXPECT_GE(date_stats.min, static_cast<double>(TpchStartDate()));
  EXPECT_LE(date_stats.max, static_cast<double>(TpchEndDate()));
  EXPECT_FALSE(date_stats.histogram.empty());
  // o_orderpriority has exactly 5 distinct values.
  const size_t priority_col = *orders->schema.ColumnIndex("o_orderpriority");
  EXPECT_EQ(orders->stats.columns[priority_col].ndv, 5u);
}

}  // namespace
}  // namespace vdb::datagen
