#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/vmm.h"

namespace vdb::exec {
namespace {

using catalog::Column;
using catalog::Schema;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;

/// Fixture with a small hand-populated database and a full-machine VM, so
/// query results can be checked against hand-computed answers.
class SqlExecTest : public ::testing::Test {
 protected:
  SqlExecTest()
      : vm_("vm", sim::MachineSpec::Small(), sim::HypervisorModel::Ideal(),
            sim::ResourceShare(1.0, 1.0, 1.0)) {
    VDB_CHECK_OK(db_.ApplyVmConfig(vm_));
    auto emp = db_.catalog()->CreateTable(
        "emp", Schema({Column("id", TypeId::kInt64),
                       Column("dept", TypeId::kInt64),
                       Column("salary", TypeId::kDouble),
                       Column("name", TypeId::kString)}));
    VDB_CHECK(emp.ok());
    // id, dept, salary, name
    const struct {
      int64_t id;
      int64_t dept;
      double salary;
      const char* name;
    } rows[] = {
        {1, 10, 1000, "alice"}, {2, 10, 2000, "bob"},
        {3, 20, 1500, "carol"}, {4, 20, 2500, "dave"},
        {5, 30, 3000, "erin"},  {6, 30, 500, "frank"},
    };
    for (const auto& r : rows) {
      VDB_CHECK_OK(db_.catalog()->Insert(
          *emp, Tuple{Value::Int64(r.id), Value::Int64(r.dept),
                      Value::Double(r.salary), Value::String(r.name)}));
    }
    auto dept = db_.catalog()->CreateTable(
        "dept", Schema({Column("did", TypeId::kInt64),
                        Column("dname", TypeId::kString)}));
    VDB_CHECK(dept.ok());
    for (const auto& [did, dname] :
         std::vector<std::pair<int64_t, const char*>>{
             {10, "eng"}, {20, "sales"}, {40, "empty"}}) {
      VDB_CHECK_OK(db_.catalog()->Insert(
          *dept, Tuple{Value::Int64(did), Value::String(dname)}));
    }
    // One row with NULLs.
    auto nullable = db_.catalog()->CreateTable(
        "n", Schema({Column("a", TypeId::kInt64),
                     Column("b", TypeId::kInt64)}));
    VDB_CHECK(nullable.ok());
    VDB_CHECK_OK(db_.catalog()->Insert(
        *nullable, Tuple{Value::Int64(1), Value::Int64(10)}));
    VDB_CHECK_OK(db_.catalog()->Insert(
        *nullable, Tuple{Value::Int64(2), Value::Null(TypeId::kInt64)}));
    VDB_CHECK_OK(db_.catalog()->Insert(
        *nullable, Tuple{Value::Null(TypeId::kInt64), Value::Int64(30)}));
    VDB_CHECK_OK(db_.catalog()->AnalyzeAll());
  }

  std::vector<Tuple> Rows(const std::string& sql) {
    auto result = db_.Execute(sql, vm_);
    VDB_CHECK(result.ok()) << sql << ": " << result.status();
    return std::move(result->rows);
  }

  // Flattens results to strings for easy comparison.
  std::vector<std::string> Strings(const std::string& sql) {
    std::vector<std::string> out;
    for (const Tuple& row : Rows(sql)) {
      out.push_back(catalog::TupleToString(row));
    }
    return out;
  }

  Database db_;
  sim::VirtualMachine vm_;
};

TEST_F(SqlExecTest, SelectAll) {
  auto rows = Rows("select id, name from emp");
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows[0][1].AsString(), "alice");
}

TEST_F(SqlExecTest, WhereFilters) {
  auto rows = Rows("select name from emp where salary > 1500");
  ASSERT_EQ(rows.size(), 3u);
  std::vector<std::string> names;
  for (const Tuple& row : rows) names.push_back(row[0].AsString());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"bob", "dave", "erin"}));
}

TEST_F(SqlExecTest, Arithmetic) {
  auto rows = Rows("select salary * 2 + 1 from emp where id = 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 2001.0);
}

TEST_F(SqlExecTest, OrderByAndLimit) {
  auto rows =
      Rows("select name, salary from emp order by salary desc limit 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "erin");
  EXPECT_EQ(rows[1][0].AsString(), "dave");
}

TEST_F(SqlExecTest, OrderByAscendingStable) {
  auto rows = Rows("select id from emp order by dept asc, id desc");
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0][0].AsInt64(), 2);  // dept 10, id desc
  EXPECT_EQ(rows[1][0].AsInt64(), 1);
  EXPECT_EQ(rows[5][0].AsInt64(), 5);
}

TEST_F(SqlExecTest, GroupByAggregates) {
  auto rows = Rows(
      "select dept, count(*), sum(salary), avg(salary), min(salary), "
      "max(salary) from emp group by dept order by dept");
  ASSERT_EQ(rows.size(), 3u);
  // dept 10: count 2, sum 3000.
  EXPECT_EQ(rows[0][0].AsInt64(), 10);
  EXPECT_EQ(rows[0][1].AsInt64(), 2);
  EXPECT_DOUBLE_EQ(rows[0][2].AsDouble(), 3000.0);
  EXPECT_DOUBLE_EQ(rows[0][3].AsDouble(), 1500.0);
  EXPECT_DOUBLE_EQ(rows[0][4].AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(rows[0][5].AsDouble(), 2000.0);
  // dept 30: min 500, max 3000.
  EXPECT_DOUBLE_EQ(rows[2][4].AsDouble(), 500.0);
  EXPECT_DOUBLE_EQ(rows[2][5].AsDouble(), 3000.0);
}

TEST_F(SqlExecTest, GlobalAggregate) {
  auto rows = Rows("select count(*), sum(salary) from emp");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 6);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 10500.0);
}

TEST_F(SqlExecTest, GlobalAggregateOverEmptyInput) {
  auto rows = Rows("select count(*), sum(salary) from emp where id > 99");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(SqlExecTest, GroupedAggregateOverEmptyInputIsEmpty) {
  EXPECT_TRUE(
      Rows("select dept, count(*) from emp where id > 99 group by dept")
          .empty());
}

TEST_F(SqlExecTest, Having) {
  auto rows = Rows(
      "select dept from emp group by dept having sum(salary) > 3200 order "
      "by dept");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 20);
  EXPECT_EQ(rows[1][0].AsInt64(), 30);
}

TEST_F(SqlExecTest, CountDistinct) {
  auto rows = Rows("select count(distinct dept) from emp");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 3);
}

TEST_F(SqlExecTest, Distinct) {
  auto rows = Rows("select distinct dept from emp order by dept");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt64(), 10);
  EXPECT_EQ(rows[2][0].AsInt64(), 30);
}

TEST_F(SqlExecTest, InnerJoin) {
  auto rows = Rows(
      "select name, dname from emp join dept on dept = did order by name");
  ASSERT_EQ(rows.size(), 4u);  // dept 30 has no dept row
  EXPECT_EQ(rows[0][0].AsString(), "alice");
  EXPECT_EQ(rows[0][1].AsString(), "eng");
  EXPECT_EQ(rows[3][0].AsString(), "dave");
  EXPECT_EQ(rows[3][1].AsString(), "sales");
}

TEST_F(SqlExecTest, LeftJoinPadsNulls) {
  auto rows = Rows(
      "select did, name from dept left join emp on dept = did order by "
      "did");
  // eng: 2 matches, sales: 2 matches, empty: padded.
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[4][0].AsInt64(), 40);
  EXPECT_TRUE(rows[4][1].is_null());
}

TEST_F(SqlExecTest, Q13ShapedLeftJoinCount) {
  // count(column) over a left join counts only matched rows.
  auto rows = Rows(
      "select did, count(id) as c from dept left join emp on dept = did "
      "group by did order by did");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1].AsInt64(), 2);  // dept 10
  EXPECT_EQ(rows[1][1].AsInt64(), 2);  // dept 20
  EXPECT_EQ(rows[2][1].AsInt64(), 0);  // dept 40: padded row, count(id)=0
}

TEST_F(SqlExecTest, ExistsSemiJoin) {
  auto rows = Rows(
      "select dname from dept where exists (select * from emp where dept "
      "= did and salary > 1800) order by dname");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "eng");
  EXPECT_EQ(rows[1][0].AsString(), "sales");
}

TEST_F(SqlExecTest, NotExistsAntiJoin) {
  auto rows = Rows(
      "select dname from dept where not exists (select * from emp where "
      "dept = did)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "empty");
}

TEST_F(SqlExecTest, DerivedTable) {
  auto rows = Rows(
      "select c from (select dept, count(*) from emp group by dept) as g "
      "(d, c) where d < 25 order by c desc");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 2);
}

TEST_F(SqlExecTest, LikeAndInPredicates) {
  auto rows = Rows(
      "select name from emp where name like '%a%' and dept in (10, 20) "
      "order by name");
  // alice (10), carol (20), dave (20); bob has no 'a'.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsString(), "alice");
}

TEST_F(SqlExecTest, CaseExpression) {
  auto rows = Rows(
      "select name, case when salary >= 2500 then 'high' when salary >= "
      "1500 then 'mid' else 'low' end from emp order by id");
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0][1].AsString(), "low");
  EXPECT_EQ(rows[2][1].AsString(), "mid");
  EXPECT_EQ(rows[4][1].AsString(), "high");
}

TEST_F(SqlExecTest, NullSemanticsInWhere) {
  // b = 30 doesn't match NULL; IS NULL does.
  auto rows = Rows("select a from n where b is null");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 2);
  rows = Rows("select b from n where a is not null order by a");
  ASSERT_EQ(rows.size(), 2u);
  // Comparisons with NULL are never true.
  EXPECT_TRUE(Rows("select a from n where b <> 10 and b = b").size() == 1);
}

TEST_F(SqlExecTest, NullsNeverJoin) {
  auto rows = Rows(
      "select n1.a from n n1 join n n2 on n1.b = n2.b order by n1.a");
  // Only rows with non-null b can join: b=10 and b=30, each matches itself.
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(SqlExecTest, BetweenBounds) {
  auto rows = Rows(
      "select id from emp where salary between 1500 and 2500 order by id");
  ASSERT_EQ(rows.size(), 3u);  // 1500, 2000, 2500 inclusive
}

TEST_F(SqlExecTest, ElapsedTimePositiveAndDeterministic) {
  auto r1 = db_.Execute("select count(*) from emp", vm_);
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(r1->elapsed_seconds, 0.0);
  ASSERT_TRUE(db_.DropCaches().ok());
  auto r2 = db_.Execute("select count(*) from emp", vm_);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(db_.DropCaches().ok());
  auto r3 = db_.Execute("select count(*) from emp", vm_);
  ASSERT_TRUE(r3.ok());
  EXPECT_DOUBLE_EQ(r2->elapsed_seconds, r3->elapsed_seconds);
}

TEST_F(SqlExecTest, WarmCacheFasterThanCold) {
  ASSERT_TRUE(db_.DropCaches().ok());
  auto cold = db_.Execute("select sum(salary) from emp", vm_);
  ASSERT_TRUE(cold.ok());
  auto warm = db_.Execute("select sum(salary) from emp", vm_);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->elapsed_seconds, cold->elapsed_seconds);
  EXPECT_EQ(warm->physical_reads, 0u);
}

// Execution times must respond to the VM's resource allocation: less CPU
// slows CPU-bound work; less I/O slows cold scans.
TEST_F(SqlExecTest, TimeRespondsToCpuShare) {
  sim::VirtualMachine fast("fast", sim::MachineSpec::Small(),
                           sim::HypervisorModel::Ideal(),
                           sim::ResourceShare(0.75, 1.0, 1.0));
  sim::VirtualMachine slow("slow", sim::MachineSpec::Small(),
                           sim::HypervisorModel::Ideal(),
                           sim::ResourceShare(0.25, 1.0, 1.0));
  // Warm cache so the query is CPU-bound.
  (void)Rows("select count(*) from emp where name like '%a%'");
  auto fast_result =
      db_.Execute("select count(*) from emp where name like '%a%'", fast);
  auto slow_result =
      db_.Execute("select count(*) from emp where name like '%a%'", slow);
  ASSERT_TRUE(fast_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_GT(slow_result->elapsed_seconds,
            2.0 * fast_result->elapsed_seconds);
}

TEST_F(SqlExecTest, SemanticsIndependentOfAllocation) {
  sim::VirtualMachine small_vm("s", sim::MachineSpec::Small(),
                               sim::HypervisorModel::XenLike(),
                               sim::ResourceShare(0.25, 0.25, 0.25));
  auto full = db_.Execute(
      "select dept, count(*) from emp group by dept order by dept", vm_);
  auto constrained = db_.Execute(
      "select dept, count(*) from emp group by dept order by dept",
      small_vm);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(constrained.ok());
  ASSERT_EQ(full->rows.size(), constrained->rows.size());
  for (size_t i = 0; i < full->rows.size(); ++i) {
    EXPECT_EQ(catalog::TupleToString(full->rows[i]),
              catalog::TupleToString(constrained->rows[i]));
  }
}

TEST_F(SqlExecTest, InSubquerySemiJoin) {
  auto rows = Rows(
      "select dname from dept where did in (select dept from emp where "
      "salary > 1800) order by dname");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "eng");
  EXPECT_EQ(rows[1][0].AsString(), "sales");
}

TEST_F(SqlExecTest, NotInSubqueryAntiJoin) {
  auto rows = Rows(
      "select dname from dept where did not in (select dept from emp)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "empty");
}

TEST_F(SqlExecTest, InSubqueryDuplicatesDontMultiply) {
  // Semi-join semantics: each outer row appears at most once even though
  // the subquery yields duplicate dept values.
  auto rows = Rows(
      "select did from dept where did in (select dept from emp) order by "
      "did");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 10);
  EXPECT_EQ(rows[1][0].AsInt64(), 20);
}

TEST_F(SqlExecTest, InSubqueryArityError) {
  auto result =
      db_.Execute("select * from dept where did in (select id, dept from "
                  "emp)",
                  vm_);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(SqlExecTest, TopNMatchesSortPlusLimitSemantics) {
  // ORDER BY + LIMIT is fused into TopN by the optimizer; results must
  // equal the full ordering's prefix.
  auto limited =
      Rows("select id, salary from emp order by salary desc, id limit 3");
  auto full = Rows("select id, salary from emp order by salary desc, id");
  ASSERT_EQ(limited.size(), 3u);
  for (size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited[i][0].AsInt64(), full[i][0].AsInt64()) << i;
  }
}

TEST_F(SqlExecTest, ScalarSubqueryComparison) {
  // avg(salary) = 1750; employees above it: bob(2000), dave(2500),
  // erin(3000).
  auto rows = Rows(
      "select name from emp where salary > (select avg(salary) from emp) "
      "order by name");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsString(), "bob");
  EXPECT_EQ(rows[1][0].AsString(), "dave");
  EXPECT_EQ(rows[2][0].AsString(), "erin");
}

TEST_F(SqlExecTest, ScalarSubqueryInArithmetic) {
  auto rows = Rows(
      "select count(*) from emp where salary * 2 < (select max(salary) "
      "from emp) + 100");
  ASSERT_EQ(rows.size(), 1u);
  // 2*salary < 3100 -> salaries 1000, 1500, 500 -> 3 rows.
  EXPECT_EQ(rows[0][0].AsInt64(), 3);
}

TEST_F(SqlExecTest, ScalarSubqueryRequiresGlobalAggregate) {
  auto result = db_.Execute(
      "select * from emp where salary > (select salary from emp)", vm_);
  EXPECT_TRUE(result.status().IsNotSupported());
  result = db_.Execute(
      "select * from emp where salary > (select max(salary) from emp "
      "group by dept)",
      vm_);
  EXPECT_TRUE(result.status().IsNotSupported());
}

TEST_F(SqlExecTest, SortAboveReorderedJoinKeepsColumnOrder) {
  // Regression: the optimizer may reorder a join block below an ORDER BY;
  // pass-through operators (Sort/TopN) must advertise the reordered
  // physical column order or projections above resolve the wrong slots.
  auto rows = Rows(
      "select name, dname from emp, dept where dept = did order by name");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsString(), "alice");
  EXPECT_EQ(rows[0][1].AsString(), "eng");
  auto top = Rows(
      "select name, dname from emp, dept where dept = did order by name "
      "limit 2");
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0][0].AsString(), "alice");
  EXPECT_EQ(top[0][1].AsString(), "eng");
  EXPECT_EQ(top[1][0].AsString(), "bob");
}

}  // namespace
}  // namespace vdb::exec
