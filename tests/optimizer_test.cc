#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/tpch.h"
#include "exec/database.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/params.h"
#include "optimizer/selectivity.h"
#include "plan/planner.h"
#include "plan/rewriter.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"
#include "sql/parser.h"

namespace vdb::optimizer {
namespace {

using catalog::TypeId;

TEST(ParamsTest, WorkVectorPricing) {
  OptimizerParams params;
  params.seq_page_cost = 1.0;
  params.random_page_cost = 4.0;
  params.cpu_tuple_cost = 0.01;
  params.cpu_index_tuple_cost = 0.005;
  params.cpu_operator_cost = 0.0025;
  WorkVector work;
  work.seq_pages = 100;
  work.tuples = 1000;
  work.operator_evals = 2000;
  EXPECT_DOUBLE_EQ(work.Cost(params), 100.0 + 10.0 + 5.0);
  work.random_pages = 10;
  work.index_tuples = 100;
  EXPECT_DOUBLE_EQ(work.Cost(params), 115.0 + 40.0 + 0.5);
}

TEST(ParamsTest, CalibratedVectorRoundTrip) {
  OptimizerParams params;
  std::array<double, OptimizerParams::kNumCalibrated> v = {1, 2, 3, 4, 5};
  params.SetCalibratedVector(v);
  EXPECT_EQ(params.CalibratedVector(), v);
  EXPECT_DOUBLE_EQ(params.random_page_cost, 2.0);
}

TEST(CostModelTest, SeqScanLinearInPages) {
  OptimizerParams params;
  CostModel model(params);
  const WorkVector small = model.SeqScan(10, 1000, 2);
  const WorkVector large = model.SeqScan(100, 10000, 2);
  EXPECT_DOUBLE_EQ(large.seq_pages, 10.0 * small.seq_pages);
  EXPECT_DOUBLE_EQ(large.tuples, 10.0 * small.tuples);
}

TEST(CostModelTest, IndexHeapPagesCardenasAndCache) {
  OptimizerParams params;
  params.effective_cache_size_pages = 1000000;  // everything cached
  CostModel cached(params);
  // With few probes into a big table, ~1 page per probe.
  EXPECT_NEAR(cached.IndexHeapPages(10, 100000), 10.0, 0.1);
  // Many probes into a small table can't exceed the table size when the
  // cache holds it.
  EXPECT_LE(cached.IndexHeapPages(100000, 50), 50.0 + 1e-9);

  params.effective_cache_size_pages = 10;  // tiny cache
  CostModel uncached(params);
  // Re-visits now miss: more page fetches than distinct pages.
  EXPECT_GT(uncached.IndexHeapPages(100000, 50), 1000.0);
  // A bigger cache never increases cost.
  EXPECT_LE(cached.IndexHeapPages(100000, 50),
            uncached.IndexHeapPages(100000, 50));
}

TEST(CostModelTest, SortSpillsBeyondWorkMem) {
  OptimizerParams params;
  params.work_mem_bytes = 1 << 20;
  CostModel model(params);
  const WorkVector in_memory = model.Sort(1000, 100);     // 100 KB
  const WorkVector spilled = model.Sort(100000, 100);     // 10 MB
  EXPECT_DOUBLE_EQ(in_memory.seq_pages, 0.0);
  EXPECT_GT(spilled.seq_pages, 0.0);
}

TEST(CostModelTest, HashJoinSpillsBeyondWorkMem) {
  OptimizerParams params;
  params.work_mem_bytes = 1 << 20;
  CostModel model(params);
  EXPECT_DOUBLE_EQ(
      model.HashJoin(1000, 50, 1000, 50, 1000, 0).seq_pages, 0.0);
  EXPECT_GT(model.HashJoin(1000, 50, 100000, 50, 1000, 0).seq_pages, 0.0);
}

class OptimizerQueryTest : public ::testing::Test {
 protected:
  OptimizerQueryTest() {
    using datagen::ColumnSpec;
    using datagen::Distribution;
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    ColumnSpec val;
    val.name = "v";
    val.distribution = Distribution::kUniform;
    val.min_value = 0;
    val.max_value = 99;
    ColumnSpec txt;
    txt.name = "s";
    txt.type = TypeId::kString;
    txt.distribution = Distribution::kRandomText;
    txt.string_length = 30;
    VDB_CHECK(datagen::GenerateTable(db_.catalog(), "big",
                                     {key, val, txt}, 20000, 3)
                  .ok());
    VDB_CHECK(datagen::GenerateTable(db_.catalog(), "small",
                                     {key, val}, 200, 4)
                  .ok());
    VDB_CHECK(db_.catalog()->CreateIndex("big_k", "big", "k").ok());
    VDB_CHECK(db_.catalog()->CreateIndex("big_v", "big", "v").ok());
    VDB_CHECK(db_.catalog()->AnalyzeAll().ok());
  }

  Result<PhysicalNodePtr> Prepare(const std::string& sql) {
    return db_.Prepare(sql);
  }

  static const PhysicalNode* FindOp(const PhysicalNode* node, PhysOp op) {
    if (node->op == op) return node;
    for (const auto& child : node->children) {
      if (const PhysicalNode* found = FindOp(child.get(), op)) return found;
    }
    return nullptr;
  }

  exec::Database db_;
};

TEST_F(OptimizerQueryTest, PointLookupUsesIndex) {
  // `k` is perfectly clustered, so with zone maps on a skip scan rivals
  // the index (see ClusteredPointLookupPrefersZoneSkipScan); skipping is
  // disabled here to probe pure index-vs-sequential costing.
  db_.set_zone_maps_enabled(false);
  auto plan = Prepare("select v from big where k = 12345");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const auto* index_scan = FindOp(plan->get(), PhysOp::kIndexScan);
  ASSERT_NE(index_scan, nullptr) << (*plan)->ToString();
  const auto* scan = static_cast<const PhysIndexScan*>(index_scan);
  EXPECT_TRUE(scan->has_lower);
  EXPECT_TRUE(scan->has_upper);
  EXPECT_EQ(scan->lower, 12345);
  EXPECT_EQ(scan->upper, 12345);
}

TEST_F(OptimizerQueryTest, WideRangeUsesSeqScan) {
  auto plan = Prepare("select v from big where k > 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(FindOp(plan->get(), PhysOp::kSeqScan), nullptr)
      << (*plan)->ToString();
  EXPECT_EQ(FindOp(plan->get(), PhysOp::kIndexScan), nullptr);
}

TEST_F(OptimizerQueryTest, NarrowRangeUsesIndex) {
  // Under 2007-disk default parameters (random reads ~60x a sequential
  // page), only very narrow ranges beat a sequential scan of this table.
  // Zone maps off: with them on, the clustered skip scan wins instead.
  db_.set_zone_maps_enabled(false);
  auto plan = Prepare("select v from big where k between 100 and 102");
  ASSERT_TRUE(plan.ok());
  const auto* index_scan = FindOp(plan->get(), PhysOp::kIndexScan);
  ASSERT_NE(index_scan, nullptr) << (*plan)->ToString();
  const auto* scan = static_cast<const PhysIndexScan*>(index_scan);
  EXPECT_EQ(scan->lower, 100);
  EXPECT_EQ(scan->upper, 102);
}

TEST_F(OptimizerQueryTest, WideRangePrefersSeqScanOverIndex) {
  // A 20-key range fetches ~20 random pages (~150ms of seeks) versus a
  // ~50ms sequential scan; the optimizer must keep the seq scan.
  auto plan = Prepare("select v from big where k between 100 and 120");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(FindOp(plan->get(), PhysOp::kSeqScan), nullptr);
  EXPECT_EQ(FindOp(plan->get(), PhysOp::kIndexScan), nullptr);
  // But its row estimate must use range (not independence) selectivity.
  EXPECT_NEAR((*plan)->estimated_rows, 21.0, 10.0);
}

TEST_F(OptimizerQueryTest, ResidualKeptWithIndex) {
  db_.set_zone_maps_enabled(false);  // see PointLookupUsesIndex
  auto plan = Prepare(
      "select v from big where k = 77 and s like '%beans%'");
  ASSERT_TRUE(plan.ok());
  const auto* index_scan = FindOp(plan->get(), PhysOp::kIndexScan);
  ASSERT_NE(index_scan, nullptr);
  const auto* scan = static_cast<const PhysIndexScan*>(index_scan);
  ASSERT_NE(scan->residual_filter, nullptr);
}

TEST_F(OptimizerQueryTest, ClusteredPointLookupPrefersZoneSkipScan) {
  // With zone maps on (the default), a point lookup on the perfectly
  // clustered key plans as a sequential scan that skips nearly every
  // page — as cheap as the index without touching a random page.
  auto plan = Prepare("select v from big where k = 12345");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const auto* seq = FindOp(plan->get(), PhysOp::kSeqScan);
  ASSERT_NE(seq, nullptr) << (*plan)->ToString();
  const auto* scan = static_cast<const PhysSeqScan*>(seq);
  EXPECT_FALSE(scan->prune_spec.empty());
  EXPECT_GT(scan->zone_skip_fraction, 0.9);
}

TEST_F(OptimizerQueryTest, ZoneSkipCostingMetamorphic) {
  // Metamorphic bound 1: skip-aware costing never makes a plan look more
  // expensive than the same query costed without skipping.
  const std::vector<std::string> queries = {
      "select v from big where k < 100",
      "select v from big where k between 5000 and 5100",
      "select count(*) from big where k >= 19000",
      "select v from big where v = 7",  // uniform column: no pruning
  };
  for (const std::string& sql : queries) {
    db_.set_zone_maps_enabled(true);
    auto with = Prepare(sql);
    ASSERT_TRUE(with.ok()) << with.status();
    db_.set_zone_maps_enabled(false);
    auto without = Prepare(sql);
    ASSERT_TRUE(without.ok()) << without.status();
    EXPECT_LE((*with)->total_cost_ms, (*without)->total_cost_ms + 1e-9)
        << sql;
  }
  db_.set_zone_maps_enabled(true);

  // Metamorphic bound 2: on clustered data the costed skip fraction is
  // monotone as the predicate narrows (wider range -> no more skipping).
  double last_skip = 1.1;
  for (int hi : {100, 2000, 10000, 19999}) {
    auto plan =
        Prepare("select v from big where k < " + std::to_string(hi));
    ASSERT_TRUE(plan.ok());
    const auto* seq = FindOp(plan->get(), PhysOp::kSeqScan);
    ASSERT_NE(seq, nullptr) << (*plan)->ToString();
    const double skip =
        static_cast<const PhysSeqScan*>(seq)->zone_skip_fraction;
    EXPECT_LE(skip, last_skip + 1e-12) << "k < " << hi;
    last_skip = skip;
  }
}

TEST_F(OptimizerQueryTest, EquiJoinPrefersHashJoin) {
  auto plan = Prepare(
      "select big.v from big, small where big.k = small.k");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(FindOp(plan->get(), PhysOp::kHashJoin), nullptr)
      << (*plan)->ToString();
}

TEST_F(OptimizerQueryTest, JoinEstimatesRowsReasonably) {
  auto plan = Prepare(
      "select big.v from big, small where big.k = small.k");
  ASSERT_TRUE(plan.ok());
  const auto* join = FindOp(plan->get(), PhysOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  // k is unique in big; each of small's 200 rows matches once.
  EXPECT_GT(join->estimated_rows, 20.0);
  EXPECT_LT(join->estimated_rows, 2000.0);
}

TEST_F(OptimizerQueryTest, CrossJoinFallsBackToNestedLoop) {
  auto plan = Prepare("select small.v from small, small s2 limit 3");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(FindOp(plan->get(), PhysOp::kNestedLoopJoin), nullptr)
      << (*plan)->ToString();
}

TEST_F(OptimizerQueryTest, OrderByLimitFusesToTopN) {
  auto plan = Prepare("select v from big order by v desc limit 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(FindOp(plan->get(), PhysOp::kTopN), nullptr)
      << (*plan)->ToString();
  EXPECT_EQ(FindOp(plan->get(), PhysOp::kSort), nullptr);
  // TopN must be estimated cheaper than the unfused sort+limit: compare
  // against the plain full sort.
  auto sorted = Prepare("select v from big order by v desc");
  ASSERT_TRUE(sorted.ok());
  EXPECT_LT((*plan)->total_cost_ms, (*sorted)->total_cost_ms);
}

TEST_F(OptimizerQueryTest, HugeLimitKeepsPlainSort) {
  // If the retained rows would not fit work_mem, TopN is not used.
  OptimizerParams params;
  params.work_mem_bytes = 1024;  // 1 KiB
  db_.SetOptimizerParams(params);
  auto plan = Prepare("select v, s from big order by v limit 10000");
  db_.SetOptimizerParams(OptimizerParams());
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(FindOp(plan->get(), PhysOp::kSort), nullptr)
      << (*plan)->ToString();
}

TEST_F(OptimizerQueryTest, WhatIfParamsShiftPlanChoice) {
  // With random pages as cheap as sequential ones and a huge cache, the
  // index path wins a much wider range than under default (disk) params.
  const std::string sql = "select v from big where k < 4000";

  OptimizerParams disk_like;
  disk_like.seq_page_cost = 0.13;
  disk_like.random_page_cost = 7.7;
  disk_like.effective_cache_size_pages = 64;
  db_.SetOptimizerParams(disk_like);
  auto disk_plan = Prepare(sql);
  ASSERT_TRUE(disk_plan.ok());

  OptimizerParams memory_like = disk_like;
  memory_like.random_page_cost = 0.13;
  memory_like.effective_cache_size_pages = 1u << 20;
  memory_like.cpu_tuple_cost = 0.01;  // CPU-starved VM: touching every
  memory_like.cpu_operator_cost = 0.01;  // tuple is expensive
  db_.SetOptimizerParams(memory_like);
  auto memory_plan = Prepare(sql);
  ASSERT_TRUE(memory_plan.ok());

  EXPECT_NE(FindOp(disk_plan->get(), PhysOp::kSeqScan), nullptr)
      << (*disk_plan)->ToString();
  EXPECT_NE(FindOp(memory_plan->get(), PhysOp::kIndexScan), nullptr)
      << (*memory_plan)->ToString();
}

TEST_F(OptimizerQueryTest, CostsScaleWithParams) {
  auto plan = Prepare("select count(*) from big");
  ASSERT_TRUE(plan.ok());
  const double base_cost = (*plan)->total_cost_ms;
  OptimizerParams slow;
  slow.seq_page_cost = 100.0;
  db_.SetOptimizerParams(slow);
  auto slow_plan = Prepare("select count(*) from big");
  ASSERT_TRUE(slow_plan.ok());
  EXPECT_GT((*slow_plan)->total_cost_ms, base_cost);
}

TEST_F(OptimizerQueryTest, EstimatesOrderSelectivity) {
  auto narrow = Prepare("select v from big where v = 7");
  auto wide = Prepare("select v from big where v < 90");
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_LT((*narrow)->estimated_rows, (*wide)->estimated_rows);
  // v uniform over 100 values: equality ~1% of rows.
  EXPECT_NEAR((*narrow)->estimated_rows, 200.0, 150.0);
  EXPECT_NEAR((*wide)->estimated_rows, 18000.0, 2500.0);
}

// Join ordering on a TPC-H star-ish query: the optimizer should not start
// from the biggest table.
TEST(JoinOrderTest, TpchQ3ShapeIsReasonable) {
  exec::Database db;
  datagen::TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_TRUE(datagen::GenerateTpch(db.catalog(), config).ok());
  auto plan = db.Prepare(
      "select o_orderkey, sum(l_extendedprice * (1 - l_discount)) as "
      "revenue from customer, orders, lineitem where c_mktsegment = "
      "'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey "
      "and o_orderdate < date '1995-03-15' group by o_orderkey order by "
      "revenue desc limit 10");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Expect at least one hash join in the plan, with the ORDER BY+LIMIT
  // fused into a TopN on top.
  EXPECT_EQ((*plan)->op, PhysOp::kTopN) << (*plan)->ToString();
  const std::string text = (*plan)->ToString();
  EXPECT_NE(text.find("HashJoin"), std::string::npos) << text;
}

// Beyond 12 relations the join-order DP hands off to the greedy
// ordering; the plan must still be correct and connected.
TEST(JoinOrderTest, GreedyFallbackForManyRelations) {
  exec::Database db;
  using datagen::ColumnSpec;
  using datagen::Distribution;
  const int kTables = 13;
  std::string sql = "select count(*) from ";
  for (int i = 0; i < kTables; ++i) {
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    const std::string name = "t" + std::to_string(i);
    VDB_CHECK_OK(datagen::GenerateTable(&*db.catalog(), name, {key},
                                        20 + i, 100 + i));
    if (i > 0) sql += ", ";
    sql += name;
  }
  VDB_CHECK_OK(db.catalog()->AnalyzeAll());
  sql += " where ";
  for (int i = 1; i < kTables; ++i) {
    if (i > 1) sql += " and ";
    sql += "t" + std::to_string(i - 1) + ".k = t" + std::to_string(i) +
           ".k";
  }
  auto plan = db.Prepare(sql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Execute: chain join over sequential keys -> 20 surviving rows
  // (the smallest table bounds the chain).
  sim::VirtualMachine vm("vm", sim::MachineSpec::PaperTestbed(),
                         sim::HypervisorModel::Ideal(),
                         sim::ResourceShare(1.0, 1.0, 1.0));
  VDB_CHECK_OK(db.ApplyVmConfig(vm));
  auto result = db.ExecutePlan(**plan, vm);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt64(), 20);
}

TEST(JoinOrderTest, TooManyRelationsRejectedCleanly) {
  exec::Database db;
  using datagen::ColumnSpec;
  using datagen::Distribution;
  std::string sql = "select count(*) from ";
  for (int i = 0; i < 21; ++i) {
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    const std::string name = "m" + std::to_string(i);
    VDB_CHECK_OK(
        datagen::GenerateTable(&*db.catalog(), name, {key}, 5, 200 + i));
    if (i > 0) sql += ", ";
    sql += name;
  }
  auto plan = db.Prepare(sql);
  EXPECT_TRUE(plan.status().IsNotSupported());
}

TEST(OptimizerEdgeTest, UnanalyzedTableStillPlans) {
  exec::Database db;
  auto table = db.catalog()->CreateTable(
      "raw", catalog::Schema({catalog::Column("x", TypeId::kInt64)}));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.catalog()
                    ->Insert(*table, {catalog::Value::Int64(i)})
                    .ok());
  }
  // No Analyze: the optimizer must fall back to heap counts + defaults.
  auto plan = db.Prepare("select count(*) from raw where x < 50");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GT((*plan)->estimated_rows, 0.0);
}

TEST(OptimizerEdgeTest, EmptyTablePlansAndExecutes) {
  exec::Database db;
  auto table = db.catalog()->CreateTable(
      "nothing", catalog::Schema({catalog::Column("x", TypeId::kInt64)}));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(db.catalog()->AnalyzeAll().ok());
  sim::VirtualMachine vm("vm", sim::MachineSpec::Small(),
                         sim::HypervisorModel::Ideal(),
                         sim::ResourceShare(1.0, 1.0, 1.0));
  VDB_CHECK_OK(db.ApplyVmConfig(vm));
  auto result = db.Execute("select sum(x), count(*) from nothing", vm);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_TRUE(result->rows[0][0].is_null());
  EXPECT_EQ(result->rows[0][1].AsInt64(), 0);
}

}  // namespace
}  // namespace vdb::optimizer
