// End-to-end integration tests: the supported TPC-H queries run
// through the full stack (parser -> planner -> optimizer -> executor) and
// their results are checked against reference answers computed by direct
// heap scans in this file (no SQL machinery), plus invariants that must
// hold regardless of data.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/tpch.h"
#include "datagen/tpch_queries.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"
#include "util/string_util.h"

namespace vdb {
namespace {

using catalog::DeserializeTuple;
using catalog::TableInfo;
using catalog::Tuple;
using catalog::Value;

class TpchIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new exec::Database();
    vm_ = new sim::VirtualMachine(
        "vm", sim::MachineSpec::PaperTestbed(),
        sim::HypervisorModel::XenLike(), sim::ResourceShare(0.5, 0.5, 0.5));
    datagen::TpchConfig config;
    config.scale_factor = 0.01;
    config.seed = 17;
    VDB_CHECK_OK(datagen::GenerateTpch(db_->catalog(), config));
    VDB_CHECK_OK(db_->ApplyVmConfig(*vm_));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete vm_;
    db_ = nullptr;
    vm_ = nullptr;
  }

  static std::vector<Tuple> Run(const std::string& sql) {
    auto result = db_->Execute(sql, *vm_);
    VDB_CHECK(result.ok()) << result.status() << "\n" << sql;
    return std::move(result->rows);
  }

  static std::vector<Tuple> RunQ(int number) {
    auto sql = datagen::TpchQuery(number);
    VDB_CHECK(sql.ok());
    return Run(*sql);
  }

  // Materializes a base table for reference computations.
  static std::vector<Tuple> Scan(const std::string& table_name) {
    auto table = db_->catalog()->GetTable(table_name);
    VDB_CHECK(table.ok());
    std::vector<Tuple> rows;
    for (auto it = (*table)->heap->Begin(); it.Valid(); it.Next()) {
      auto tuple = DeserializeTuple(it.record(), (*table)->schema);
      VDB_CHECK(tuple.ok());
      rows.push_back(std::move(*tuple));
    }
    return rows;
  }

  static size_t Col(const std::string& table_name,
                    const std::string& column) {
    auto table = db_->catalog()->GetTable(table_name);
    VDB_CHECK(table.ok());
    auto index = (*table)->schema.ColumnIndex(column);
    VDB_CHECK(index.ok());
    return *index;
  }

  static exec::Database* db_;
  static sim::VirtualMachine* vm_;
};

exec::Database* TpchIntegrationTest::db_ = nullptr;
sim::VirtualMachine* TpchIntegrationTest::vm_ = nullptr;

TEST_F(TpchIntegrationTest, AllSupportedQueriesExecute) {
  for (const datagen::TpchQueryDef& query : datagen::TpchQueries()) {
    auto result = db_->Execute(query.sql, *vm_);
    ASSERT_TRUE(result.ok())
        << "Q" << query.number << ": " << result.status();
    if (query.number != 18) {  // Q18's >300 filter can be empty at SF 0.01
      EXPECT_FALSE(result->rows.empty()) << "Q" << query.number;
    }
    EXPECT_GT(result->elapsed_seconds, 0.0);
  }
}

TEST_F(TpchIntegrationTest, Q1MatchesReference) {
  // Reference: group lineitem by (returnflag, linestatus) by hand.
  const auto lineitem = Scan("lineitem");
  const size_t flag = Col("lineitem", "l_returnflag");
  const size_t status = Col("lineitem", "l_linestatus");
  const size_t qty = Col("lineitem", "l_quantity");
  const size_t price = Col("lineitem", "l_extendedprice");
  const size_t disc = Col("lineitem", "l_discount");
  const size_t ship = Col("lineitem", "l_shipdate");
  const int64_t cutoff = catalog::DateFromYmd(1998, 9, 2);

  struct Group {
    double sum_qty = 0;
    double sum_price = 0;
    double sum_disc_price = 0;
    int64_t count = 0;
  };
  std::map<std::pair<std::string, std::string>, Group> reference;
  for (const Tuple& row : lineitem) {
    if (row[ship].AsInt64() > cutoff) continue;
    Group& group = reference[{row[flag].AsString(),
                              row[status].AsString()}];
    group.sum_qty += row[qty].AsDouble();
    group.sum_price += row[price].AsDouble();
    group.sum_disc_price +=
        row[price].AsDouble() * (1.0 - row[disc].AsDouble());
    group.count += 1;
  }

  const auto rows = RunQ(1);
  ASSERT_EQ(rows.size(), reference.size());
  for (const Tuple& row : rows) {
    const auto key =
        std::make_pair(row[0].AsString(), row[1].AsString());
    ASSERT_TRUE(reference.count(key)) << key.first << key.second;
    const Group& group = reference[key];
    EXPECT_NEAR(row[2].AsDouble(), group.sum_qty, 1e-6);
    EXPECT_NEAR(row[3].AsDouble(), group.sum_price,
                1e-9 * std::fabs(group.sum_price) + 1e-6);
    EXPECT_NEAR(row[4].AsDouble(), group.sum_disc_price,
                1e-9 * std::fabs(group.sum_disc_price) + 1e-6);
    EXPECT_EQ(row[9].AsInt64(), group.count);
    // avg = sum / count
    EXPECT_NEAR(row[6].AsDouble(), group.sum_qty / group.count, 1e-9);
  }
  // Output must be ordered by (returnflag, linestatus).
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto prev =
        std::make_pair(rows[i - 1][0].AsString(), rows[i - 1][1].AsString());
    const auto curr =
        std::make_pair(rows[i][0].AsString(), rows[i][1].AsString());
    EXPECT_LT(prev, curr);
  }
}

TEST_F(TpchIntegrationTest, Q4MatchesReference) {
  // Reference: orders in the date window with >= 1 late lineitem.
  const auto orders = Scan("orders");
  const auto lineitem = Scan("lineitem");
  const size_t okey = Col("orders", "o_orderkey");
  const size_t odate = Col("orders", "o_orderdate");
  const size_t oprio = Col("orders", "o_orderpriority");
  const size_t lkey = Col("lineitem", "l_orderkey");
  const size_t commit = Col("lineitem", "l_commitdate");
  const size_t receipt = Col("lineitem", "l_receiptdate");
  const int64_t lo = catalog::DateFromYmd(1993, 7, 1);
  const int64_t hi = catalog::DateFromYmd(1993, 10, 1);

  std::set<int64_t> late_orders;
  for (const Tuple& row : lineitem) {
    if (row[commit].AsInt64() < row[receipt].AsInt64()) {
      late_orders.insert(row[lkey].AsInt64());
    }
  }
  std::map<std::string, int64_t> reference;
  for (const Tuple& row : orders) {
    const int64_t date = row[odate].AsInt64();
    if (date < lo || date >= hi) continue;
    if (late_orders.count(row[okey].AsInt64())) {
      reference[row[oprio].AsString()] += 1;
    }
  }

  const auto rows = RunQ(4);
  ASSERT_EQ(rows.size(), reference.size());
  std::string previous;
  for (const Tuple& row : rows) {
    const std::string priority = row[0].AsString();
    ASSERT_TRUE(reference.count(priority)) << priority;
    EXPECT_EQ(row[1].AsInt64(), reference[priority]) << priority;
    EXPECT_LT(previous, priority);  // ordered by priority
    previous = priority;
  }
}

TEST_F(TpchIntegrationTest, Q6MatchesReference) {
  const auto lineitem = Scan("lineitem");
  const size_t ship = Col("lineitem", "l_shipdate");
  const size_t disc = Col("lineitem", "l_discount");
  const size_t qty = Col("lineitem", "l_quantity");
  const size_t price = Col("lineitem", "l_extendedprice");
  const int64_t lo = catalog::DateFromYmd(1994, 1, 1);
  const int64_t hi = catalog::DateFromYmd(1995, 1, 1);
  double revenue = 0.0;
  for (const Tuple& row : lineitem) {
    const int64_t date = row[ship].AsInt64();
    const double discount = row[disc].AsDouble();
    if (date >= lo && date < hi && discount >= 0.05 &&
        discount <= 0.07 && row[qty].AsDouble() < 24) {
      revenue += row[price].AsDouble() * discount;
    }
  }
  const auto rows = RunQ(6);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NEAR(rows[0][0].AsDouble(), revenue,
              1e-9 * std::fabs(revenue) + 1e-9);
}

TEST_F(TpchIntegrationTest, Q13MatchesReference) {
  // Reference: per customer, count orders whose comment does NOT match
  // '%special%requests%'; then histogram customers by that count.
  const auto customers = Scan("customer");
  const auto orders = Scan("orders");
  const size_t ckey = Col("customer", "c_custkey");
  const size_t ocust = Col("orders", "o_custkey");
  const size_t comment = Col("orders", "o_comment");

  std::map<int64_t, int64_t> per_customer;
  for (const Tuple& row : customers) {
    per_customer[row[ckey].AsInt64()] = 0;
  }
  for (const Tuple& row : orders) {
    if (LikeMatch(row[comment].AsString(), "%special%requests%")) continue;
    per_customer[row[ocust].AsInt64()] += 1;
  }
  std::map<int64_t, int64_t> reference;  // c_count -> custdist
  for (const auto& [customer, count] : per_customer) {
    reference[count] += 1;
  }

  const auto rows = RunQ(13);
  ASSERT_EQ(rows.size(), reference.size());
  int64_t total_customers = 0;
  for (const Tuple& row : rows) {
    const int64_t c_count = row[0].AsInt64();
    ASSERT_TRUE(reference.count(c_count)) << c_count;
    EXPECT_EQ(row[1].AsInt64(), reference[c_count]) << c_count;
    total_customers += row[1].AsInt64();
  }
  EXPECT_EQ(total_customers, static_cast<int64_t>(customers.size()));
  // Ordered by custdist desc, c_count desc.
  for (size_t i = 1; i < rows.size(); ++i) {
    const bool ordered =
        rows[i - 1][1].AsInt64() > rows[i][1].AsInt64() ||
        (rows[i - 1][1].AsInt64() == rows[i][1].AsInt64() &&
         rows[i - 1][0].AsInt64() > rows[i][0].AsInt64());
    EXPECT_TRUE(ordered) << "row " << i;
  }
}

TEST_F(TpchIntegrationTest, Q3TopTenOrderedByRevenue) {
  const auto rows = RunQ(3);
  ASSERT_LE(rows.size(), 10u);
  ASSERT_GE(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1][1].AsDouble(), rows[i][1].AsDouble());
  }
  // Every revenue positive; orderdate before the cutoff.
  const int64_t cutoff = catalog::DateFromYmd(1995, 3, 15);
  for (const Tuple& row : rows) {
    EXPECT_GT(row[1].AsDouble(), 0.0);
    EXPECT_LT(row[2].AsInt64(), cutoff);
  }
}

TEST_F(TpchIntegrationTest, Q5RevenuePositiveAndSortedDesc) {
  const auto rows = RunQ(5);
  // Asian nations with revenue in 1994; results sorted descending.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1][1].AsDouble(), rows[i][1].AsDouble());
  }
  const std::set<std::string> asia = {"INDIA", "INDONESIA", "JAPAN",
                                      "CHINA", "VIETNAM"};
  for (const Tuple& row : rows) {
    EXPECT_TRUE(asia.count(row[0].AsString())) << row[0].AsString();
    EXPECT_GT(row[1].AsDouble(), 0.0);
  }
}

TEST_F(TpchIntegrationTest, Q12CountsConsistent) {
  const auto rows = RunQ(12);
  ASSERT_LE(rows.size(), 2u);  // MAIL, SHIP
  for (const Tuple& row : rows) {
    const std::string mode = row[0].AsString();
    EXPECT_TRUE(mode == "MAIL" || mode == "SHIP");
    EXPECT_GE(row[1].AsInt64(), 0);
    EXPECT_GE(row[2].AsInt64(), 0);
    EXPECT_GT(row[1].AsInt64() + row[2].AsInt64(), 0);
  }
}

TEST_F(TpchIntegrationTest, Q18LargeVolumeCustomers) {
  // Reference: orders whose total lineitem quantity exceeds 300.
  const auto lineitem = Scan("lineitem");
  const size_t lkey = Col("lineitem", "l_orderkey");
  const size_t qty = Col("lineitem", "l_quantity");
  std::map<int64_t, double> per_order;
  for (const Tuple& row : lineitem) {
    per_order[row[lkey].AsInt64()] += row[qty].AsDouble();
  }
  std::set<int64_t> expected_orders;
  for (const auto& [order, total] : per_order) {
    if (total > 300.0) expected_orders.insert(order);
  }

  const auto rows = RunQ(18);
  EXPECT_EQ(rows.size(), std::min<size_t>(expected_orders.size(), 100));
  double previous_price = 1e18;
  for (const Tuple& row : rows) {
    const int64_t order = row[2].AsInt64();
    EXPECT_TRUE(expected_orders.count(order)) << order;
    EXPECT_NEAR(row[5].AsDouble(), per_order[order], 1e-9);
    EXPECT_GT(row[5].AsDouble(), 300.0);
    EXPECT_LE(row[4].AsDouble(), previous_price);  // o_totalprice desc
    previous_price = row[4].AsDouble();
  }
}

TEST_F(TpchIntegrationTest, Q14PromoShareIsAPercentage) {
  const auto rows = RunQ(14);
  ASSERT_EQ(rows.size(), 1u);
  const double promo = rows[0][0].AsDouble();
  EXPECT_GE(promo, 0.0);
  EXPECT_LE(promo, 100.0);
}

TEST_F(TpchIntegrationTest, Q17LiteScalarSubquery) {
  // Uncorrelated variant of Q17's shape: lineitems cheaper than a fifth
  // of the global average quantity. Reference by direct scan.
  const auto lineitem = Scan("lineitem");
  const size_t qty = Col("lineitem", "l_quantity");
  const size_t price = Col("lineitem", "l_extendedprice");
  double sum_qty = 0.0;
  for (const Tuple& row : lineitem) sum_qty += row[qty].AsDouble();
  const double threshold =
      0.2 * sum_qty / static_cast<double>(lineitem.size());
  double expected = 0.0;
  for (const Tuple& row : lineitem) {
    if (row[qty].AsDouble() < threshold) expected += row[price].AsDouble();
  }
  const auto rows = Run(
      "select sum(l_extendedprice) from lineitem where l_quantity < 0.2 * "
      "(select avg(l_quantity) from lineitem)");
  ASSERT_EQ(rows.size(), 1u);
  if (expected == 0.0) {
    EXPECT_TRUE(rows[0][0].is_null());
  } else {
    EXPECT_NEAR(rows[0][0].AsDouble(), expected,
                1e-9 * expected + 1e-6);
  }
}

TEST_F(TpchIntegrationTest, ResultsIdenticalAcrossAllocations) {
  // Changing the VM's resources (and hence plans via what-if params and
  // the instance memory config) must never change query answers.
  sim::VirtualMachine starved("s", sim::MachineSpec::PaperTestbed(),
                              sim::HypervisorModel::XenLike(),
                              sim::ResourceShare(0.1, 0.1, 0.1));
  for (const int query : {1, 4, 6, 13}) {
    auto sql = datagen::TpchQuery(query);
    ASSERT_TRUE(sql.ok());
    VDB_CHECK_OK(db_->ApplyVmConfig(*vm_));
    auto baseline = db_->Execute(*sql, *vm_);
    ASSERT_TRUE(baseline.ok());
    VDB_CHECK_OK(db_->ApplyVmConfig(starved));
    auto constrained = db_->Execute(*sql, starved);
    ASSERT_TRUE(constrained.ok());
    VDB_CHECK_OK(db_->ApplyVmConfig(*vm_));
    ASSERT_EQ(baseline->rows.size(), constrained->rows.size())
        << "Q" << query;
    for (size_t i = 0; i < baseline->rows.size(); ++i) {
      EXPECT_EQ(catalog::TupleToString(baseline->rows[i]),
                catalog::TupleToString(constrained->rows[i]))
          << "Q" << query << " row " << i;
    }
    // The starved VM must also be slower.
    EXPECT_GT(constrained->elapsed_seconds, baseline->elapsed_seconds);
  }
}

TEST_F(TpchIntegrationTest, EstimatesRankQ4VsQ13CpuPlansCorrectly) {
  // Miniature of the paper's Figure 4 logic as a regression test: with
  // default parameters scaled for CPU share, Q13's estimate must be more
  // CPU-sensitive than Q4's.
  auto q4 = datagen::TpchQuery(4);
  auto q13 = datagen::TpchQuery(13);
  optimizer::OptimizerParams fast;  // generous CPU
  fast.cpu_tuple_cost = 0.0002;
  fast.cpu_operator_cost = 0.00005;
  optimizer::OptimizerParams slow = fast;  // starved CPU: 3x per-op time
  slow.cpu_tuple_cost *= 3;
  slow.cpu_operator_cost *= 3;

  auto estimate = [&](const std::string& sql,
                      const optimizer::OptimizerParams& params) {
    db_->SetOptimizerParams(params);
    auto plan = db_->Prepare(sql);
    VDB_CHECK(plan.ok());
    return (*plan)->total_cost_ms;
  };
  const double q4_swing = estimate(*q4, slow) / estimate(*q4, fast);
  const double q13_swing = estimate(*q13, slow) / estimate(*q13, fast);
  EXPECT_GT(q13_swing, q4_swing);
}

}  // namespace
}  // namespace vdb
