// Tier-1 tests for the spill-to-disk operators (DESIGN.md §14).
//
// The fixture pins work_mem at its 64 KiB floor by attaching the database
// to a VM with a 1% memory share of a Small machine, then loads a table
// big enough that ORDER BY, hash join, and GROUP BY all cross the spill
// trigger. The contract under test: spilling changes *where* intermediate
// state lives, never *what* a query returns or charges — rows and
// simulated charges must match the in-memory path bit-for-bit on both
// engines, and aborted queries must release every spill file.

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "exec/database.h"
#include "exec/spill.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb::exec {
namespace {

using catalog::Column;
using catalog::Schema;
using catalog::Tuple;
using catalog::TupleToString;
using catalog::TypeId;
using catalog::Value;

// 5000 rows x ~130 modeled bytes ≈ 640 KB of working set against a
// 64 KiB work_mem: every blocking operator over the full table spills,
// while a `id < 200` slice stays comfortably in memory. Row count is
// also > 4096 so the Grace probe loop crosses at least one budget poll.
constexpr int kBigRows = 5000;

class SpillTest : public ::testing::Test {
 protected:
  SpillTest()
      : vm_("vm", sim::MachineSpec::Small(), sim::HypervisorModel::Ideal(),
            // 1% of 64 MiB → 640 KiB of VM memory → work_mem hits its
            // 64 KiB floor (DbInstanceConfig::FromVm).
            sim::ResourceShare(1.0, 0.01, 1.0)) {
    Populate(&db_);
    VDB_CHECK(db_.config().work_mem_bytes == 64 * 1024)
        << "fixture expects work_mem at the floor, got "
        << db_.config().work_mem_bytes;
  }

  void Populate(Database* db) {
    VDB_CHECK_OK(db->ApplyVmConfig(vm_));
    auto big = db->catalog()->CreateTable(
        "big", Schema({Column("id", TypeId::kInt64),
                       Column("grp", TypeId::kInt64),
                       Column("val", TypeId::kDouble),
                       Column("pad", TypeId::kString)}));
    VDB_CHECK(big.ok());
    for (int i = 0; i < kBigRows; ++i) {
      // Deterministic but non-monotonic values so sorts actually permute.
      const int64_t key = static_cast<int64_t>((i * 2654435761u) % 100003);
      VDB_CHECK_OK(db->catalog()->Insert(
          *big, Tuple{Value::Int64(i), Value::Int64(i % 37),
                      Value::Double(static_cast<double>(key) / 7.0),
                      Value::String("pad-" + std::to_string(key) +
                                    "-xxxxxxxxxxxxxxxx")}));
    }
    auto tiny = db->catalog()->CreateTable(
        "tiny", Schema({Column("id", TypeId::kInt64),
                        Column("tag", TypeId::kString)}));
    VDB_CHECK(tiny.ok());
    for (int i = 0; i < 40; ++i) {
      VDB_CHECK_OK(db->catalog()->Insert(
          *tiny, Tuple{Value::Int64(i % 37),
                       Value::String("tag-" + std::to_string(i))}));
    }
    VDB_CHECK_OK(db->catalog()->AnalyzeAll());
  }

  // Cold run: fixed engine/threads, caches dropped, so repeated runs of
  // the same query are bit-reproducible.
  QueryResult RunCold(Database* db, ExecMode mode, int threads,
                      const std::string& sql) {
    db->set_exec_mode(mode);
    QueryOptions options;
    options.num_threads = threads;
    db->set_query_options(options);
    VDB_CHECK_OK(db->DropCaches());
    auto result = db->Execute(sql, vm_);
    VDB_CHECK(result.ok()) << sql << ": " << result.status();
    return *std::move(result);
  }

  static std::vector<std::string> RowStrings(const QueryResult& r) {
    std::vector<std::string> out;
    out.reserve(r.rows.size());
    for (const Tuple& t : r.rows) out.push_back(TupleToString(t));
    return out;
  }

  static void ExpectNear(double x, double y, const char* what) {
    EXPECT_LE(std::fabs(x - y),
              1e-12 + 1e-9 * std::max(std::fabs(x), std::fabs(y)))
        << what << ": " << x << " vs " << y;
  }

  // Row engine vs serial batch engine: identical rows, near-equal charges
  // (FP summation order differs), identical physical reads.
  void ExpectEnginesAgree(Database* db, const std::string& sql,
                          size_t expect_rows) {
    const QueryResult row = RunCold(db, ExecMode::kRow, 1, sql);
    const QueryResult batch = RunCold(db, ExecMode::kBatch, 1, sql);
    EXPECT_EQ(row.rows.size(), expect_rows) << sql;
    EXPECT_EQ(RowStrings(row), RowStrings(batch)) << sql;
    ExpectNear(row.cpu_seconds, batch.cpu_seconds, "cpu_seconds");
    ExpectNear(row.io_seconds, batch.io_seconds, "io_seconds");
    EXPECT_EQ(row.physical_reads, batch.physical_reads) << sql;
  }

  sim::VirtualMachine vm_;
  Database db_;
};

// --- SpillFile / SpillManager mechanics ------------------------------------

TEST_F(SpillTest, SpillFileRoundTripsValuesBitwise) {
  SpillManager* spill = db_.spill_manager();
  ASSERT_NE(spill, nullptr);
  const uint64_t created_before = spill->files_created();
  {
    auto file = spill->NewFile("unit");
    VDB_CHECK(file.ok());
    EXPECT_EQ(spill->live_files(), 1u);
    const Tuple rows[] = {
        Tuple{Value::Int64(-7), Value::Double(0.1 + 0.2),
              Value::String("spill"), Value::Null(TypeId::kInt64)},
        Tuple{Value::Bool(true), Value::Date(12345),
              Value::String(std::string(300, 'x')),
              Value::Double(-0.0)},
    };
    for (uint64_t i = 0; i < 2; ++i) {
      VDB_CHECK_OK((*file)->WriteRow(i * 41, rows[i]));
    }
    VDB_CHECK_OK((*file)->Rewind());
    for (uint64_t i = 0; i < 2; ++i) {
      uint64_t index = 0;
      Tuple row;
      auto more = (*file)->ReadRow(&index, &row);
      VDB_CHECK(more.ok());
      ASSERT_TRUE(*more);
      EXPECT_EQ(index, i * 41);
      EXPECT_EQ(TupleToString(row), TupleToString(rows[i]));
    }
    uint64_t index = 0;
    Tuple row;
    auto more = (*file)->ReadRow(&index, &row);
    VDB_CHECK(more.ok());
    EXPECT_FALSE(*more);  // end of file
  }
  // RAII: dropping the handle unlinks the file.
  EXPECT_EQ(spill->live_files(), 0u);
  EXPECT_EQ(spill->files_created(), created_before + 1);
}

// --- Spill triggering ------------------------------------------------------

TEST_F(SpillTest, SortAboveTriggerSpillsBelowTriggerDoesNot) {
  SpillManager* spill = db_.spill_manager();
  ASSERT_NE(spill, nullptr);

  uint64_t before = spill->files_created();
  RunCold(&db_, ExecMode::kRow, 1,
          "SELECT id, pad FROM big ORDER BY val, id");
  EXPECT_GT(spill->files_created(), before) << "full-table sort must spill";
  EXPECT_EQ(spill->live_files(), 0u) << "completed query leaked files";

  before = spill->files_created();
  RunCold(&db_, ExecMode::kRow, 1,
          "SELECT id, pad FROM big WHERE id < 200 ORDER BY val, id");
  EXPECT_EQ(spill->files_created(), before)
      << "200-row sort fits in work_mem and must not spill";
}

TEST_F(SpillTest, JoinAndAggregateSpill) {
  SpillManager* spill = db_.spill_manager();
  ASSERT_NE(spill, nullptr);

  uint64_t before = spill->files_created();
  RunCold(&db_, ExecMode::kRow, 1,
          "SELECT a.id FROM big a JOIN big b ON a.id = b.id");
  EXPECT_GT(spill->files_created(), before)
      << "self-join build side exceeds work_mem and must spill";
  EXPECT_EQ(spill->live_files(), 0u);

  before = spill->files_created();
  RunCold(&db_, ExecMode::kRow, 1,
          "SELECT id, SUM(val) FROM big GROUP BY id");
  EXPECT_GT(spill->files_created(), before)
      << "5000-group aggregate state exceeds work_mem and must spill";
  EXPECT_EQ(spill->live_files(), 0u);

  // The batch engine's aggregate spill is charge-only (the morsel
  // coordinator sees per-morsel totals, not a shared hash table), so the
  // same query creates no files there — but see the parity tests below:
  // its charges still match the row engine's.
  before = spill->files_created();
  RunCold(&db_, ExecMode::kBatch, 1,
          "SELECT id, SUM(val) FROM big GROUP BY id");
  EXPECT_EQ(spill->files_created(), before);
}

// --- Row/batch parity across the spill boundary ----------------------------

TEST_F(SpillTest, SpillingSortMatchesAcrossEngines) {
  ExpectEnginesAgree(&db_, "SELECT id, pad FROM big ORDER BY val, id",
                     kBigRows);
  // And straddle the trigger: the in-memory slice agrees too.
  ExpectEnginesAgree(
      &db_, "SELECT id, pad FROM big WHERE id < 200 ORDER BY val, id", 200);
}

TEST_F(SpillTest, SpillingJoinMatchesAcrossEngines) {
  ExpectEnginesAgree(&db_,
                     "SELECT a.id, b.pad FROM big a JOIN big b "
                     "ON a.id = b.id ORDER BY a.id",
                     kBigRows);
  // Join against the tiny build side stays in memory on the same data.
  ExpectEnginesAgree(&db_,
                     "SELECT b.id, t.tag FROM big b JOIN tiny t "
                     "ON b.grp = t.id WHERE b.id < 100 ORDER BY b.id, t.tag",
                     // grp 0..2 match two tiny rows, 3..36 one; with
                     // grp = id % 37 over id 0..99 that's 109 pairs.
                     109);
}

TEST_F(SpillTest, SpillingAggregateMatchesAcrossEngines) {
  // No ORDER BY: group emission order itself is part of the parity
  // contract (external agg returns groups in first-appearance order).
  ExpectEnginesAgree(&db_,
                     "SELECT id, COUNT(*), SUM(val), MIN(pad) "
                     "FROM big GROUP BY id",
                     kBigRows);
  ExpectEnginesAgree(&db_,
                     "SELECT grp, COUNT(*), SUM(val) FROM big "
                     "WHERE id < 200 GROUP BY grp",
                     37);
}

TEST_F(SpillTest, ParallelBatchBitwiseMatchesSerial) {
  const std::string sql =
      "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp ORDER BY grp";
  const QueryResult serial = RunCold(&db_, ExecMode::kBatch, 1, sql);
  const QueryResult parallel = RunCold(&db_, ExecMode::kBatch, 3, sql);
  EXPECT_EQ(RowStrings(serial), RowStrings(parallel));
  EXPECT_EQ(serial.cpu_seconds, parallel.cpu_seconds);
  EXPECT_EQ(serial.io_seconds, parallel.io_seconds);
  EXPECT_EQ(serial.physical_reads, parallel.physical_reads);
}

// --- VDB_SPILL=off: the charge-only model is bit-identical ------------------

TEST_F(SpillTest, SpillOffDatabaseMatchesBitwise) {
  ::setenv("VDB_SPILL", "off", 1);
  Database off_db;
  ::unsetenv("VDB_SPILL");
  ASSERT_EQ(off_db.spill_manager(), nullptr);
  Populate(&off_db);

  const std::string queries[] = {
      "SELECT id, pad FROM big ORDER BY val, id",
      "SELECT a.id, b.pad FROM big a JOIN big b ON a.id = b.id "
      "ORDER BY a.id",
      "SELECT id, COUNT(*), SUM(val) FROM big GROUP BY id",
  };
  for (const std::string& sql : queries) {
    for (const ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
      const QueryResult with = RunCold(&db_, mode, 1, sql);
      const QueryResult without = RunCold(&off_db, mode, 1, sql);
      EXPECT_EQ(RowStrings(with), RowStrings(without)) << sql;
      // Same engine, same data, spill mechanism on vs off: charges must
      // be *bitwise* equal — that is the charge-parity contract.
      EXPECT_EQ(with.cpu_seconds, without.cpu_seconds) << sql;
      EXPECT_EQ(with.io_seconds, without.io_seconds) << sql;
      EXPECT_EQ(with.physical_reads, without.physical_reads) << sql;
    }
  }
}

// --- Budget aborts release spill files --------------------------------------

TEST_F(SpillTest, BudgetAbortDuringSpillingJoinLeaksNothing) {
  SpillManager* spill = db_.spill_manager();
  ASSERT_NE(spill, nullptr);
  const std::string sql =
      "SELECT a.id, b.val FROM big a JOIN big b ON a.id = b.id";
  // Calibrate: simulated charges are deterministic, so half the full
  // query's CPU bill aborts mid-probe (the 5000-row probe loop polls the
  // budget every 4096 rows, after partitioning already created files).
  const QueryResult full = RunCold(&db_, ExecMode::kRow, 1, sql);

  db_.set_exec_mode(ExecMode::kRow);
  QueryOptions options;
  options.budget.max_cpu_seconds = full.cpu_seconds * 0.5;
  db_.set_query_options(options);
  VDB_CHECK_OK(db_.DropCaches());
  const uint64_t created_before = spill->files_created();
  auto aborted = db_.Execute(sql, vm_);
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsBudgetExceeded())
      << aborted.status().ToString();
  EXPECT_GT(spill->files_created(), created_before)
      << "abort was expected to land after the join started spilling";
  EXPECT_EQ(spill->live_files(), 0u)
      << "aborted query leaked spill files";
  db_.set_query_options(QueryOptions());
}

}  // namespace
}  // namespace vdb::exec
