#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/linalg.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace vdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "Not found: table t");
}

TEST(StatusTest, AllConstructorsMatchPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    VDB_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("value");
    return Status::Internal("bad");
  };
  auto consume = [&](bool ok) -> Result<size_t> {
    VDB_ASSIGN_OR_RETURN(std::string v, produce(ok));
    return v.size();
  };
  ASSERT_TRUE(consume(true).ok());
  EXPECT_EQ(*consume(true), 5u);
  EXPECT_TRUE(consume(false).status().IsInternal());
}

TEST(RandomTest, Deterministic) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RandomTest, ZipfSkewsLow) {
  Random rng(13);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.Zipf(1000, 0.9);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    if (v <= 10) ++low;
  }
  // With theta=0.9 the first 10 ranks carry far more than 1% of the mass.
  EXPECT_GT(low, n / 10);
}

TEST(StringUtilTest, SplitJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUP", "groups"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(EndsWith("ef", "def"));
}

TEST(StringUtilTest, LikeMatchBasics) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "hellO"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(StringUtilTest, LikeMatchBacktracking) {
  // Requires retrying the '%' expansion.
  EXPECT_TRUE(LikeMatch("special requests", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("xxspecialxxrequestsxx", "%special%requests%"));
  EXPECT_FALSE(LikeMatch("requests special", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("aaa", "%a%a%"));
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3ULL << 30), "3.0 GiB");
}

TEST(LinalgTest, SolveIdentity) {
  Matrix a = Matrix::Identity(3);
  auto x = SolveLinearSystem(a, {1.0, 2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 1.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
  EXPECT_DOUBLE_EQ((*x)[2], 3.0);
}

TEST(LinalgTest, SolveGeneral) {
  // 2x + y = 5 ; x - y = 1  => x = 2, y = 1
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = -1;
  auto x = SolveLinearSystem(a, {5.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 1.0, 1e-12);
}

TEST(LinalgTest, SolveNeedsPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  auto x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 4.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LinalgTest, SingularDetected) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_TRUE(x.status().IsInternal());
}

TEST(LinalgTest, ShapeErrors) {
  Matrix a(2, 3);
  EXPECT_TRUE(SolveLinearSystem(a, {1, 2}).status().IsInvalidArgument());
  Matrix b(2, 2);
  EXPECT_TRUE(SolveLinearSystem(b, {1, 2, 3}).status().IsInvalidArgument());
}

TEST(LinalgTest, LeastSquaresRecoversExactSystem) {
  // Overdetermined but consistent: y = 3a + 2b.
  Matrix a(4, 2);
  const double rows[4][2] = {{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a.At(i, 0) = rows[i][0];
    a.At(i, 1) = rows[i][1];
    b[i] = 3.0 * rows[i][0] + 2.0 * rows[i][1];
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-6);
  EXPECT_NEAR((*x)[1], 2.0, 1e-6);
  EXPECT_LT(ResidualRms(a, *x, b), 1e-6);
}

TEST(LinalgTest, LeastSquaresMinimizesNoise) {
  // y = 5x plus symmetric noise; slope estimate stays near 5.
  Matrix a(6, 1);
  std::vector<double> b(6);
  const double noise[6] = {0.1, -0.1, 0.05, -0.05, 0.02, -0.02};
  for (int i = 0; i < 6; ++i) {
    const double x = i + 1;
    a.At(i, 0) = x;
    b[i] = 5.0 * x + noise[i];
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 5.0, 0.02);
}

TEST(LinalgTest, NonNegativeLeastSquaresClampsNegative) {
  // Unconstrained solution has a negative component; NNLS must not.
  Matrix a(3, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  a.At(2, 0) = 0;
  a.At(2, 1) = 1;
  // Target pulls x1 negative: b = (0, 1, -1).
  auto x = NonNegativeLeastSquares(a, {0.0, 1.0, -1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_GE((*x)[0], 0.0);
  EXPECT_GE((*x)[1], 0.0);
}

TEST(LinalgTest, MatrixVectorProducts) {
  Matrix a(2, 3);
  int v = 1;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a.At(r, c) = v++;
  }
  // a = [1 2 3; 4 5 6]
  auto av = a.TimesVector({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(av[0], 6.0);
  EXPECT_DOUBLE_EQ(av[1], 15.0);
  auto atv = a.TransposeTimesVector({1.0, 1.0});
  EXPECT_DOUBLE_EQ(atv[0], 5.0);
  EXPECT_DOUBLE_EQ(atv[1], 7.0);
  EXPECT_DOUBLE_EQ(atv[2], 9.0);
  Matrix ata = a.TransposeTimes(a);
  EXPECT_DOUBLE_EQ(ata.At(0, 0), 17.0);
  EXPECT_DOUBLE_EQ(ata.At(2, 2), 45.0);
}

TEST(ThreadPoolTest, SubmitReturnsValuesThroughFutures) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
  EXPECT_GE(util::ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, RunsTasksOnMultipleThreads) {
  util::ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> started{0};
  std::vector<std::future<void>> futures;
  // Each task waits until all four workers hold a task, proving four
  // distinct threads run concurrently.
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.Submit([&]() {
      started.fetch_add(1);
      while (started.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  util::ThreadPool pool(2);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  EXPECT_EQ(pool.Submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, WaitBlocksUntilQueueAndWorkersIdle) {
  util::ThreadPool pool(4);
  std::atomic<int> completed{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&completed]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      completed.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(completed.load(), 64);
  // Wait on an idle pool returns immediately, and the pool keeps serving.
  pool.Wait();
  EXPECT_EQ(pool.Submit([]() { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotDeadlockWait) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    if (i % 4 == 0) {
      futures.push_back(pool.Submit(
          []() -> void { throw std::runtime_error("task failed"); }));
    } else {
      futures.push_back(pool.Submit([&completed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      }));
    }
  }
  // A throwing task must count as finished: Wait returns instead of
  // waiting forever on a task that unwound, and the queue fully drains.
  pool.Wait();
  EXPECT_EQ(completed.load(), 12);
  int thrown = 0;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (const std::runtime_error&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 4);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> completed{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&completed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, SubmitIsSafeFromManyThreads) {
  util::ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum]() {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([&sum]() { sum.fetch_add(1); }));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(sum.load(), 200);
}

}  // namespace
}  // namespace vdb
