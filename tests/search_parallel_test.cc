// Tests for the thread-safe what-if costing and the parallel design
// search: serial and parallel searches must return bit-identical
// solutions, costing must not mutate database state, the memo cache must
// be concurrency-safe and collision-free at fine grids, and greedy must
// spend only O(n·m) cost-model calls per improvement round.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "calib/grid.h"
#include "calib/store.h"
#include "core/advisor.h"
#include "core/cost_model.h"
#include "core/problem.h"
#include "core/search.h"
#include "core/workload.h"
#include "datagen/calibration_db.h"
#include "datagen/synthetic.h"
#include "exec/database.h"
#include "sim/machine.h"

namespace vdb::core {
namespace {

using sim::ResourceKind;
using sim::ResourceShare;

/// One database with an I/O-heavy and a CPU-heavy table plus the
/// calibration tables, and a calibration store over a CPU x IO grid.
/// Smaller than the core_test fixture: these tests solve many design
/// problems, so keep each Cost evaluation cheap.
class ParallelSearchTest : public ::testing::Test {
 protected:
  static constexpr const char* kIoQuery =
      "select count(*) from wide_table";
  static constexpr const char* kCpuQuery =
      "select count(*) from text_table where s like '%foxes%' and t like "
      "'%haggle%'";

  ParallelSearchTest() {
    machine_ = sim::MachineSpec::PaperTestbed();
    datagen::CalibrationDbConfig cal_config;
    cal_config.base_rows = 1000;
    VDB_CHECK_OK(datagen::GenerateCalibrationDb(db_.catalog(), cal_config));

    using datagen::ColumnSpec;
    using datagen::Distribution;
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    ColumnSpec pad;
    pad.name = "pad";
    pad.type = catalog::TypeId::kString;
    pad.distribution = Distribution::kRandomText;
    pad.string_length = 1500;
    VDB_CHECK_OK(datagen::GenerateTable(db_.catalog(), "wide_table",
                                        {key, pad}, 1500, 21));
    ColumnSpec s;
    s.name = "s";
    s.type = catalog::TypeId::kString;
    s.distribution = Distribution::kRandomText;
    s.string_length = 30;
    ColumnSpec t = s;
    t.name = "t";
    VDB_CHECK_OK(datagen::GenerateTable(db_.catalog(), "text_table",
                                        {key, s, t}, 10000, 22));
    VDB_CHECK_OK(db_.catalog()->AnalyzeAll());

    calib::CalibrationGridSpec spec;
    spec.cpu_shares = {0.15, 0.5, 0.85};
    spec.memory_shares = {0.5};
    spec.io_shares = {0.15, 0.5, 0.85};
    auto store = calib::CalibrateGrid(&db_, machine_,
                                      sim::HypervisorModel::XenLike(), spec);
    VDB_CHECK(store.ok()) << store.status();
    store_ = std::move(*store);
  }

  VirtualizationDesignProblem MakeProblem(
      int num_workloads, std::vector<ResourceKind> controlled,
      int grid_steps) {
    VirtualizationDesignProblem problem;
    problem.machine = machine_;
    for (int i = 0; i < num_workloads; ++i) {
      problem.workloads.push_back(Workload::Repeated(
          i % 2 == 0 ? "io-bound" : "cpu-bound",
          i % 2 == 0 ? kIoQuery : kCpuQuery, 1 + i % 2));
      problem.databases.push_back(&db_);
    }
    problem.controlled = std::move(controlled);
    problem.grid_steps = grid_steps;
    return problem;
  }

  sim::MachineSpec machine_;
  exec::Database db_;
  calib::CalibrationStore store_;
};

void ExpectIdenticalSolutions(const DesignSolution& serial,
                              const DesignSolution& parallel) {
  EXPECT_EQ(serial.total_cost_ms, parallel.total_cost_ms);
  ASSERT_EQ(serial.allocations.size(), parallel.allocations.size());
  for (size_t i = 0; i < serial.allocations.size(); ++i) {
    EXPECT_EQ(serial.allocations[i].cpu, parallel.allocations[i].cpu) << i;
    EXPECT_EQ(serial.allocations[i].memory, parallel.allocations[i].memory)
        << i;
    EXPECT_EQ(serial.allocations[i].io, parallel.allocations[i].io) << i;
  }
}

TEST_F(ParallelSearchTest, ParallelMatchesSerialForAllAlgorithms) {
  for (SearchAlgorithm algorithm :
       {SearchAlgorithm::kExhaustive, SearchAlgorithm::kGreedy,
        SearchAlgorithm::kDynamicProgramming}) {
    VirtualizationDesignProblem problem =
        MakeProblem(2, {ResourceKind::kCpu}, 12);
    WorkloadCostModel serial_cost(&problem, &store_);
    auto serial = SolveDesignProblem(problem, &serial_cost, algorithm,
                                     SearchOptions{1});
    ASSERT_TRUE(serial.ok())
        << SearchAlgorithmName(algorithm) << ": " << serial.status();
    WorkloadCostModel parallel_cost(&problem, &store_);
    auto parallel = SolveDesignProblem(problem, &parallel_cost, algorithm,
                                       SearchOptions{4});
    ASSERT_TRUE(parallel.ok())
        << SearchAlgorithmName(algorithm) << ": " << parallel.status();
    ExpectIdenticalSolutions(*serial, *parallel);
  }
}

TEST_F(ParallelSearchTest, ParallelMatchesSerialTwoResourcesThreeWorkloads) {
  for (SearchAlgorithm algorithm :
       {SearchAlgorithm::kExhaustive, SearchAlgorithm::kGreedy,
        SearchAlgorithm::kDynamicProgramming}) {
    VirtualizationDesignProblem problem =
        MakeProblem(3, {ResourceKind::kCpu, ResourceKind::kIo}, 7);
    WorkloadCostModel serial_cost(&problem, &store_);
    auto serial = SolveDesignProblem(problem, &serial_cost, algorithm,
                                     SearchOptions{1});
    ASSERT_TRUE(serial.ok())
        << SearchAlgorithmName(algorithm) << ": " << serial.status();
    WorkloadCostModel parallel_cost(&problem, &store_);
    auto parallel = SolveDesignProblem(problem, &parallel_cost, algorithm,
                                       SearchOptions{8});
    ASSERT_TRUE(parallel.ok())
        << SearchAlgorithmName(algorithm) << ": " << parallel.status();
    ExpectIdenticalSolutions(*serial, *parallel);
  }
}

TEST_F(ParallelSearchTest, ZeroThreadsMeansHardwareConcurrency) {
  VirtualizationDesignProblem problem =
      MakeProblem(2, {ResourceKind::kCpu}, 10);
  WorkloadCostModel serial_cost(&problem, &store_);
  auto serial = SolveDesignProblem(problem, &serial_cost,
                                   SearchAlgorithm::kGreedy, SearchOptions{1});
  ASSERT_TRUE(serial.ok());
  WorkloadCostModel auto_cost(&problem, &store_);
  auto automatic = SolveDesignProblem(
      problem, &auto_cost, SearchAlgorithm::kGreedy, SearchOptions{0});
  ASSERT_TRUE(automatic.ok());
  ExpectIdenticalSolutions(*serial, *automatic);
}

TEST_F(ParallelSearchTest, WhatIfCostingLeavesOptimizerParamsUntouched) {
  // Regression: WorkloadCostModel::Cost used to leave the database's
  // optimizer parameterized with the last-evaluated allocation, so any
  // later Prepare outside the cost model silently planned under stale
  // what-if params.
  VirtualizationDesignProblem problem =
      MakeProblem(2, {ResourceKind::kCpu}, 10);
  const optimizer::OptimizerParams before = db_.optimizer()->params();
  auto baseline = db_.Prepare(kCpuQuery);
  ASSERT_TRUE(baseline.ok());
  const double baseline_cost = (*baseline)->total_cost_ms;

  WorkloadCostModel cost(&problem, &store_);
  ASSERT_TRUE(cost.Cost(1, ResourceShare(0.2, 0.5, 0.5)).ok());
  ASSERT_TRUE(cost
                  .TotalCost({ResourceShare(0.3, 0.5, 0.5),
                              ResourceShare(0.7, 0.5, 0.5)})
                  .ok());

  const optimizer::OptimizerParams after = db_.optimizer()->params();
  EXPECT_EQ(before.CalibratedVector(), after.CalibratedVector());
  EXPECT_EQ(before.effective_cache_size_pages,
            after.effective_cache_size_pages);
  EXPECT_EQ(before.work_mem_bytes, after.work_mem_bytes);
  // And plans prepared afterwards are costed exactly as before.
  auto replay = db_.Prepare(kCpuQuery);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ((*replay)->total_cost_ms, baseline_cost);
}

TEST_F(ParallelSearchTest, CacheKeysDoNotCollideOnFineGrids) {
  // Regression: the memo key used to quantize shares at 1/1000, so
  // allocations closer than 0.0005 collided and returned the wrong
  // cached cost. 1e-9 resolution separates any realistic grid.
  VirtualizationDesignProblem problem =
      MakeProblem(2, {ResourceKind::kCpu}, 10);
  WorkloadCostModel cost(&problem, &store_);
  ASSERT_TRUE(cost.Cost(1, ResourceShare(0.5000, 0.5, 0.5)).ok());
  ASSERT_TRUE(cost.Cost(1, ResourceShare(0.50042, 0.5, 0.5)).ok());
  EXPECT_EQ(cost.evaluations(), 2u);
  EXPECT_EQ(cost.cache_hits(), 0u);
  // The same share still hits.
  ASSERT_TRUE(cost.Cost(1, ResourceShare(0.50042, 0.5, 0.5)).ok());
  EXPECT_EQ(cost.evaluations(), 2u);
  EXPECT_EQ(cost.cache_hits(), 1u);
}

TEST_F(ParallelSearchTest, ConcurrentCostCallsAgreeAndCacheStaysConsistent) {
  VirtualizationDesignProblem problem =
      MakeProblem(2, {ResourceKind::kCpu}, 10);
  WorkloadCostModel cost(&problem, &store_);
  // Reference values, computed serially.
  std::vector<double> expected;
  for (int s = 1; s <= 9; ++s) {
    auto c = cost.Cost(s % 2, ResourceShare(s / 10.0, 0.5, 0.5));
    ASSERT_TRUE(c.ok());
    expected.push_back(*c);
  }
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cost, &expected, &mismatches, t]() {
      for (int round = 0; round < kRounds; ++round) {
        const int s = 1 + (t + round) % 9;
        auto c = cost.Cost(s % 2, ResourceShare(s / 10.0, 0.5, 0.5));
        if (!c.ok() || *c != expected[s - 1]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Every concurrent call after the serial warm-up was a cache hit.
  EXPECT_EQ(cost.cache_hits(), kThreads * kRounds);
  EXPECT_EQ(cost.evaluations(), 9u);
}

TEST_F(ParallelSearchTest, GreedyIterationCostsLinearCalls) {
  // Regression: greedy used to recompute the per-workload baseline costs
  // inside the innermost move loop — O(n²·m) Cost calls per iteration.
  // Now an iteration batches n baselines plus at most 2·n·m give/receive
  // costs, and the bracketing TotalOf passes add 2·n calls overall.
  VirtualizationDesignProblem problem =
      MakeProblem(3, {ResourceKind::kCpu, ResourceKind::kIo}, 9);
  const uint64_t n = problem.NumWorkloads();
  const uint64_t m = problem.controlled.size();
  WorkloadCostModel cost(&problem, &store_);
  auto solution = SolveDesignProblem(problem, &cost,
                                     SearchAlgorithm::kGreedy);
  ASSERT_TRUE(solution.ok()) << solution.status();
  ASSERT_GT(solution->iterations, 0u);  // equal split is not optimal here
  const uint64_t per_iteration = n + 2 * n * m;
  const uint64_t bound = (solution->iterations + 1) * per_iteration + 2 * n;
  EXPECT_LE(cost.calls(), bound)
      << "greedy issued more than O(n·m) cost-model calls per iteration ("
      << cost.calls() << " calls over " << solution->iterations
      << " iterations)";
}

TEST_F(ParallelSearchTest, LargerExhaustiveInstanceStaysDeterministic) {
  // A wider partition fan-out (13 partitions over 4+ workers) on a
  // three-workload instance; wall-clock speedup itself is asserted by
  // bench_search_algorithms, where each evaluation is expensive enough
  // to dominate the pool overhead.
  VirtualizationDesignProblem problem =
      MakeProblem(3, {ResourceKind::kCpu}, 14);
  WorkloadCostModel serial_cost(&problem, &store_);
  auto serial = SolveDesignProblem(problem, &serial_cost,
                                   SearchAlgorithm::kExhaustive,
                                   SearchOptions{1});
  ASSERT_TRUE(serial.ok());
  WorkloadCostModel parallel_cost(&problem, &store_);
  auto parallel = SolveDesignProblem(problem, &parallel_cost,
                                     SearchAlgorithm::kExhaustive,
                                     SearchOptions{4});
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalSolutions(*serial, *parallel);
  // Both explored the same design space: the parallel run evaluates the
  // same unique keys (plus possible duplicate concurrent misses).
  EXPECT_GE(parallel_cost.evaluations(), serial_cost.evaluations());
}

TEST_F(ParallelSearchTest, SideEffectFreePrepareIsConcurrencySafe) {
  // Many threads running what-if Prepare with different params against
  // one shared database must neither crash (TSan-clean) nor interfere:
  // every thread sees costs consistent with its own params.
  auto p_low = store_.Lookup(ResourceShare(0.15, 0.5, 0.5));
  auto p_high = store_.Lookup(ResourceShare(0.85, 0.5, 0.5));
  ASSERT_TRUE(p_low.ok());
  ASSERT_TRUE(p_high.ok());
  auto low_ref = db_.Prepare(kCpuQuery, *p_low);
  auto high_ref = db_.Prepare(kCpuQuery, *p_high);
  ASSERT_TRUE(low_ref.ok());
  ASSERT_TRUE(high_ref.ok());
  const double low_cost = (*low_ref)->total_cost_ms;
  const double high_cost = (*high_ref)->total_cost_ms;
  ASSERT_NE(low_cost, high_cost);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    const bool low = t % 2 == 0;
    threads.emplace_back([&, low]() {
      const optimizer::OptimizerParams& params = low ? *p_low : *p_high;
      const double expected = low ? low_cost : high_cost;
      for (int round = 0; round < 20; ++round) {
        auto plan = db_.Prepare(kCpuQuery, params);
        if (!plan.ok() || (*plan)->total_cost_ms != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace vdb::core
