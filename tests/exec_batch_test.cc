// Vectorized-engine tests: pins down the Batch/ValueVector representation
// (null maps, selection vectors, empty batches) and cross-checks the
// BatchExecutor against the row-at-a-time Executor on the cases where
// batching is easiest to get wrong — LIMIT 0, LIMIT crossing a batch
// boundary, string payloads crossing batches in Sort and MergeJoin, and
// filters that leave whole batches empty mid-stream.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/batch.h"
#include "catalog/catalog.h"
#include "exec/batch_executor.h"
#include "exec/database.h"
#include "exec/execution_context.h"
#include "exec/executor.h"
#include "optimizer/physical.h"
#include "plan/expr.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb::exec {
namespace {

using catalog::Batch;
using catalog::Column;
using catalog::Schema;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;
using catalog::ValueVector;
using optimizer::PhysMergeJoin;
using optimizer::PhysSeqScan;
using optimizer::PhysSort;
using optimizer::PhysicalNodePtr;
using plan::BinaryBoundExpr;
using plan::BoundExprPtr;
using plan::ColumnExpr;
using plan::ColumnId;
using plan::ConstantExpr;
using plan::MakeLayout;
using plan::OutputColumn;

// --- Representation-level tests -------------------------------------------

// A comparison `col <op> literal` resolved against a single-column layout.
BoundExprPtr Comparison(sql::BinaryOp op, TypeId col_type, Value literal) {
  ColumnId id{0, 0};
  auto expr = std::make_unique<BinaryBoundExpr>(
      op, std::make_unique<ColumnExpr>(id, "c", col_type),
      std::make_unique<ConstantExpr>(std::move(literal)), TypeId::kBool);
  VDB_CHECK_OK(expr->ResolveSlots(
      MakeLayout({OutputColumn{id, "c", col_type}})));
  return expr;
}

TEST(ValueVectorTest, RoundTripAndHashParity) {
  ValueVector v;
  v.Reset(TypeId::kString, 3);
  v.SetString(0, "alpha");
  v.SetNull(1);
  v.SetValue(2, Value::String("omega"));
  EXPECT_EQ(v.GetValue(0), Value::String("alpha"));
  EXPECT_TRUE(v.GetValue(1).is_null());
  EXPECT_EQ(v.GetString(2), "omega");
  EXPECT_EQ(v.HashAt(0), Value::String("alpha").Hash());

  ValueVector ints;
  ints.Reset(TypeId::kInt64, 2);
  ints.SetInt64(0, -7);
  ints.SetNull(1);
  EXPECT_EQ(ints.HashAt(0), Value::Int64(-7).Hash());
  EXPECT_EQ(ints.HashAt(1), Value::Null(TypeId::kInt64).Hash());

  // CopyFrom moves payload and null state together.
  ValueVector dst;
  dst.Reset(TypeId::kInt64, 2);
  dst.CopyFrom(ints, 0, 1);
  dst.CopyFrom(ints, 1, 0);
  EXPECT_TRUE(dst.IsNull(0));
  EXPECT_EQ(dst.GetInt64(1), -7);
}

TEST(BatchTest, EmptyBatchKernelsAreNoops) {
  Batch batch;
  batch.Reset({TypeId::kInt64}, 0);
  batch.SetRowCount(0);
  ASSERT_EQ(batch.NumActive(), 0u);

  BoundExprPtr pred = Comparison(sql::BinaryOp::kGt, TypeId::kInt64,
                                 Value::Int64(5));
  ValueVector out;
  pred->EvaluateBatch(batch, &out);
  EXPECT_EQ(out.size(), 0u);
  pred->FilterBatch(&batch);
  EXPECT_EQ(batch.NumActive(), 0u);
}

TEST(BatchTest, ChainedFiltersShrinkSelectionInPlace) {
  Batch batch;
  batch.Reset({TypeId::kInt64}, 100);
  for (size_t i = 0; i < 100; ++i) {
    batch.columns[0].SetInt64(i, static_cast<int64_t>(i));
  }
  batch.SetRowCount(100);

  Comparison(sql::BinaryOp::kGt, TypeId::kInt64, Value::Int64(10))
      ->FilterBatch(&batch);
  Comparison(sql::BinaryOp::kLt, TypeId::kInt64, Value::Int64(20))
      ->FilterBatch(&batch);

  ASSERT_EQ(batch.NumActive(), 9u);
  // Column data is untouched; only the selection vector shrinks, and it
  // stays in ascending order.
  EXPECT_EQ(batch.num_rows, 100u);
  for (size_t i = 0; i < batch.sel.size(); ++i) {
    EXPECT_EQ(batch.sel[i], 11 + i);
    EXPECT_EQ(batch.RowAsTuple(batch.sel[i])[0], Value::Int64(11 + i));
  }
}

TEST(BatchTest, AllNullColumnComparesToNullAndFiltersEverything) {
  Batch batch;
  batch.Reset({TypeId::kInt64}, 8);
  for (size_t i = 0; i < 8; ++i) batch.columns[0].SetNull(i);
  batch.SetRowCount(8);

  BoundExprPtr pred = Comparison(sql::BinaryOp::kGe, TypeId::kInt64,
                                 Value::Int64(0));
  ValueVector out;
  pred->EvaluateBatch(batch, &out);
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(out.IsNull(i)) << "row " << i;
  }
  // NULL is not true, so the filter drops every row; the empty batch is
  // still structurally valid.
  pred->FilterBatch(&batch);
  EXPECT_EQ(batch.NumActive(), 0u);
  EXPECT_EQ(batch.num_rows, 8u);
}

// --- Engine cross-checks ---------------------------------------------------

// kTableRows > 2 * Batch::kDefaultRows so every streaming operator sees
// multiple batches, including a final partial one.
constexpr int64_t kTableRows = 2600;

class BatchEngineTest : public ::testing::Test {
 protected:
  BatchEngineTest()
      : vm_("vm", sim::MachineSpec::Small(), sim::HypervisorModel::Ideal(),
            sim::ResourceShare(1.0, 1.0, 1.0)) {
    VDB_CHECK_OK(db_.ApplyVmConfig(vm_));
    auto table = db_.catalog()->CreateTable(
        "t", Schema({Column("id", TypeId::kInt64),
                     Column("name", TypeId::kString),
                     Column("grp", TypeId::kInt64),
                     Column("val", TypeId::kDouble)}));
    VDB_CHECK(table.ok());
    table_ = *table;
    for (int64_t id = 0; id < kTableRows; ++id) {
      // Names sort in a different order than ids, and every 7th value is
      // NULL so null handling is exercised in every batch.
      std::string name = "n" + std::to_string(id % 97) + "-" +
                         std::string(1 + id % 5, 'x') +
                         std::to_string(id);
      Value val = (id % 7 == 0) ? Value::Null(TypeId::kDouble)
                                : Value::Double(static_cast<double>(id) / 3);
      VDB_CHECK_OK(db_.catalog()->Insert(
          table_, Tuple{Value::Int64(id), Value::String(std::move(name)),
                        Value::Int64(id % 13), std::move(val)}));
    }
    VDB_CHECK_OK(db_.catalog()->AnalyzeAll());
  }

  // Runs `sql` on both engines and requires identical rows in identical
  // order. Returns the batch engine's rows.
  std::vector<Tuple> RunBoth(const std::string& sql) {
    db_.set_exec_mode(ExecMode::kBatch);
    auto batch = db_.Execute(sql, vm_);
    VDB_CHECK(batch.ok()) << batch.status();
    db_.set_exec_mode(ExecMode::kRow);
    auto row = db_.Execute(sql, vm_);
    VDB_CHECK(row.ok()) << row.status();
    EXPECT_EQ(Render(batch->rows), Render(row->rows)) << "for: " << sql;
    return std::move(batch->rows);
  }

  static std::vector<std::string> Render(const std::vector<Tuple>& rows) {
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Tuple& row : rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.is_null() ? "<null>" : v.ToString();
        line += '|';
      }
      out.push_back(std::move(line));
    }
    return out;
  }

  sim::VirtualMachine vm_;
  Database db_;
  catalog::TableInfo* table_ = nullptr;
};

TEST_F(BatchEngineTest, LimitZeroProducesNoRows) {
  EXPECT_TRUE(RunBoth("SELECT id FROM t LIMIT 0").empty());
  EXPECT_TRUE(RunBoth("SELECT id FROM t ORDER BY name LIMIT 0").empty());
}

TEST_F(BatchEngineTest, LimitCrossingBatchBoundary) {
  // 1500 rows spans one full 1024-row batch plus a partial second one.
  auto rows = RunBoth("SELECT id FROM t LIMIT 1500");
  ASSERT_EQ(rows.size(), 1500u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0], Value::Int64(static_cast<int64_t>(i)));
  }
  // Exactly one batch plus one row.
  EXPECT_EQ(RunBoth("SELECT id FROM t LIMIT 1025").size(), 1025u);
}

TEST_F(BatchEngineTest, LimitChargesMatchRowEngineExactly) {
  // Regression: the batch engine used to deserialize (and charge for) a
  // whole 1024-row batch even when a small LIMIT consumed only a few
  // rows. The capped subtree now runs at the row engine's granularity, so
  // simulated charges agree exactly — not just to a tolerance — on every
  // LIMIT shape, including data-dependent early exits mid-batch.
  // ORDER BY ... LIMIT is absent: the optimizer fuses it into TopN,
  // which both engines run natively (the row engine per row, the batch
  // engine as per-batch lump sums), so it only agrees to float rounding
  // like every other lump-summed operator. Plain LIMIT plans agree
  // exactly.
  const std::vector<std::string> queries = {
      "SELECT id FROM t LIMIT 3",
      "SELECT id FROM t LIMIT 0",
      "SELECT id, val FROM t WHERE grp = 5 LIMIT 7",
      "SELECT grp, COUNT(*) FROM t GROUP BY grp LIMIT 4",
      "SELECT id FROM t LIMIT 1025",
  };
  for (const std::string& sql : queries) {
    db_.set_exec_mode(ExecMode::kBatch);
    VDB_CHECK_OK(db_.DropCaches());
    auto batch = db_.Execute(sql, vm_);
    VDB_CHECK(batch.ok()) << batch.status();
    db_.set_exec_mode(ExecMode::kRow);
    VDB_CHECK_OK(db_.DropCaches());
    auto row = db_.Execute(sql, vm_);
    VDB_CHECK(row.ok()) << row.status();
    EXPECT_EQ(Render(batch->rows), Render(row->rows)) << sql;
    EXPECT_EQ(batch->physical_reads, row->physical_reads) << sql;
    EXPECT_DOUBLE_EQ(batch->cpu_seconds, row->cpu_seconds) << sql;
    EXPECT_DOUBLE_EQ(batch->io_seconds, row->io_seconds) << sql;
    EXPECT_DOUBLE_EQ(batch->elapsed_seconds, row->elapsed_seconds) << sql;
  }
}

TEST_F(BatchEngineTest, EmptyBatchesPropagateThroughTheTree) {
  // Only the tail of the table matches: every earlier batch reaches the
  // filter and leaves it with zero active rows, and downstream operators
  // must keep pulling.
  auto tail = RunBoth("SELECT id FROM t WHERE id >= 2500 ORDER BY id");
  ASSERT_EQ(tail.size(), static_cast<size_t>(kTableRows - 2500));
  EXPECT_EQ(tail.front()[0], Value::Int64(2500));
  // Nothing matches at all.
  EXPECT_TRUE(RunBoth("SELECT id FROM t WHERE val < 0.0").empty());
  // An aggregate over zero rows still yields its one global row.
  auto counted = RunBoth("SELECT COUNT(*) FROM t WHERE val < 0.0");
  ASSERT_EQ(counted.size(), 1u);
  EXPECT_EQ(counted[0][0], Value::Int64(0));
}

TEST_F(BatchEngineTest, SortStringsAcrossBatches) {
  auto rows = RunBoth("SELECT name, id FROM t ORDER BY name, id");
  ASSERT_EQ(rows.size(), static_cast<size_t>(kTableRows));
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][0].AsString(), rows[i][0].AsString())
        << "row " << i;
  }
}

TEST_F(BatchEngineTest, AggregatesWithNullsMatchRowEngine) {
  auto rows = RunBoth(
      "SELECT grp, COUNT(*), SUM(val), MIN(name) FROM t GROUP BY grp "
      "ORDER BY grp");
  EXPECT_EQ(rows.size(), 13u);
  RunBoth("SELECT grp, AVG(val) FROM t GROUP BY grp ORDER BY grp");
}

TEST_F(BatchEngineTest, MergeJoinStringsAcrossBatches) {
  // A self merge-join on the string column: both inputs exceed one batch,
  // so string payloads must survive the sort and the join's row
  // re-emission across batch boundaries.
  auto scan_node = [&](int table_id) {
    auto scan = std::make_unique<PhysSeqScan>();
    scan->table = table_;
    scan->alias = "t" + std::to_string(table_id);
    for (size_t i = 0; i < table_->schema.NumColumns(); ++i) {
      scan->output.push_back(
          OutputColumn{ColumnId{table_id, static_cast<int>(i)},
                       table_->schema.column(i).name,
                       table_->schema.column(i).type});
    }
    return scan;
  };
  auto merge = std::make_unique<PhysMergeJoin>();
  auto left = scan_node(0);
  auto right = scan_node(1);
  auto key_of = [](const optimizer::PhysicalNode& node) {
    const OutputColumn& column = node.output[1];  // name
    return std::make_unique<ColumnExpr>(column.id, column.name, column.type);
  };
  merge->left_key = key_of(*left);
  merge->right_key = key_of(*right);
  merge->output = left->output;
  merge->output.insert(merge->output.end(), right->output.begin(),
                       right->output.end());
  auto sorted = [](PhysicalNodePtr child, const BoundExprPtr& key) {
    auto sort = std::make_unique<PhysSort>();
    PhysSort::Key sort_key;
    sort_key.expr = key->Clone();
    sort->keys.push_back(std::move(sort_key));
    sort->output = child->output;
    sort->children.push_back(std::move(child));
    return sort;
  };
  merge->children.push_back(sorted(std::move(left), merge->left_key));
  merge->children.push_back(sorted(std::move(right), merge->right_key));

  const uint64_t work_mem = 64ull << 20;
  ExecutionContext batch_context(&vm_, db_.buffer_pool(), work_mem);
  BatchExecutor batch_executor(&batch_context);
  auto batch_rows = batch_executor.Run(*merge);
  VDB_CHECK(batch_rows.ok()) << batch_rows.status();

  ExecutionContext row_context(&vm_, db_.buffer_pool(), work_mem);
  Executor row_executor(&row_context);
  auto row_rows = row_executor.Run(*merge);
  VDB_CHECK(row_rows.ok()) << row_rows.status();

  // Names are unique, so the self-join is exactly one row per input row.
  ASSERT_EQ(batch_rows->size(), static_cast<size_t>(kTableRows));
  EXPECT_EQ(Render(*batch_rows), Render(*row_rows));
  for (const Tuple& row : *batch_rows) {
    EXPECT_EQ(row[1], row[5]);  // joined on name
    EXPECT_EQ(row[0], row[4]);  // names are unique, so ids agree too
  }
}

}  // namespace
}  // namespace vdb::exec
