#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/resources.h"
#include "sim/sim_clock.h"
#include "sim/virtual_machine.h"
#include "sim/vmm.h"

namespace vdb::sim {
namespace {

TEST(ResourceShareTest, ValidateAcceptsUnitRange) {
  EXPECT_TRUE(ResourceShare(0.5, 0.5, 0.5).Validate().ok());
  EXPECT_TRUE(ResourceShare(1.0, 1.0, 1.0).Validate().ok());
  EXPECT_TRUE(ResourceShare(0.01, 1.0, 0.3).Validate().ok());
}

TEST(ResourceShareTest, ValidateRejectsOutOfRange) {
  EXPECT_FALSE(ResourceShare(0.0, 0.5, 0.5).Validate().ok());
  EXPECT_FALSE(ResourceShare(0.5, 1.5, 0.5).Validate().ok());
  EXPECT_FALSE(ResourceShare(0.5, 0.5, -0.1).Validate().ok());
}

TEST(ResourceShareTest, GetSetRoundTrip) {
  ResourceShare share;
  share.Set(ResourceKind::kCpu, 0.25);
  share.Set(ResourceKind::kMemory, 0.5);
  share.Set(ResourceKind::kIo, 0.75);
  EXPECT_DOUBLE_EQ(share.Get(ResourceKind::kCpu), 0.25);
  EXPECT_DOUBLE_EQ(share.Get(ResourceKind::kMemory), 0.5);
  EXPECT_DOUBLE_EQ(share.Get(ResourceKind::kIo), 0.75);
}

TEST(ResourceShareTest, EqualSplit) {
  const ResourceShare share = ResourceShare::EqualSplit(4);
  EXPECT_DOUBLE_EQ(share.cpu, 0.25);
  EXPECT_DOUBLE_EQ(share.memory, 0.25);
  EXPECT_DOUBLE_EQ(share.io, 0.25);
}

TEST(VirtualMachineTest, FullShareIdealHypervisorMatchesMachine) {
  const MachineSpec machine = MachineSpec::PaperTestbed();
  VirtualMachine vm("vm", machine, HypervisorModel::Ideal(),
                    ResourceShare(1.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(vm.EffectiveCpuOpsPerSec(), machine.cpu_ops_per_sec);
  EXPECT_EQ(vm.MemoryBytes(), machine.memory_bytes);
}

TEST(VirtualMachineTest, CpuScalesWithShare) {
  const MachineSpec machine = MachineSpec::PaperTestbed();
  VirtualMachine half("a", machine, HypervisorModel::Ideal(),
                      ResourceShare(0.5, 1.0, 1.0));
  VirtualMachine quarter("b", machine, HypervisorModel::Ideal(),
                         ResourceShare(0.25, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(half.EffectiveCpuOpsPerSec(),
                   0.5 * machine.cpu_ops_per_sec);
  EXPECT_DOUBLE_EQ(quarter.EffectiveCpuOpsPerSec(),
                   0.25 * machine.cpu_ops_per_sec);
}

TEST(VirtualMachineTest, OverheadGrowsAsShareShrinks) {
  const MachineSpec machine = MachineSpec::PaperTestbed();
  const HypervisorModel xen = HypervisorModel::XenLike();
  VirtualMachine big("a", machine, xen, ResourceShare(0.75, 0.5, 0.5));
  VirtualMachine small("b", machine, xen, ResourceShare(0.25, 0.5, 0.5));
  EXPECT_GT(small.CpuOverheadFraction(), big.CpuOverheadFraction());
  // Effective rate is still monotone in the share.
  EXPECT_GT(big.EffectiveCpuOpsPerSec(), small.EffectiveCpuOpsPerSec());
  // And sub-proportional: half the share of a 3x bigger slice yields less
  // than 3x the rate... (the small VM gets less per share unit).
  EXPECT_LT(small.EffectiveCpuOpsPerSec() / 0.25,
            big.EffectiveCpuOpsPerSec() / 0.75);
}

TEST(VirtualMachineTest, IoTimesScaleInverselyWithShare) {
  const MachineSpec machine = MachineSpec::PaperTestbed();
  VirtualMachine full("a", machine, HypervisorModel::Ideal(),
                      ResourceShare(1.0, 1.0, 1.0));
  VirtualMachine half("b", machine, HypervisorModel::Ideal(),
                      ResourceShare(1.0, 1.0, 0.5));
  EXPECT_NEAR(half.SeqReadSecondsPerPage(8192),
              2.0 * full.SeqReadSecondsPerPage(8192), 1e-12);
  EXPECT_NEAR(half.RandomReadSeconds(), 2.0 * full.RandomReadSeconds(),
              1e-12);
  EXPECT_NEAR(half.WriteSecondsPerPage(8192),
              2.0 * full.WriteSecondsPerPage(8192), 1e-12);
}

TEST(VirtualMachineTest, RandomReadSlowerThanSequential) {
  const MachineSpec machine = MachineSpec::PaperTestbed();
  VirtualMachine vm("a", machine, HypervisorModel::XenLike(),
                    ResourceShare(0.5, 0.5, 0.5));
  EXPECT_GT(vm.RandomReadSeconds(), vm.SeqReadSecondsPerPage(8192));
}

TEST(VmmTest, CreateAndLookup) {
  VirtualMachineMonitor vmm(MachineSpec::Small());
  auto vm = vmm.CreateVm("db1", ResourceShare(0.5, 0.5, 0.5));
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ((*vm)->name(), "db1");
  auto found = vmm.GetVm("db1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *vm);
  EXPECT_TRUE(vmm.GetVm("nope").status().IsNotFound());
}

TEST(VmmTest, RejectsDuplicateNames) {
  VirtualMachineMonitor vmm(MachineSpec::Small());
  ASSERT_TRUE(vmm.CreateVm("db1", ResourceShare(0.3, 0.3, 0.3)).ok());
  EXPECT_TRUE(vmm.CreateVm("db1", ResourceShare(0.3, 0.3, 0.3))
                  .status()
                  .IsAlreadyExists());
}

TEST(VmmTest, RejectsOversubscription) {
  VirtualMachineMonitor vmm(MachineSpec::Small());
  ASSERT_TRUE(vmm.CreateVm("a", ResourceShare(0.6, 0.5, 0.5)).ok());
  auto second = vmm.CreateVm("b", ResourceShare(0.6, 0.5, 0.5));
  EXPECT_TRUE(second.status().IsResourceExhausted());
  // But a fitting VM is fine.
  EXPECT_TRUE(vmm.CreateVm("c", ResourceShare(0.4, 0.5, 0.5)).ok());
}

TEST(VmmTest, ExactFullAllocationAllowed) {
  VirtualMachineMonitor vmm(MachineSpec::Small());
  const ResourceShare third(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0);
  EXPECT_TRUE(vmm.CreateVm("a", third).ok());
  EXPECT_TRUE(vmm.CreateVm("b", third).ok());
  EXPECT_TRUE(vmm.CreateVm("c", third).ok());
  EXPECT_NEAR(vmm.AllocatedShare(ResourceKind::kCpu), 1.0, 1e-9);
}

TEST(VmmTest, SetShareDynamicReconfiguration) {
  VirtualMachineMonitor vmm(MachineSpec::Small());
  auto a = vmm.CreateVm("a", ResourceShare(0.5, 0.5, 0.5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(vmm.CreateVm("b", ResourceShare(0.5, 0.5, 0.5)).ok());
  // Growing `a` beyond the free pool fails.
  EXPECT_TRUE(
      vmm.SetShare("a", ResourceShare(0.6, 0.5, 0.5)).IsResourceExhausted());
  // Shrinking then growing the other works.
  EXPECT_TRUE(vmm.SetShare("a", ResourceShare(0.25, 0.5, 0.5)).ok());
  EXPECT_TRUE(vmm.SetShare("b", ResourceShare(0.75, 0.5, 0.5)).ok());
  EXPECT_DOUBLE_EQ((*a)->share().cpu, 0.25);
}

TEST(VmmTest, DestroyReleasesShares) {
  VirtualMachineMonitor vmm(MachineSpec::Small());
  ASSERT_TRUE(vmm.CreateVm("a", ResourceShare(0.9, 0.9, 0.9)).ok());
  EXPECT_TRUE(vmm.CreateVm("b", ResourceShare(0.2, 0.2, 0.2))
                  .status()
                  .IsResourceExhausted());
  ASSERT_TRUE(vmm.DestroyVm("a").ok());
  EXPECT_TRUE(vmm.CreateVm("b", ResourceShare(0.2, 0.2, 0.2)).ok());
  EXPECT_TRUE(vmm.DestroyVm("a").IsNotFound());
}

TEST(VmmTest, VmsListsInCreationOrder) {
  VirtualMachineMonitor vmm(MachineSpec::Small());
  ASSERT_TRUE(vmm.CreateVm("a", ResourceShare(0.2, 0.2, 0.2)).ok());
  ASSERT_TRUE(vmm.CreateVm("b", ResourceShare(0.2, 0.2, 0.2)).ok());
  auto vms = vmm.Vms();
  ASSERT_EQ(vms.size(), 2u);
  EXPECT_EQ(vms[0]->name(), "a");
  EXPECT_EQ(vms[1]->name(), "b");
}

TEST(SimClockTest, AdvancesAndIgnoresNegative) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 0.0);
  clock.Advance(1.5);
  clock.Advance(-2.0);
  clock.Advance(0.5);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 2.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 0.0);
}

// Property sweep: effective CPU rate is monotonically increasing in the CPU
// share for any hypervisor overhead configuration we use.
class CpuMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(CpuMonotonicityTest, EffectiveRateMonotoneInShare) {
  const MachineSpec machine = MachineSpec::PaperTestbed();
  HypervisorModel hyp = HypervisorModel::XenLike();
  hyp.cpu_share_overhead_slope = GetParam();
  double prev = 0.0;
  for (double share = 0.05; share <= 1.0; share += 0.05) {
    VirtualMachine vm("x", machine, hyp, ResourceShare(share, 0.5, 0.5));
    const double rate = vm.EffectiveCpuOpsPerSec();
    EXPECT_GT(rate, prev) << "share=" << share;
    prev = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(OverheadSlopes, CpuMonotonicityTest,
                         ::testing::Values(0.0, 0.05, 0.10, 0.20, 0.40));

}  // namespace
}  // namespace vdb::sim
