// Golden tests for the three reproduced paper figures. Each test replays
// the corresponding bench recipe (bench/bench_fig{3,4,5}_*.cc) in-process
// and asserts the exact headline numbers documented in EXPERIMENTS.md.
// The simulated executor is deterministic, so these values are stable
// across machines; the tolerances only absorb the rounding used in the
// documentation. A drift here means the *model* changed, not the machine.
//
// These tests take tens of seconds each and carry the `slow` ctest label;
// the tier-1 suite (`ctest -L tier1`) excludes them.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "calib/calibration.h"
#include "calib/grid.h"
#include "core/advisor.h"
#include "datagen/tpch_queries.h"

namespace vdb {
namespace {

// EXPERIMENTS.md documents the golden values to four decimal places.
constexpr double kTol = 5e-4;

TEST(FiguresGolden, Fig3CalibrationSensitivity) {
  auto db = bench::MakeCalibrationDatabase();
  const sim::MachineSpec machine = bench::ScaledMemoryMachine();
  calib::Calibrator calibrator(db.get());

  // The full 3x3 grid in the bench's iteration order: the calibration
  // database carries cache state between calls, so the measured values
  // (and the golden ratios) depend on it.
  const double shares[] = {0.25, 0.50, 0.75};
  double tuple_ms[3][3];
  for (int m = 0; m < 3; ++m) {
    for (int c = 0; c < 3; ++c) {
      sim::VirtualMachine vm = bench::MakeVm(machine, shares[c], shares[m],
                                             0.5);
      auto result = calibrator.Calibrate(vm);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      tuple_ms[m][c] = result->params.cpu_tuple_cost;
    }
  }

  const double cpu_effect = tuple_ms[1][0] / tuple_ms[1][2];
  const double mem_effect = tuple_ms[0][1] / tuple_ms[2][1];
  EXPECT_NEAR(cpu_effect, 2.2505, kTol);
  EXPECT_NEAR(mem_effect, 3.5666, kTol);
  // The paper's qualitative claim (figure-3 "shape").
  EXPECT_GT(cpu_effect, 1.5);
  EXPECT_GT(mem_effect, 1.05);
}

TEST(FiguresGolden, Fig4QuerySensitivity) {
  const sim::MachineSpec machine = bench::ExperimentMachine();

  // Offline: calibrate P(R) over the CPU grid.
  auto calibration_db = bench::MakeCalibrationDatabase();
  calib::CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.50, 0.75};
  spec.memory_shares = {0.50};
  spec.io_shares = {0.50};
  auto store = calib::CalibrateGrid(calibration_db.get(), machine,
                                    sim::HypervisorModel::XenLike(), spec);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  calibration_db.reset();

  auto db = bench::MakeTpchDatabase();
  const double shares[] = {0.25, 0.50, 0.75};
  const int queries[] = {4, 13};
  double estimated[2][3];
  double actual[2][3];
  for (int q = 0; q < 2; ++q) {
    auto sql = datagen::TpchQuery(queries[q]);
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    for (int c = 0; c < 3; ++c) {
      sim::VirtualMachine vm = bench::MakeVm(machine, shares[c], 0.5, 0.5);
      auto params = store->Lookup(vm.share());
      ASSERT_TRUE(params.ok()) << params.status().ToString();
      ASSERT_TRUE(db->ApplyVmConfig(vm).ok());
      db->SetOptimizerParams(*params);
      auto plan = db->Prepare(*sql);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      estimated[q][c] = (*plan)->total_cost_ms / 1000.0;
      ASSERT_TRUE(db->DropCaches().ok());
      auto result = db->ExecutePlan(**plan, vm);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      actual[q][c] = result->elapsed_seconds;
    }
  }

  const double q4_actual_swing = actual[0][0] / actual[0][2];
  const double q13_actual_swing = actual[1][0] / actual[1][2];
  const double q4_estimated_swing = estimated[0][0] / estimated[0][2];
  const double q13_estimated_swing = estimated[1][0] / estimated[1][2];
  EXPECT_NEAR(q4_actual_swing, 1.2291, kTol);
  EXPECT_NEAR(q13_actual_swing, 2.0563, kTol);
  EXPECT_NEAR(q4_estimated_swing, 1.2112, kTol);
  EXPECT_NEAR(q13_estimated_swing, 2.0353, kTol);
  // Figure-4 shape: Q13 is CPU-sensitive, Q4 is not, and the estimates
  // separate the two.
  EXPECT_GT(q13_actual_swing, 1.7);
  EXPECT_LT(q4_actual_swing, 1.35);
  EXPECT_GT(q13_estimated_swing, 1.5 * q4_estimated_swing);
}

TEST(FiguresGolden, Fig5WorkloadDesign) {
  const sim::MachineSpec machine = bench::ExperimentMachine();

  auto calibration_db = bench::MakeCalibrationDatabase();
  calib::CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.375, 0.50, 0.625, 0.75};
  spec.memory_shares = {0.50};
  spec.io_shares = {0.50};
  auto store = calib::CalibrateGrid(calibration_db.get(), machine,
                                    sim::HypervisorModel::XenLike(), spec);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  calibration_db.reset();

  auto db1 = bench::MakeTpchDatabase();
  auto db2 = bench::MakeTpchDatabase();
  core::VirtualizationDesignProblem problem;
  problem.machine = machine;
  problem.workloads = {
      core::Workload::Repeated("W1 (3 x Q4)", *datagen::TpchQuery(4), 3),
      core::Workload::Repeated("W2 (9 x Q13)", *datagen::TpchQuery(13), 9)};
  problem.databases = {db1.get(), db2.get()};
  problem.controlled = {sim::ResourceKind::kCpu};
  problem.grid_steps = 4;

  core::Advisor advisor(&*store);
  auto recommended = advisor.Recommend(problem);
  ASSERT_TRUE(recommended.ok()) << recommended.status().ToString();
  // The advisor must pick the paper's skewed 25/75 split from estimates
  // alone.
  EXPECT_DOUBLE_EQ(recommended->allocations[1].cpu, 0.75);

  core::Advisor::MeasureOptions options;
  options.cold_per_statement = true;
  const std::vector<sim::ResourceShare> equal_split = {
      sim::ResourceShare(0.50, 0.5, 0.5), sim::ResourceShare(0.50, 0.5, 0.5)};
  const std::vector<sim::ResourceShare> skewed = {
      sim::ResourceShare(0.25, 0.5, 0.5), sim::ResourceShare(0.75, 0.5, 0.5)};
  auto equal_outcome = core::Advisor::Measure(problem, equal_split, options);
  auto skewed_outcome = core::Advisor::Measure(problem, skewed, options);
  ASSERT_TRUE(equal_outcome.ok()) << equal_outcome.status().ToString();
  ASSERT_TRUE(skewed_outcome.ok()) << skewed_outcome.status().ToString();

  const double q13_gain = 1.0 - skewed_outcome->workload_seconds[1] /
                                    equal_outcome->workload_seconds[1];
  const double q4_loss = skewed_outcome->workload_seconds[0] /
                             equal_outcome->workload_seconds[0] -
                         1.0;
  EXPECT_NEAR(q13_gain, 0.2086, kTol);
  EXPECT_NEAR(q4_loss, 0.1626, kTol);
  // Figure-5 shape: the skewed design wins overall.
  EXPECT_GT(q13_gain, 0.15);
  EXPECT_LT(q4_loss, 0.25);
  EXPECT_LT(skewed_outcome->total_seconds, equal_outcome->total_seconds);
}

}  // namespace
}  // namespace vdb
