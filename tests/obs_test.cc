#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

// Allocation probe for the disabled-mode zero-allocation guarantee
// (DESIGN.md §9): every operator new in this binary bumps a counter that
// tests sample around a critical region.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vdb::obs {
namespace {

TEST(CounterTest, DisabledByDefault) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  ASSERT_NE(counter, nullptr);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 0u);
}

TEST(CounterTest, CountsWhenEnabled) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* counter = registry.GetCounter("c");
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(CounterTest, SameNameSamePointer) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("c"), registry.GetCounter("c"));
  EXPECT_NE(registry.GetCounter("c"), registry.GetCounter("d"));
}

TEST(CounterTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("m"), nullptr);
  EXPECT_EQ(registry.GetGauge("m"), nullptr);
  EXPECT_EQ(registry.GetHistogram("m"), nullptr);
  ASSERT_NE(registry.GetGauge("g"), nullptr);
  EXPECT_EQ(registry.GetCounter("g"), nullptr);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);
  gauge->Add(1.25);
  gauge->Add(-0.75);
  EXPECT_DOUBLE_EQ(gauge->value(), 3.0);

  registry.set_enabled(false);
  gauge->Set(99.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 3.0);
}

TEST(HistogramTest, CountSumMinMax) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  h->RecordNanos(1000);       // 1 us
  h->RecordNanos(1000000);    // 1 ms
  h->RecordSeconds(0.5);      // 500 ms
  EXPECT_EQ(h->count(), 3u);
  EXPECT_NEAR(h->sum_seconds(), 0.501001, 1e-9);
  EXPECT_NEAR(h->min_seconds(), 1e-6, 1e-12);
  EXPECT_NEAR(h->max_seconds(), 0.5, 1e-9);
}

TEST(HistogramTest, QuantilesWithinBucketResolution) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  // 90 fast samples at ~1 us, 10 slow at ~1 ms: p50 must sit in the fast
  // band, p99 in the slow band. Buckets are power-of-two, so allow 2x.
  for (int i = 0; i < 90; ++i) h->RecordNanos(1000);
  for (int i = 0; i < 10; ++i) h->RecordNanos(1000000);
  const double p50 = h->QuantileSeconds(0.50);
  const double p99 = h->QuantileSeconds(0.99);
  EXPECT_GE(p50, 0.5e-6);
  EXPECT_LE(p50, 2e-6);
  EXPECT_GE(p99, 0.5e-3);
  EXPECT_LE(p99, 2e-3);
  EXPECT_LE(h->QuantileSeconds(0.0), p50);
  EXPECT_GE(h->QuantileSeconds(1.0), p99);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->QuantileSeconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h->max_seconds(), 0.0);
}

TEST(ScopedTimerTest, RecordsWhenEnabled) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("span");
  { ScopedTimer timer(h); }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GE(h->max_seconds(), 0.0);
}

TEST(ScopedTimerTest, NoOpWhenDisabledOrNull) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span");
  { ScopedTimer timer(h); }
  { ScopedTimer timer(nullptr); }
  EXPECT_EQ(h->count(), 0u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsPointers) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  counter->Add(7);
  gauge->Set(1.5);
  h->RecordNanos(500);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c"), counter);
  EXPECT_EQ(registry.GetGauge("g"), gauge);
  EXPECT_EQ(registry.GetHistogram("h"), h);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  counter->Add(3);
  EXPECT_EQ(counter->value(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* counter = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        h->RecordNanos(static_cast<uint64_t>(t * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h->min_seconds(), 1e-9, 1e-15);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        registry.GetCounter("shared." + std::to_string(i % 10))->Add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  uint64_t total = 0;
  for (const auto& [name, value] : registry.Snapshot().counters) {
    total += value;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 100);
}

TEST(MetricsRegistryTest, DisabledOperationsDoNotAllocate) {
  MetricsRegistry registry;  // disabled
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter->Add();
    gauge->Set(static_cast<double>(i));
    h->RecordNanos(123);
    ScopedTimer timer(h);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(MetricsRegistryTest, EnabledRecordingDoesNotAllocate) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* counter = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h");
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter->Add();
    h->RecordNanos(static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("cost_model.probes")->Add(12345);
  registry.GetCounter("search.iterations")->Add(7);
  registry.GetGauge("calib.residual_rms_ms")->Set(0.125);
  Histogram* h = registry.GetHistogram("search.greedy.wall_time");
  for (int i = 0; i < 100; ++i) h->RecordNanos(1000 * (i + 1));

  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json = snapshot.ToJson();

  MetricsSnapshot parsed;
  std::string error;
  ASSERT_TRUE(MetricsSnapshot::FromJson(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.counters, snapshot.counters);
  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_NEAR(parsed.gauges.at("calib.residual_rms_ms"), 0.125, 1e-12);
  ASSERT_EQ(parsed.histograms.size(), 1u);
  const HistogramSample& a =
      snapshot.histograms.at("search.greedy.wall_time");
  const HistogramSample& b =
      parsed.histograms.at("search.greedy.wall_time");
  EXPECT_EQ(b.count, a.count);
  EXPECT_NEAR(b.sum_seconds, a.sum_seconds, 1e-12);
  EXPECT_NEAR(b.min_seconds, a.min_seconds, 1e-12);
  EXPECT_NEAR(b.max_seconds, a.max_seconds, 1e-12);
  EXPECT_NEAR(b.p50_seconds, a.p50_seconds, 1e-12);
  EXPECT_NEAR(b.p95_seconds, a.p95_seconds, 1e-12);
  EXPECT_NEAR(b.p99_seconds, a.p99_seconds, 1e-12);
}

TEST(SnapshotTest, SingleLineJsonRoundTrip) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("c")->Add(3);
  const std::string json = registry.ToJson(-1);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  MetricsSnapshot parsed;
  std::string error;
  ASSERT_TRUE(MetricsSnapshot::FromJson(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.counters.at("c"), 3u);
}

TEST(SnapshotTest, EmptyRegistryRoundTrip) {
  MetricsRegistry registry;
  MetricsSnapshot parsed;
  std::string error;
  ASSERT_TRUE(MetricsSnapshot::FromJson(registry.ToJson(), &parsed, &error))
      << error;
  EXPECT_TRUE(parsed.counters.empty());
  EXPECT_TRUE(parsed.gauges.empty());
  EXPECT_TRUE(parsed.histograms.empty());
}

TEST(SnapshotTest, FromJsonRejectsMalformedInput) {
  MetricsSnapshot parsed;
  std::string error;
  EXPECT_FALSE(MetricsSnapshot::FromJson("", &parsed, &error));
  EXPECT_FALSE(MetricsSnapshot::FromJson("{", &parsed, &error));
  EXPECT_FALSE(MetricsSnapshot::FromJson("[]", &parsed, &error));
  EXPECT_FALSE(MetricsSnapshot::FromJson(
      R"({"counters": {"c": "not-a-number"}})", &parsed, &error));
  EXPECT_FALSE(MetricsSnapshot::FromJson(
      R"({"histograms": {"h": {"bogus_field": 1}}})", &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace vdb::obs
