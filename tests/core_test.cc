#include <gtest/gtest.h>

#include "calib/grid.h"
#include "calib/store.h"
#include "core/advisor.h"
#include "core/cost_model.h"
#include "core/dynamic.h"
#include "core/problem.h"
#include "core/search.h"
#include "core/workload.h"
#include "datagen/calibration_db.h"
#include "datagen/synthetic.h"
#include "exec/database.h"
#include "sim/machine.h"

namespace vdb::core {
namespace {

using sim::ResourceKind;
using sim::ResourceShare;

/// Shared fixture: one database holding the calibration tables plus an
/// I/O-heavy table (wide rows, scanned cold) and a CPU-heavy table (many
/// rows, LIKE-filtered); a calibration store over a CPU x IO grid.
class DesignTestBase : public ::testing::Test {
 protected:
  static constexpr const char* kIoQuery =
      "select count(*) from wide_table";
  static constexpr const char* kCpuQuery =
      "select count(*) from text_table where s like '%foxes%' and s like "
      "'%beans%' and t like '%haggle%'";

  DesignTestBase() {
    machine_ = sim::MachineSpec::PaperTestbed();
    datagen::CalibrationDbConfig cal_config;
    cal_config.base_rows = 2000;
    VDB_CHECK_OK(datagen::GenerateCalibrationDb(db_.catalog(), cal_config));

    using datagen::ColumnSpec;
    using datagen::Distribution;
    // Wide rows: few tuples, many pages -> I/O-bound cold scans.
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    ColumnSpec pad;
    pad.name = "pad";
    pad.type = catalog::TypeId::kString;
    pad.distribution = Distribution::kRandomText;
    pad.string_length = 2000;
    VDB_CHECK_OK(datagen::GenerateTable(db_.catalog(), "wide_table",
                                        {key, pad}, 4000, 21));
    // Narrow rows with text predicates -> CPU-bound scans.
    ColumnSpec s;
    s.name = "s";
    s.type = catalog::TypeId::kString;
    s.distribution = Distribution::kRandomText;
    s.string_length = 30;
    ColumnSpec t = s;
    t.name = "t";
    VDB_CHECK_OK(datagen::GenerateTable(db_.catalog(), "text_table",
                                        {key, s, t}, 30000, 22));
    VDB_CHECK_OK(db_.catalog()->AnalyzeAll());

    calib::CalibrationGridSpec spec;
    spec.cpu_shares = {0.15, 0.25, 0.5, 0.75, 0.85};
    spec.memory_shares = {0.5};
    spec.io_shares = {0.15, 0.25, 0.5, 0.75, 0.85};
    auto store = calib::CalibrateGrid(&db_, machine_,
                                      sim::HypervisorModel::XenLike(), spec);
    VDB_CHECK(store.ok()) << store.status();
    store_ = std::move(*store);
  }

  VirtualizationDesignProblem TwoWorkloadProblem(
      std::vector<ResourceKind> controlled = {ResourceKind::kCpu}) {
    VirtualizationDesignProblem problem;
    problem.machine = machine_;
    problem.workloads = {Workload::Repeated("io-bound", kIoQuery, 2),
                         Workload::Repeated("cpu-bound", kCpuQuery, 2)};
    problem.databases = {&db_, &db_};
    problem.controlled = std::move(controlled);
    problem.grid_steps = 10;
    return problem;
  }

  sim::MachineSpec machine_;
  exec::Database db_;
  calib::CalibrationStore store_;
};

class DesignSolverTest : public DesignTestBase {};

TEST_F(DesignSolverTest, ValidateCatchesBadProblems) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  EXPECT_TRUE(problem.Validate().ok());
  problem.databases.pop_back();
  EXPECT_TRUE(problem.Validate().IsInvalidArgument());
  problem = TwoWorkloadProblem();
  problem.grid_steps = 1;
  EXPECT_TRUE(problem.Validate().IsInvalidArgument());
  problem = TwoWorkloadProblem();
  problem.controlled.clear();
  EXPECT_TRUE(problem.Validate().IsInvalidArgument());
}

TEST_F(DesignSolverTest, CostModelMonotoneInCpuForCpuBoundWork) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  WorkloadCostModel cost(&problem, &store_);
  // CPU-bound workload (index 1) gets cheaper with more CPU.
  auto low = cost.Cost(1, ResourceShare(0.25, 0.5, 0.5));
  auto high = cost.Cost(1, ResourceShare(0.75, 0.5, 0.5));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(*low, 2.0 * *high);
  // I/O-bound workload (index 0) barely cares about CPU.
  auto io_low = cost.Cost(0, ResourceShare(0.25, 0.5, 0.5));
  auto io_high = cost.Cost(0, ResourceShare(0.75, 0.5, 0.5));
  ASSERT_TRUE(io_low.ok());
  ASSERT_TRUE(io_high.ok());
  EXPECT_LT(*io_low, 1.5 * *io_high);
}

TEST_F(DesignSolverTest, CostModelMemoizes) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  WorkloadCostModel cost(&problem, &store_);
  ASSERT_TRUE(cost.Cost(0, ResourceShare(0.5, 0.5, 0.5)).ok());
  const uint64_t evals = cost.evaluations();
  ASSERT_TRUE(cost.Cost(0, ResourceShare(0.5, 0.5, 0.5)).ok());
  EXPECT_EQ(cost.evaluations(), evals);
  EXPECT_EQ(cost.cache_hits(), 1u);
}

TEST_F(DesignSolverTest, AllSearchersProduceFeasibleDesigns) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  for (SearchAlgorithm algorithm :
       {SearchAlgorithm::kExhaustive, SearchAlgorithm::kGreedy,
        SearchAlgorithm::kDynamicProgramming}) {
    WorkloadCostModel cost(&problem, &store_);
    auto solution = SolveDesignProblem(problem, &cost, algorithm);
    ASSERT_TRUE(solution.ok())
        << SearchAlgorithmName(algorithm) << ": " << solution.status();
    ASSERT_EQ(solution->allocations.size(), 2u);
    double cpu_total = 0.0;
    for (const ResourceShare& share : solution->allocations) {
      EXPECT_GE(share.cpu, 0.1 - 1e-9);  // at least one unit of 10
      cpu_total += share.cpu;
      EXPECT_DOUBLE_EQ(share.memory, 0.5);  // uncontrolled: equal split
      EXPECT_DOUBLE_EQ(share.io, 0.5);
    }
    EXPECT_NEAR(cpu_total, 1.0, 1e-9);
    EXPECT_GT(solution->evaluations, 0u);
  }
}

TEST_F(DesignSolverTest, DpMatchesExhaustiveOptimum) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  WorkloadCostModel cost(&problem, &store_);
  auto exhaustive =
      SolveDesignProblem(problem, &cost, SearchAlgorithm::kExhaustive);
  auto dp = SolveDesignProblem(problem, &cost,
                               SearchAlgorithm::kDynamicProgramming);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(dp.ok());
  EXPECT_NEAR(dp->total_cost_ms, exhaustive->total_cost_ms, 1e-6);
}

TEST_F(DesignSolverTest, GreedyNoWorseThanEqualSplit) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  WorkloadCostModel cost(&problem, &store_);
  auto greedy = SolveDesignProblem(problem, &cost, SearchAlgorithm::kGreedy);
  ASSERT_TRUE(greedy.ok());
  auto equal_cost = cost.TotalCost(EqualSplitSolution(problem).allocations);
  ASSERT_TRUE(equal_cost.ok());
  EXPECT_LE(greedy->total_cost_ms, *equal_cost + 1e-9);
}

TEST_F(DesignSolverTest, RecommendationShiftsCpuTowardsCpuBoundWorkload) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  Advisor advisor(&store_);
  auto solution = advisor.Recommend(problem);
  ASSERT_TRUE(solution.ok()) << solution.status();
  // Workload 1 is CPU-bound; it should receive more than half the CPU.
  EXPECT_GT(solution->allocations[1].cpu, 0.5);
  EXPECT_LT(solution->allocations[0].cpu, 0.5);
}

TEST_F(DesignSolverTest, RecommendedDesignBeatsEqualSplitWhenMeasured) {
  // The paper's bottom line (Figure 5 logic): the design chosen from
  // estimates must actually run faster than the default equal split.
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  Advisor advisor(&store_);
  auto solution = advisor.Recommend(problem);
  ASSERT_TRUE(solution.ok());
  auto recommended = Advisor::Measure(problem, solution->allocations);
  auto equal =
      Advisor::Measure(problem, EqualSplitSolution(problem).allocations);
  ASSERT_TRUE(recommended.ok()) << recommended.status();
  ASSERT_TRUE(equal.ok());
  EXPECT_LT(recommended->total_seconds, equal->total_seconds);
}

TEST_F(DesignSolverTest, TwoResourceDesign) {
  // Controlling CPU and I/O together: the CPU-bound workload should get
  // CPU, the I/O-bound workload should get I/O bandwidth.
  VirtualizationDesignProblem problem =
      TwoWorkloadProblem({ResourceKind::kCpu, ResourceKind::kIo});
  Advisor advisor(&store_);
  auto solution =
      advisor.Recommend(problem, SearchAlgorithm::kDynamicProgramming);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_GT(solution->allocations[1].cpu, 0.5);
  EXPECT_GT(solution->allocations[0].io, 0.5);
  // Feasibility on both axes.
  EXPECT_NEAR(solution->allocations[0].cpu + solution->allocations[1].cpu,
              1.0, 1e-9);
  EXPECT_NEAR(solution->allocations[0].io + solution->allocations[1].io,
              1.0, 1e-9);
}

TEST_F(DesignSolverTest, MeasureRejectsInfeasibleAllocations) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  std::vector<ResourceShare> infeasible = {ResourceShare(0.7, 0.5, 0.5),
                                           ResourceShare(0.7, 0.5, 0.5)};
  EXPECT_TRUE(Advisor::Measure(problem, infeasible)
                  .status()
                  .IsResourceExhausted());
}

TEST_F(DesignSolverTest, ThreeWorkloads) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  problem.workloads.push_back(Workload::Repeated("cpu2", kCpuQuery, 1));
  problem.databases.push_back(&db_);
  problem.grid_steps = 9;
  Advisor advisor(&store_);
  auto solution = advisor.Recommend(problem);
  ASSERT_TRUE(solution.ok()) << solution.status();
  double total = 0.0;
  for (const ResourceShare& share : solution->allocations) {
    total += share.cpu;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Equal memory split across three.
  EXPECT_NEAR(solution->allocations[0].memory, 1.0 / 3.0, 1e-9);
}

TEST_F(DesignSolverTest, DynamicRedesignBeatsStaticAcrossPhaseShift) {
  VirtualizationDesignProblem base = TwoWorkloadProblem();
  // Phase 0: VM1 io-bound, VM2 cpu-bound. Phase 1: roles swap.
  std::vector<std::vector<Workload>> phases = {
      {Workload::Repeated("io", kIoQuery, 2),
       Workload::Repeated("cpu", kCpuQuery, 2)},
      {Workload::Repeated("cpu", kCpuQuery, 2),
       Workload::Repeated("io", kIoQuery, 2)},
  };
  auto comparison = CompareStaticVsDynamic(base, phases, store_);
  ASSERT_TRUE(comparison.ok()) << comparison.status();
  ASSERT_EQ(comparison->dynamic_designs.size(), 2u);
  // Dynamic re-design can only help (it re-optimizes each phase).
  EXPECT_LE(comparison->dynamic_total_seconds,
            comparison->static_total_seconds * 1.001);
  // And with a role swap it should help measurably.
  EXPECT_LT(comparison->dynamic_total_seconds,
            0.95 * comparison->static_total_seconds);
}

TEST_F(DesignSolverTest, ImportanceWeightShiftsAllocation) {
  // Paper Section 7 extension: two *identical* CPU-bound workloads, but
  // one carries a higher service-level weight. Unweighted, the optimum is
  // the equal split; weighted, the search must favor the important one.
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  problem.workloads = {Workload::Repeated("gold", kCpuQuery, 2),
                       Workload::Repeated("bronze", kCpuQuery, 2)};
  problem.workloads[0].importance = 4.0;
  Advisor advisor(&store_);
  auto weighted = advisor.Recommend(problem);
  ASSERT_TRUE(weighted.ok()) << weighted.status();
  EXPECT_GT(weighted->allocations[0].cpu, 0.5);

  problem.workloads[0].importance = 1.0;
  auto unweighted = advisor.Recommend(problem);
  ASSERT_TRUE(unweighted.ok());
  EXPECT_DOUBLE_EQ(unweighted->allocations[0].cpu, 0.5);
}

TEST_F(DesignSolverTest, ImportanceScalesCostLinearly) {
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  WorkloadCostModel plain(&problem, &store_);
  auto base = plain.Cost(1, ResourceShare(0.5, 0.5, 0.5));
  ASSERT_TRUE(base.ok());
  problem.workloads[1].importance = 3.0;
  WorkloadCostModel weighted(&problem, &store_);
  auto scaled = weighted.Cost(1, ResourceShare(0.5, 0.5, 0.5));
  ASSERT_TRUE(scaled.ok());
  EXPECT_NEAR(*scaled, 3.0 * *base, 1e-9);
}

TEST_F(DesignSolverTest, ColdPerStatementMeasurementIsSlower) {
  // Repeated statements run warm by default; the cold_per_statement option
  // (modeling a database larger than VM memory) re-pays the I/O each time.
  VirtualizationDesignProblem problem = TwoWorkloadProblem();
  problem.workloads = {Workload::Repeated("io-a", kIoQuery, 3),
                       Workload::Repeated("io-b", kIoQuery, 3)};
  const auto allocations = EqualSplitSolution(problem).allocations;
  auto warm = Advisor::Measure(problem, allocations);
  Advisor::MeasureOptions options;
  options.cold_per_statement = true;
  auto cold = Advisor::Measure(problem, allocations, options);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  // Warm: 1 cold + 2 cached scans. Cold: 3 cold scans.
  EXPECT_GT(cold->total_seconds, 1.5 * warm->total_seconds);
  EXPECT_GT(cold->max_seconds, 0.0);
  EXPECT_LE(cold->max_seconds, cold->total_seconds);
}

}  // namespace
}  // namespace vdb::core
