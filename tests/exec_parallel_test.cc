// Morsel-parallel engine tests (DESIGN.md §12): serial and parallel batch
// runs of the same query must be indistinguishable — identical rows in
// identical order and bit-identical simulated charges — because workers
// only record charge events and the coordinator replays them in serial
// order. The cases below pick at the seams of that design: empty tables,
// tables smaller than one morsel, morsel boundaries that do not align
// with 1024-row batches, more threads than morsels, aggregate merges,
// joins, ORDER BY, and the LIMIT shapes that never parallelize.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/database.h"
#include "exec/morsel.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb::exec {
namespace {

using catalog::Column;
using catalog::Schema;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;

// 6500 rows: more than one 4096-record morsel, with a partial second
// morsel whose size is not a multiple of the 1024-row batch either. Pages
// hold a data-dependent number of records, so the morsel boundary lands
// mid-page and exercises the dispatcher's carry-over path.
constexpr int64_t kBigRows = 6500;
constexpr int64_t kSmallRows = 50;

class ParallelEngineTest : public ::testing::Test {
 protected:
  ParallelEngineTest()
      : vm_("vm", sim::MachineSpec::Small(), sim::HypervisorModel::Ideal(),
            sim::ResourceShare(1.0, 1.0, 1.0)) {
    VDB_CHECK_OK(db_.ApplyVmConfig(vm_));
    auto big = db_.catalog()->CreateTable(
        "big", Schema({Column("id", TypeId::kInt64),
                       Column("name", TypeId::kString),
                       Column("grp", TypeId::kInt64),
                       Column("val", TypeId::kDouble)}));
    VDB_CHECK(big.ok());
    for (int64_t id = 0; id < kBigRows; ++id) {
      // Variable-length names shift record boundaries across pages; every
      // 7th value is NULL so null handling runs in every morsel.
      std::string name = "n" + std::string(1 + id % 9, 'x') +
                         std::to_string(id % 131);
      Value val = (id % 7 == 0) ? Value::Null(TypeId::kDouble)
                                : Value::Double(static_cast<double>(id) / 3);
      VDB_CHECK_OK(db_.catalog()->Insert(
          *big, Tuple{Value::Int64(id), Value::String(std::move(name)),
                      Value::Int64(id % 17), std::move(val)}));
    }
    auto small = db_.catalog()->CreateTable(
        "small", Schema({Column("id", TypeId::kInt64),
                         Column("tag", TypeId::kString)}));
    VDB_CHECK(small.ok());
    for (int64_t id = 0; id < kSmallRows; ++id) {
      VDB_CHECK_OK(db_.catalog()->Insert(
          *small, Tuple{Value::Int64(id),
                        Value::String("tag" + std::to_string(id))}));
    }
    auto empty = db_.catalog()->CreateTable(
        "nothing", Schema({Column("id", TypeId::kInt64),
                           Column("val", TypeId::kDouble)}));
    VDB_CHECK(empty.ok());
    VDB_CHECK_OK(db_.catalog()->AnalyzeAll());
  }

  Result<QueryResult> RunCold(const std::string& sql, int threads) {
    QueryOptions options;
    options.num_threads = threads;
    db_.set_query_options(options);
    VDB_CHECK_OK(db_.DropCaches());
    Result<QueryResult> result = db_.Execute(sql, vm_);
    db_.set_query_options(QueryOptions{});
    return result;
  }

  // Runs `sql` cold serially and cold with `threads` workers, and
  // requires identical rows in identical order plus bit-identical
  // simulated charges. Returns the serial rows.
  std::vector<Tuple> RunSerialVsParallel(const std::string& sql,
                                         int threads = 4) {
    auto serial = RunCold(sql, 1);
    VDB_CHECK(serial.ok()) << serial.status();
    auto parallel = RunCold(sql, threads);
    VDB_CHECK(parallel.ok()) << parallel.status();
    EXPECT_EQ(Render(serial->rows), Render(parallel->rows)) << sql;
    EXPECT_EQ(serial->physical_reads, parallel->physical_reads) << sql;
    // Bitwise, not approximate: the parallel run replays the exact same
    // charge sequence the serial run performs inline.
    EXPECT_EQ(serial->cpu_seconds, parallel->cpu_seconds) << sql;
    EXPECT_EQ(serial->io_seconds, parallel->io_seconds) << sql;
    EXPECT_EQ(serial->elapsed_seconds, parallel->elapsed_seconds) << sql;
    return std::move(serial->rows);
  }

  static std::vector<std::string> Render(const std::vector<Tuple>& rows) {
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Tuple& row : rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.is_null() ? "<null>" : v.ToString();
        line += '|';
      }
      out.push_back(std::move(line));
    }
    return out;
  }

  sim::VirtualMachine vm_;
  Database db_;
};

TEST_F(ParallelEngineTest, ScanFilterProjectAcrossMorselBoundaries) {
  EXPECT_EQ(RunSerialVsParallel("SELECT id, name, val FROM big").size(),
            static_cast<size_t>(kBigRows));
  RunSerialVsParallel("SELECT id FROM big WHERE grp = 3");
  RunSerialVsParallel("SELECT id + grp, val * 2.0 FROM big WHERE id % 5 = 1");
  RunSerialVsParallel("SELECT name FROM big WHERE name LIKE 'nxx%'");
}

TEST_F(ParallelEngineTest, EmptyTableProducesNoChargesEitherWay) {
  EXPECT_TRUE(RunSerialVsParallel("SELECT id FROM nothing").empty());
  EXPECT_TRUE(
      RunSerialVsParallel("SELECT id FROM nothing WHERE val > 0.0").empty());
  auto counted = RunSerialVsParallel("SELECT COUNT(*) FROM nothing");
  ASSERT_EQ(counted.size(), 1u);
  EXPECT_EQ(counted[0][0], Value::Int64(0));
}

TEST_F(ParallelEngineTest, TableSmallerThanOneMorsel) {
  EXPECT_EQ(RunSerialVsParallel("SELECT id, tag FROM small").size(),
            static_cast<size_t>(kSmallRows));
  RunSerialVsParallel("SELECT tag FROM small WHERE id >= 40");
  RunSerialVsParallel("SELECT COUNT(*), MIN(tag) FROM small");
}

TEST_F(ParallelEngineTest, MoreThreadsThanMorsels) {
  // The small table fits one morsel; eight workers mostly idle, and the
  // single in-flight morsel must still produce the serial result.
  RunSerialVsParallel("SELECT id, tag FROM small", /*threads=*/8);
  RunSerialVsParallel("SELECT SUM(id) FROM small WHERE id % 2 = 0",
                      /*threads=*/8);
}

TEST_F(ParallelEngineTest, AggregatesMergeToSerialResult) {
  auto global = RunSerialVsParallel(
      "SELECT COUNT(*), SUM(grp), MIN(name), MAX(val) FROM big");
  ASSERT_EQ(global.size(), 1u);
  EXPECT_EQ(global[0][0], Value::Int64(kBigRows));
  EXPECT_EQ(
      RunSerialVsParallel("SELECT grp, COUNT(*), SUM(val), AVG(val), "
                          "MIN(id), MAX(id) FROM big GROUP BY grp")
          .size(),
      17u);
  RunSerialVsParallel(
      "SELECT grp, COUNT(*) FROM big WHERE id > 100 GROUP BY grp");
}

TEST_F(ParallelEngineTest, DistinctAggregatesFallBackToSerialPath) {
  // DISTINCT partials cannot merge, so these plans skip the parallel
  // aggregate; they must still return serial-identical rows and charges.
  RunSerialVsParallel("SELECT COUNT(DISTINCT grp) FROM big");
  RunSerialVsParallel(
      "SELECT grp, COUNT(DISTINCT name) FROM big GROUP BY grp");
}

TEST_F(ParallelEngineTest, JoinsAndOrderByMatchSerial) {
  auto joined = RunSerialVsParallel(
      "SELECT b.id, s.tag FROM big b, small s WHERE b.grp = s.id "
      "ORDER BY b.id");
  EXPECT_FALSE(joined.empty());
  RunSerialVsParallel(
      "SELECT name, val FROM big ORDER BY name, id LIMIT 100");
  RunSerialVsParallel("SELECT id FROM big WHERE grp < 4 ORDER BY val");
}

TEST_F(ParallelEngineTest, LimitShapesNeverDivergeUnderThreads) {
  // Budgeted (LIMIT-capped) subtrees are delegated to the row engine and
  // never parallelized, so thread count must not change anything.
  RunSerialVsParallel("SELECT id FROM big LIMIT 3");
  RunSerialVsParallel("SELECT id FROM big LIMIT 0");
  RunSerialVsParallel("SELECT id FROM big WHERE grp = 5 LIMIT 7");
  RunSerialVsParallel("SELECT id FROM big LIMIT 5000");
}

TEST_F(ParallelEngineTest, HashJoinProbeParallelizesAcrossUnalignedMorsels) {
  // The probe side (big, 6500 rows) spans two probe morsels whose
  // 4096-row boundary falls inside batch 4 — deliberately unaligned with
  // the 1024-row batch grid. Workers must replay the serial per-row
  // charge sequence exactly: hash charge per probe row, comparison charge
  // only for key-equal bucket entries, tuple charge per emit.
  auto inner = RunSerialVsParallel(
      "SELECT b.id, s.tag FROM big b, small s WHERE b.grp = s.id "
      "ORDER BY b.id");
  EXPECT_FALSE(inner.empty());
  // Residual predicate on top of the hash key: charged per equal-key
  // match, so a worker that skipped or double-charged residuals diverges.
  RunSerialVsParallel(
      "SELECT b.id, s.tag FROM big b, small s "
      "WHERE b.grp = s.id AND b.id > s.id * 10 ORDER BY b.id");
  // LEFT JOIN emits unmatched probe rows post-scan of each bucket.
  RunSerialVsParallel(
      "SELECT b.id, s.tag FROM big b LEFT JOIN small s ON b.grp = s.id "
      "AND s.id > 8 ORDER BY b.id, s.tag");
}

TEST_F(ParallelEngineTest, HashJoinProbeWithEmptyBuildSide) {
  // An empty build table still probes every row (hash charges) but never
  // matches; inner joins emit nothing, left joins emit all-NULL padding.
  EXPECT_TRUE(RunSerialVsParallel(
                  "SELECT b.id, n.val FROM big b, nothing n "
                  "WHERE b.id = n.id")
                  .empty());
  auto padded = RunSerialVsParallel(
      "SELECT b.id, n.val FROM big b LEFT JOIN nothing n ON b.id = n.id "
      "ORDER BY b.id");
  EXPECT_EQ(padded.size(), static_cast<size_t>(kBigRows));
  ASSERT_FALSE(padded.empty());
  EXPECT_TRUE(padded[0][1].is_null());
}

TEST_F(ParallelEngineTest, SemiAndAntiJoinProbesMatchSerial) {
  // EXISTS / NOT IN plan into semi / anti hash joins, whose probe loops
  // break on the first passing match — the charge replay must stop at
  // exactly the same bucket entry the serial loop stops at.
  RunSerialVsParallel(
      "SELECT id FROM big b WHERE EXISTS "
      "(SELECT 1 FROM small s WHERE s.id = b.grp) ORDER BY id");
  RunSerialVsParallel(
      "SELECT id FROM big b WHERE NOT EXISTS "
      "(SELECT 1 FROM small s WHERE s.id = b.grp) ORDER BY id");
}

TEST_F(ParallelEngineTest, SharedAggregateThresholdIsExact) {
  // The wide-group gate must flip exactly at the exported threshold.
  EXPECT_FALSE(UseSharedAggregate(kSharedAggregateMinGroups - 1.0, 1));
  EXPECT_FALSE(UseSharedAggregate(kSharedAggregateMinGroups, 1));
  EXPECT_TRUE(UseSharedAggregate(kSharedAggregateMinGroups + 1.0, 1));
  // Global aggregates (no keys) never share, whatever the estimate says.
  EXPECT_FALSE(UseSharedAggregate(kSharedAggregateMinGroups + 1.0, 0));
}

TEST_F(ParallelEngineTest, WideGroupAggregateUsesSharedIndex) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* shared = registry.GetCounter("exec.morsel.shared_agg");
  registry.set_enabled(true);
  // GROUP BY id: ~6500 estimated groups, above the sharing threshold.
  // The serial leg of RunSerialVsParallel never builds a shared index
  // (no morsel pipeline), the parallel leg must build exactly one — and
  // rows and charges still match the serial run bitwise.
  uint64_t before = shared->value();
  auto wide = RunSerialVsParallel(
      "SELECT id, COUNT(*), SUM(val) FROM big GROUP BY id");
  EXPECT_EQ(wide.size(), static_cast<size_t>(kBigRows));
  EXPECT_EQ(shared->value(), before + 1)
      << "wide aggregate must take the shared-index path once (parallel "
         "leg only)";
  // GROUP BY grp: 17 groups, far below the threshold — the per-morsel
  // partial-map path stays in effect and no index is built.
  before = shared->value();
  RunSerialVsParallel("SELECT grp, COUNT(*) FROM big GROUP BY grp");
  EXPECT_EQ(shared->value(), before)
      << "narrow aggregate must not take the shared-index path";
  registry.set_enabled(false);
}

TEST_F(ParallelEngineTest, DistinctWideGroupStaysSerial) {
  // DISTINCT partials cannot merge, so even a wide group estimate must
  // not reach the shared index — the aggregate falls back to the serial
  // operator entirely.
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* shared = registry.GetCounter("exec.morsel.shared_agg");
  registry.set_enabled(true);
  const uint64_t before = shared->value();
  auto rows = RunSerialVsParallel(
      "SELECT id, COUNT(DISTINCT name) FROM big GROUP BY id");
  EXPECT_EQ(rows.size(), static_cast<size_t>(kBigRows));
  EXPECT_EQ(shared->value(), before);
  registry.set_enabled(false);
}

TEST_F(ParallelEngineTest, MorselPathActuallyRunsWhenParallel) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* dispatched =
      registry.GetCounter("exec.morsel.dispatched");
  registry.set_enabled(true);
  const uint64_t before = dispatched->value();
  auto serial = RunCold("SELECT id FROM big", 1);
  VDB_CHECK(serial.ok()) << serial.status();
  EXPECT_EQ(dispatched->value(), before)
      << "serial run must not dispatch morsels";
  auto parallel = RunCold("SELECT id FROM big", 4);
  VDB_CHECK(parallel.ok()) << parallel.status();
  // 6500 records at 4096 per morsel is exactly two morsels.
  EXPECT_EQ(dispatched->value(), before + 2);
  registry.set_enabled(false);
}

}  // namespace
}  // namespace vdb::exec
