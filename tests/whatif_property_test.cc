// Property tests for the paper's central requirement (Section 4): the
// optimizer's estimates under calibrated P(R) don't need to match actual
// times, but they must *rank* alternatives the way actual measurements
// do — across queries at a fixed allocation, and across allocations for
// a fixed query — and they must respond monotonically to resources.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "calib/calibration.h"
#include "calib/grid.h"
#include "datagen/calibration_db.h"
#include "datagen/synthetic.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb {
namespace {

using sim::ResourceShare;

/// Shared, expensive environment: calibration DB + a few query targets,
/// and a calibrated store over a (cpu, io) grid.
class WhatIfEnv {
 public:
  WhatIfEnv() {
    machine_ = sim::MachineSpec::PaperTestbed();
    datagen::CalibrationDbConfig config;
    config.base_rows = 8000;
    VDB_CHECK_OK(datagen::GenerateCalibrationDb(db_.catalog(), config));
    // Extra workload tables with distinct profiles.
    using datagen::ColumnSpec;
    using datagen::Distribution;
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    ColumnSpec text;
    text.name = "s";
    text.type = catalog::TypeId::kString;
    text.distribution = Distribution::kRandomText;
    text.string_length = 40;
    ColumnSpec pad = text;
    pad.name = "pad";
    pad.string_length = 800;
    VDB_CHECK_OK(
        datagen::GenerateTable(db_.catalog(), "wide", {key, pad}, 6000, 31));
    VDB_CHECK_OK(datagen::GenerateTable(db_.catalog(), "texty",
                                        {key, text}, 25000, 32));
    VDB_CHECK_OK(db_.catalog()->AnalyzeAll());

    calib::CalibrationGridSpec spec;
    spec.cpu_shares = {0.2, 0.5, 0.8};
    spec.memory_shares = {0.5};
    spec.io_shares = {0.2, 0.5, 0.8};
    auto store = calib::CalibrateGrid(&db_, machine_,
                                      sim::HypervisorModel::XenLike(), spec);
    VDB_CHECK(store.ok()) << store.status();
    store_ = std::move(*store);
  }

  static WhatIfEnv& Get() {
    static WhatIfEnv* env = new WhatIfEnv();
    return *env;
  }

  double Estimate(const std::string& sql, const ResourceShare& share) {
    auto params = store_.Lookup(share);
    VDB_CHECK(params.ok());
    db_.SetOptimizerParams(*params);
    auto plan = db_.Prepare(sql);
    VDB_CHECK(plan.ok()) << plan.status();
    return (*plan)->total_cost_ms;
  }

  double Actual(const std::string& sql, const ResourceShare& share) {
    sim::VirtualMachine vm("vm", machine_,
                           sim::HypervisorModel::XenLike(), share);
    VDB_CHECK_OK(db_.ApplyVmConfig(vm));
    auto params = store_.Lookup(share);
    VDB_CHECK(params.ok());
    db_.SetOptimizerParams(*params);
    VDB_CHECK_OK(db_.DropCaches());
    auto result = db_.Execute(sql, vm);
    VDB_CHECK(result.ok()) << result.status();
    return result->elapsed_seconds * 1000.0;
  }

  sim::MachineSpec machine_;
  exec::Database db_;
  calib::CalibrationStore store_;
};

const char* const kQueries[] = {
    "select count(*) from cal_small",
    "select count(*) from cal_large",
    "select count(*) from cal_large where b < 100 and c < 1000",
    "select count(*) from wide",
    "select count(*) from texty where s like '%foxes%' and s like "
    "'%deposits%'",
    "select b, count(*), sum(d) from cal_large group by b",
};

// --- Property 1: cross-query ranking at a fixed allocation -----------------

class CrossQueryRankingTest
    : public ::testing::TestWithParam<ResourceShare> {};

TEST_P(CrossQueryRankingTest, EstimatesRankQueriesLikeActuals) {
  WhatIfEnv& env = WhatIfEnv::Get();
  const ResourceShare share = GetParam();
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const char* sql : kQueries) {
    estimated.push_back(env.Estimate(sql, share));
    actual.push_back(env.Actual(sql, share));
  }
  // For every well-separated pair (2x), the estimate ordering agrees.
  for (size_t i = 0; i < estimated.size(); ++i) {
    for (size_t j = 0; j < estimated.size(); ++j) {
      if (actual[i] > 2.0 * actual[j]) {
        EXPECT_GT(estimated[i], estimated[j])
            << "queries " << i << " vs " << j << " at "
            << share.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Allocations, CrossQueryRankingTest,
    ::testing::Values(ResourceShare(0.25, 0.5, 0.5),
                      ResourceShare(0.5, 0.5, 0.5),
                      ResourceShare(0.75, 0.5, 0.25),
                      ResourceShare(0.4, 0.5, 0.7)));

// --- Property 2: cross-allocation ranking for a fixed query ----------------

class CrossAllocationRankingTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossAllocationRankingTest, EstimatesRankAllocationsLikeActuals) {
  WhatIfEnv& env = WhatIfEnv::Get();
  const std::string sql = GetParam();
  const ResourceShare shares[] = {
      ResourceShare(0.2, 0.5, 0.2), ResourceShare(0.2, 0.5, 0.8),
      ResourceShare(0.8, 0.5, 0.2), ResourceShare(0.8, 0.5, 0.8)};
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const ResourceShare& share : shares) {
    estimated.push_back(env.Estimate(sql, share));
    actual.push_back(env.Actual(sql, share));
  }
  for (size_t i = 0; i < estimated.size(); ++i) {
    for (size_t j = 0; j < estimated.size(); ++j) {
      if (actual[i] > 1.5 * actual[j]) {
        EXPECT_GT(estimated[i], estimated[j])
            << shares[i].ToString() << " vs " << shares[j].ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, CrossAllocationRankingTest,
                         ::testing::Values(kQueries[1], kQueries[3],
                                           kQueries[4]));

// --- Property 3: estimated cost is monotone in resources -------------------

class MonotoneCostTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MonotoneCostTest, MoreCpuNeverIncreasesEstimatedCost) {
  WhatIfEnv& env = WhatIfEnv::Get();
  const std::string sql = GetParam();
  double previous = -1.0;
  for (double cpu : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    const double cost = env.Estimate(sql, ResourceShare(cpu, 0.5, 0.5));
    if (previous >= 0) {
      EXPECT_LE(cost, previous * 1.0001) << "cpu=" << cpu;
    }
    previous = cost;
  }
}

TEST_P(MonotoneCostTest, MoreIoNeverIncreasesEstimatedCost) {
  WhatIfEnv& env = WhatIfEnv::Get();
  const std::string sql = GetParam();
  double previous = -1.0;
  for (double io : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    const double cost = env.Estimate(sql, ResourceShare(0.5, 0.5, io));
    if (previous >= 0) {
      EXPECT_LE(cost, previous * 1.0001) << "io=" << io;
    }
    previous = cost;
  }
}

TEST_P(MonotoneCostTest, MoreCpuNeverIncreasesActualTime) {
  WhatIfEnv& env = WhatIfEnv::Get();
  const std::string sql = GetParam();
  double previous = -1.0;
  for (double cpu : {0.25, 0.5, 0.75}) {
    const double ms = env.Actual(sql, ResourceShare(cpu, 0.5, 0.5));
    if (previous >= 0) {
      EXPECT_LE(ms, previous * 1.0001) << "cpu=" << cpu;
    }
    previous = ms;
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, MonotoneCostTest,
                         ::testing::ValuesIn(kQueries));

// --- Property 4: off-grid allocations interpolate sensibly -----------------
//
// The calibration grid covers cpu/io in {0.2, 0.5, 0.8}; the allocations
// below sit strictly between grid points, so every lookup exercises the
// trilinear interpolation path rather than the exact-match fast path.

INSTANTIATE_TEST_SUITE_P(
    OffGridAllocations, CrossQueryRankingTest,
    ::testing::Values(ResourceShare(0.3, 0.5, 0.6),
                      ResourceShare(0.65, 0.5, 0.35)));

TEST(OffGridInterpolationTest, ParamsAreConvexBetweenGridPoints) {
  WhatIfEnv& env = WhatIfEnv::Get();
  auto lo = env.store_.Lookup(ResourceShare(0.2, 0.5, 0.5));
  auto hi = env.store_.Lookup(ResourceShare(0.5, 0.5, 0.5));
  auto mid = env.store_.Lookup(ResourceShare(0.35, 0.5, 0.5));
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  ASSERT_TRUE(mid.ok());
  const auto lo_vec = lo->CalibratedVector();
  const auto hi_vec = hi->CalibratedVector();
  const auto mid_vec = mid->CalibratedVector();
  for (int k = 0; k < optimizer::OptimizerParams::kNumCalibrated; ++k) {
    // 0.35 is the exact midpoint of [0.2, 0.5].
    EXPECT_NEAR(mid_vec[k], 0.5 * (lo_vec[k] + hi_vec[k]),
                1e-9 + 1e-9 * std::abs(lo_vec[k] + hi_vec[k]))
        << "component " << k;
  }
}

TEST(OffGridInterpolationTest, LookupIsContinuousAtGridPoints) {
  WhatIfEnv& env = WhatIfEnv::Get();
  for (const ResourceShare& point : env.store_.Points()) {
    auto exact = env.store_.Lookup(point);
    auto nearby = env.store_.Lookup(ResourceShare(
        point.cpu + 1e-7, point.memory - 1e-7, point.io + 1e-7));
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(nearby.ok());
    EXPECT_NEAR(nearby->cpu_tuple_cost, exact->cpu_tuple_cost,
                1e-4 * exact->cpu_tuple_cost + 1e-12)
        << point.ToString();
    EXPECT_NEAR(nearby->seq_page_cost, exact->seq_page_cost,
                1e-4 * exact->seq_page_cost + 1e-12)
        << point.ToString();
  }
}

TEST(OffGridInterpolationTest, EstimatesInterpolateBetweenGridEstimates) {
  WhatIfEnv& env = WhatIfEnv::Get();
  // For each query, the what-if estimate at an off-grid allocation lies
  // between the estimates at the bracketing grid allocations (the cost is
  // linear in P's time parameters, and P interpolates linearly).
  for (const char* sql : kQueries) {
    const double lo = env.Estimate(sql, ResourceShare(0.5, 0.5, 0.2));
    const double hi = env.Estimate(sql, ResourceShare(0.5, 0.5, 0.5));
    const double mid = env.Estimate(sql, ResourceShare(0.5, 0.5, 0.35));
    EXPECT_GE(mid, std::min(lo, hi) - 1e-9) << sql;
    EXPECT_LE(mid, std::max(lo, hi) + 1e-9) << sql;
  }
}

}  // namespace
}  // namespace vdb
