// Cardinality-estimation quality tests: the optimizer's row estimates for
// a battery of TPC-H predicates must stay within a bounded q-error of the
// true result sizes. Ranking-quality in the paper's method ultimately
// rests on these estimates being sane.

#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb {
namespace {

struct Case {
  const char* sql;
  double max_q_error;  // max(est/actual, actual/est) allowed
};

class CardinalityTest : public ::testing::TestWithParam<Case> {
 protected:
  static void SetUpTestSuite() {
    db_ = new exec::Database();
    vm_ = new sim::VirtualMachine(
        "vm", sim::MachineSpec::PaperTestbed(),
        sim::HypervisorModel::XenLike(), sim::ResourceShare(0.5, 0.5, 0.5));
    datagen::TpchConfig config;
    config.scale_factor = 0.01;
    VDB_CHECK_OK(datagen::GenerateTpch(db_->catalog(), config));
    VDB_CHECK_OK(db_->ApplyVmConfig(*vm_));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete vm_;
  }

  static exec::Database* db_;
  static sim::VirtualMachine* vm_;
};

exec::Database* CardinalityTest::db_ = nullptr;
sim::VirtualMachine* CardinalityTest::vm_ = nullptr;

TEST_P(CardinalityTest, QErrorBounded) {
  const Case test_case = GetParam();
  auto plan = db_->Prepare(test_case.sql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto result = db_->ExecutePlan(**plan, *vm_);
  ASSERT_TRUE(result.ok()) << result.status();
  const double actual =
      std::max<double>(1.0, static_cast<double>(result->rows.size()));
  const double estimated = std::max(1.0, (*plan)->estimated_rows);
  const double q_error =
      std::max(estimated / actual, actual / estimated);
  EXPECT_LE(q_error, test_case.max_q_error)
      << test_case.sql << "\n  estimated=" << estimated
      << " actual=" << actual;
}

INSTANTIATE_TEST_SUITE_P(
    TpchPredicates, CardinalityTest,
    ::testing::Values(
        // Date range on orders: histogram range estimation.
        Case{"select o_orderkey from orders where o_orderdate >= date "
             "'1993-07-01' and o_orderdate < date '1993-10-01'",
             1.6},
        // Narrower range.
        Case{"select o_orderkey from orders where o_orderdate >= date "
             "'1995-01-01' and o_orderdate < date '1995-02-01'",
             2.0},
        // Equality on a low-NDV string column: 1/ndv.
        Case{"select o_orderkey from orders where o_orderpriority = "
             "'1-URGENT'",
             1.6},
        // Numeric comparison through the histogram.
        Case{"select l_orderkey from lineitem where l_quantity < 24",
             1.4},
        // Conjunction of a range and a one-sided bound.
        Case{"select l_orderkey from lineitem where l_discount between "
             "0.05 and 0.07 and l_quantity < 24",
             2.5},
        // Point lookup on a unique key.
        Case{"select o_custkey from orders where o_orderkey = 50", 2.0},
        // Foreign-key equi-join: |lineitem| expected.
        Case{"select l_orderkey from orders, lineitem where o_orderkey = "
             "l_orderkey",
             1.5},
        // Join with a selective side.
        Case{"select l_orderkey from orders, lineitem where o_orderkey = "
             "l_orderkey and o_orderdate < date '1993-01-01'",
             2.5},
        // Group count: distinct-value product estimate.
        Case{"select l_returnflag, l_linestatus, count(*) from lineitem "
             "group by l_returnflag, l_linestatus",
             3.0},
        // IN list.
        Case{"select o_orderkey from orders where o_orderpriority in "
             "('1-URGENT', '2-HIGH')",
             1.8}));

}  // namespace
}  // namespace vdb
