// Direct physical-operator tests: constructs PhysicalNode trees by hand
// (bypassing the optimizer) to pin down operator semantics that
// end-to-end SQL tests may not reach — merge join with duplicates,
// nested-loop join variants, and the work_mem spill paths of sort, hash
// join, and nested loops.

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/database.h"
#include "exec/execution_context.h"
#include "exec/executor.h"
#include "optimizer/physical.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb::exec {
namespace {

using catalog::Column;
using catalog::Schema;
using catalog::TableInfo;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;
using optimizer::PhysHashJoin;
using optimizer::PhysMergeJoin;
using optimizer::PhysNestedLoopJoin;
using optimizer::PhysSeqScan;
using optimizer::PhysSort;
using optimizer::PhysicalNodePtr;
using plan::ColumnId;
using plan::LogicalJoinType;
using plan::OutputColumn;

class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest()
      : vm_("vm", sim::MachineSpec::Small(), sim::HypervisorModel::Ideal(),
            sim::ResourceShare(1.0, 1.0, 1.0)) {
    VDB_CHECK_OK(db_.ApplyVmConfig(vm_));
    // left(k, tag): keys 0..9, each twice. right(k, val): keys 5..14,
    // key k appearing (k % 3) + 1 times.
    auto left = db_.catalog()->CreateTable(
        "l", Schema({Column("k", TypeId::kInt64),
                     Column("tag", TypeId::kString)}));
    VDB_CHECK(left.ok());
    left_ = *left;
    for (int64_t k = 0; k < 10; ++k) {
      for (int copy = 0; copy < 2; ++copy) {
        VDB_CHECK_OK(db_.catalog()->Insert(
            left_, Tuple{Value::Int64(k),
                         Value::String("L" + std::to_string(k) + "." +
                                       std::to_string(copy))}));
      }
    }
    auto right = db_.catalog()->CreateTable(
        "r", Schema({Column("k", TypeId::kInt64),
                     Column("val", TypeId::kInt64)}));
    VDB_CHECK(right.ok());
    right_ = *right;
    for (int64_t k = 5; k < 15; ++k) {
      for (int64_t copy = 0; copy <= k % 3; ++copy) {
        VDB_CHECK_OK(db_.catalog()->Insert(
            right_, Tuple{Value::Int64(k), Value::Int64(100 * k + copy)}));
      }
    }
    VDB_CHECK_OK(db_.catalog()->AnalyzeAll());
  }

  // A scan node over a table (all columns).
  PhysicalNodePtr Scan(TableInfo* table, int table_id) {
    auto scan = std::make_unique<PhysSeqScan>();
    scan->table = table;
    scan->alias = table->name;
    for (size_t i = 0; i < table->schema.NumColumns(); ++i) {
      scan->output.push_back(
          OutputColumn{ColumnId{table_id, static_cast<int>(i)},
                       table->schema.column(i).name,
                       table->schema.column(i).type});
    }
    return scan;
  }

  plan::BoundExprPtr ColRef(const PhysicalNodePtr& node, int index) {
    const OutputColumn& column = node->output[index];
    return std::make_unique<plan::ColumnExpr>(column.id, column.name,
                                              column.type);
  }

  std::vector<Tuple> Execute(const optimizer::PhysicalNode& plan,
                             uint64_t work_mem = 64 << 20) {
    ExecutionContext context(&vm_, db_.buffer_pool(), work_mem);
    Executor executor(&context);
    auto rows = executor.Run(plan);
    VDB_CHECK(rows.ok()) << rows.status();
    last_elapsed_ = context.ElapsedSeconds();
    last_io_seconds_ = context.IoSeconds();
    return std::move(*rows);
  }

  // Canonical multiset of (left key, right val) pairs for comparison.
  std::multiset<std::pair<int64_t, int64_t>> JoinPairs(
      const std::vector<Tuple>& rows, size_t key_slot, size_t val_slot) {
    std::multiset<std::pair<int64_t, int64_t>> out;
    for (const Tuple& row : rows) {
      out.emplace(row[key_slot].AsInt64(), row[val_slot].AsInt64());
    }
    return out;
  }

  // Expected inner-join multiset computed by brute force.
  std::multiset<std::pair<int64_t, int64_t>> ExpectedInner() {
    std::multiset<std::pair<int64_t, int64_t>> out;
    for (int64_t k = 5; k < 10; ++k) {          // overlap keys
      for (int copy = 0; copy < 2; ++copy) {    // left copies
        for (int64_t rc = 0; rc <= k % 3; ++rc) {
          out.emplace(k, 100 * k + rc);
        }
      }
    }
    return out;
  }

  Database db_;
  sim::VirtualMachine vm_;
  TableInfo* left_ = nullptr;
  TableInfo* right_ = nullptr;
  double last_elapsed_ = 0.0;
  double last_io_seconds_ = 0.0;
};

TEST_F(OperatorTest, MergeJoinMatchesHashJoinWithDuplicates) {
  // Hash join reference.
  auto hash = std::make_unique<PhysHashJoin>();
  {
    auto left = Scan(left_, 0);
    auto right = Scan(right_, 1);
    hash->join_type = LogicalJoinType::kInner;
    hash->left_keys.push_back(ColRef(left, 0));
    hash->right_keys.push_back(ColRef(right, 0));
    hash->output = left->output;
    hash->output.insert(hash->output.end(), right->output.begin(),
                        right->output.end());
    hash->children.push_back(std::move(left));
    hash->children.push_back(std::move(right));
  }
  const auto hash_rows = Execute(*hash);

  // Merge join with Sort children.
  auto merge = std::make_unique<PhysMergeJoin>();
  {
    auto left = Scan(left_, 0);
    auto right = Scan(right_, 1);
    merge->left_key = ColRef(left, 0);
    merge->right_key = ColRef(right, 0);
    merge->output = left->output;
    merge->output.insert(merge->output.end(), right->output.begin(),
                         right->output.end());
    auto sort_side = [&](PhysicalNodePtr child,
                         const plan::BoundExprPtr& key) {
      auto sort = std::make_unique<PhysSort>();
      PhysSort::Key sort_key;
      sort_key.expr = key->Clone();
      sort->keys.push_back(std::move(sort_key));
      sort->output = child->output;
      sort->children.push_back(std::move(child));
      return sort;
    };
    auto left_sorted = sort_side(std::move(left), merge->left_key);
    auto right_sorted = sort_side(std::move(right), merge->right_key);
    merge->children.push_back(std::move(left_sorted));
    merge->children.push_back(std::move(right_sorted));
  }
  const auto merge_rows = Execute(*merge);

  const auto expected = ExpectedInner();
  EXPECT_EQ(JoinPairs(hash_rows, 0, 3), expected);
  EXPECT_EQ(JoinPairs(merge_rows, 0, 3), expected);
  EXPECT_EQ(hash_rows.size(), merge_rows.size());
}

TEST_F(OperatorTest, NestedLoopJoinAllVariants) {
  auto build_nl = [&](LogicalJoinType type) {
    auto join = std::make_unique<PhysNestedLoopJoin>();
    auto left = Scan(left_, 0);
    auto right = Scan(right_, 1);
    join->join_type = type;
    join->condition = std::make_unique<plan::BinaryBoundExpr>(
        sql::BinaryOp::kEq, ColRef(left, 0), ColRef(right, 0),
        TypeId::kBool);
    join->output = left->output;
    if (type == LogicalJoinType::kInner ||
        type == LogicalJoinType::kLeft) {
      join->output.insert(join->output.end(), right->output.begin(),
                          right->output.end());
    }
    join->children.push_back(std::move(left));
    join->children.push_back(std::move(right));
    return join;
  };

  // Inner: must match the brute-force pairs.
  EXPECT_EQ(JoinPairs(Execute(*build_nl(LogicalJoinType::kInner)), 0, 3),
            ExpectedInner());
  // Left: 20 left rows; unmatched (k < 5) padded with NULLs.
  const auto left_rows = Execute(*build_nl(LogicalJoinType::kLeft));
  size_t padded = 0;
  for (const Tuple& row : left_rows) {
    if (row[3].is_null()) {
      ++padded;
      EXPECT_LT(row[0].AsInt64(), 5);
    }
  }
  EXPECT_EQ(padded, 10u);  // keys 0..4, two copies each
  // Semi: each left row with a match, exactly once -> keys 5..9 x2.
  const auto semi_rows = Execute(*build_nl(LogicalJoinType::kSemi));
  EXPECT_EQ(semi_rows.size(), 10u);
  for (const Tuple& row : semi_rows) {
    EXPECT_GE(row[0].AsInt64(), 5);
    EXPECT_EQ(row.size(), 2u);  // left columns only
  }
  // Anti: the complement.
  const auto anti_rows = Execute(*build_nl(LogicalJoinType::kAnti));
  EXPECT_EQ(anti_rows.size(), 10u);
  for (const Tuple& row : anti_rows) {
    EXPECT_LT(row[0].AsInt64(), 5);
  }
}

TEST_F(OperatorTest, HashJoinSemiAntiMirrorNestedLoop) {
  for (LogicalJoinType type :
       {LogicalJoinType::kSemi, LogicalJoinType::kAnti,
        LogicalJoinType::kLeft}) {
    auto hash = std::make_unique<PhysHashJoin>();
    auto nl = std::make_unique<PhysNestedLoopJoin>();
    {
      auto left = Scan(left_, 0);
      auto right = Scan(right_, 1);
      hash->join_type = type;
      hash->left_keys.push_back(ColRef(left, 0));
      hash->right_keys.push_back(ColRef(right, 0));
      hash->output = left->output;
      if (type == LogicalJoinType::kLeft) {
        hash->output.insert(hash->output.end(), right->output.begin(),
                            right->output.end());
      }
      hash->children.push_back(std::move(left));
      hash->children.push_back(std::move(right));
    }
    {
      auto left = Scan(left_, 0);
      auto right = Scan(right_, 1);
      nl->join_type = type;
      nl->condition = std::make_unique<plan::BinaryBoundExpr>(
          sql::BinaryOp::kEq, ColRef(left, 0), ColRef(right, 0),
          TypeId::kBool);
      nl->output = hash->output;
      nl->children.push_back(std::move(left));
      nl->children.push_back(std::move(right));
    }
    auto canonical = [](std::vector<Tuple> rows) {
      std::multiset<std::string> out;
      for (const Tuple& row : rows) {
        out.insert(catalog::TupleToString(row));
      }
      return out;
    };
    EXPECT_EQ(canonical(Execute(*hash)), canonical(Execute(*nl)))
        << plan::LogicalJoinTypeName(type);
  }
}

TEST_F(OperatorTest, SortSpillChargesIo) {
  auto sort = std::make_unique<PhysSort>();
  auto scan = Scan(left_, 0);
  PhysSort::Key key;
  key.expr = ColRef(scan, 1);
  sort->keys.push_back(std::move(key));
  sort->output = scan->output;
  sort->children.push_back(std::move(scan));

  // Warm the cache so no table I/O is charged; only spill I/O differs.
  (void)Execute(*sort);
  (void)Execute(*sort, /*work_mem=*/64 << 20);
  const double io_in_memory = last_io_seconds_;
  const auto rows_in_memory = Execute(*sort, /*work_mem=*/64 << 20);
  (void)rows_in_memory;
  auto rows_spilled = Execute(*sort, /*work_mem=*/128);  // 128 bytes
  const double io_spilled = last_io_seconds_;
  EXPECT_GT(io_spilled, io_in_memory);
  // Spilling changes time, never results.
  EXPECT_EQ(rows_spilled.size(), 20u);
  for (size_t i = 1; i < rows_spilled.size(); ++i) {
    EXPECT_LE(rows_spilled[i - 1][1].AsString(),
              rows_spilled[i][1].AsString());
  }
}

TEST_F(OperatorTest, HashJoinSpillChargesIoOnly) {
  auto make_join = [&]() {
    auto join = std::make_unique<PhysHashJoin>();
    auto left = Scan(left_, 0);
    auto right = Scan(right_, 1);
    join->join_type = LogicalJoinType::kInner;
    join->left_keys.push_back(ColRef(left, 0));
    join->right_keys.push_back(ColRef(right, 0));
    join->output = left->output;
    join->output.insert(join->output.end(), right->output.begin(),
                        right->output.end());
    join->children.push_back(std::move(left));
    join->children.push_back(std::move(right));
    return join;
  };
  auto join = make_join();
  (void)Execute(*join);  // warm
  const auto in_memory = Execute(*join, 64 << 20);
  const double io_in_memory = last_io_seconds_;
  const auto spilled = Execute(*join, 64);
  const double io_spilled = last_io_seconds_;
  EXPECT_GT(io_spilled, io_in_memory);
  EXPECT_EQ(JoinPairs(in_memory, 0, 3), JoinPairs(spilled, 0, 3));
}

TEST_F(OperatorTest, NestedLoopSpillReReadsInnerPerOuterRow) {
  auto join = std::make_unique<PhysNestedLoopJoin>();
  auto left = Scan(left_, 0);
  auto right = Scan(right_, 1);
  join->join_type = LogicalJoinType::kInner;
  join->condition = std::make_unique<plan::BinaryBoundExpr>(
      sql::BinaryOp::kEq, ColRef(left, 0), ColRef(right, 0), TypeId::kBool);
  join->output = left->output;
  join->output.insert(join->output.end(), right->output.begin(),
                      right->output.end());
  join->children.push_back(std::move(left));
  join->children.push_back(std::move(right));

  (void)Execute(*join);  // warm
  (void)Execute(*join, 64 << 20);
  const double io_in_memory = last_io_seconds_;
  (void)Execute(*join, 64);
  const double io_spilled = last_io_seconds_;
  // 20 outer rows -> at least 20 re-reads of the spilled inner.
  EXPECT_GT(io_spilled, 10.0 * std::max(io_in_memory, 1e-9));
}

TEST_F(OperatorTest, JoinWithNoMatchesAndEmptyInputs) {
  // Empty right input: inner join empty, left join fully padded.
  auto empty = db_.catalog()->CreateTable(
      "empty_t", Schema({Column("k", TypeId::kInt64)}));
  ASSERT_TRUE(empty.ok());
  ASSERT_TRUE(db_.catalog()->Analyze(*empty).ok());

  auto join = std::make_unique<PhysHashJoin>();
  auto left = Scan(left_, 0);
  auto right = Scan(*empty, 1);
  join->join_type = LogicalJoinType::kLeft;
  join->left_keys.push_back(ColRef(left, 0));
  join->right_keys.push_back(ColRef(right, 0));
  join->output = left->output;
  join->output.insert(join->output.end(), right->output.begin(),
                      right->output.end());
  join->children.push_back(std::move(left));
  join->children.push_back(std::move(right));
  const auto rows = Execute(*join);
  EXPECT_EQ(rows.size(), 20u);
  for (const Tuple& row : rows) {
    EXPECT_TRUE(row[2].is_null());
  }
}

}  // namespace
}  // namespace vdb::exec
