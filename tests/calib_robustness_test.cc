// Robustness tests for calibration under measurement noise and faults
// (DESIGN.md §10): seeded noise must not move the fitted parameters far
// from their noise-free values, spikes must be rejected, transient
// failures must be retried (and degrade to dropped equations, not
// aborts), and grid calibration must survive dead points.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "calib/calibration.h"
#include "calib/grid.h"
#include "datagen/calibration_db.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/noise.h"
#include "sim/virtual_machine.h"

namespace vdb::calib {
namespace {

using sim::NoiseModel;
using sim::NoiseOptions;
using sim::ResourceShare;

// --- NoiseModel unit tests -------------------------------------------------

TEST(NoiseModelTest, DefaultIsANoOp) {
  NoiseModel noise;
  EXPECT_TRUE(noise.MaybeInjectFault("test").ok());
  EXPECT_DOUBLE_EQ(noise.PerturbSeconds(0.25, 0.75), 1.0);
  EXPECT_EQ(noise.faults_injected(), 0u);
  EXPECT_EQ(noise.spikes_injected(), 0u);
}

TEST(NoiseModelTest, DeterministicForAGivenSeed) {
  NoiseOptions options;
  options.cpu_sigma = 0.1;
  options.io_sigma = 0.2;
  options.spike_probability = 0.1;
  options.seed = 7;
  NoiseModel a(options);
  NoiseModel b(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.PerturbSeconds(1.0, 2.0), b.PerturbSeconds(1.0, 2.0));
  }
}

TEST(NoiseModelTest, ReseedRestartsTheStream) {
  NoiseOptions options;
  options.cpu_sigma = 0.1;
  NoiseModel noise(options);
  const double first = noise.PerturbSeconds(1.0, 0.0);
  noise.PerturbSeconds(1.0, 0.0);
  noise.Reseed(options.seed);
  EXPECT_DOUBLE_EQ(noise.PerturbSeconds(1.0, 0.0), first);
}

TEST(NoiseModelTest, InjectFailuresBurstFailsExactlyN) {
  NoiseModel noise;  // zero probabilistic failure rate
  noise.InjectFailures(3);
  for (int i = 0; i < 3; ++i) {
    Status status = noise.MaybeInjectFault("burst");
    EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  }
  EXPECT_TRUE(noise.MaybeInjectFault("burst").ok());
  EXPECT_EQ(noise.faults_injected(), 3u);
}

TEST(NoiseModelTest, FaultRateRoughlyMatchesProbability) {
  NoiseOptions options;
  options.transient_failure_probability = 0.1;
  NoiseModel noise(options);
  int failures = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!noise.MaybeInjectFault("rate").ok()) ++failures;
  }
  EXPECT_GT(failures, 800);
  EXPECT_LT(failures, 1200);
}

TEST(NoiseModelTest, CertainSpikeInflatesMeasurement) {
  NoiseOptions options;
  options.spike_probability = 1.0;
  options.spike_min_factor = 2.0;
  options.spike_max_factor = 8.0;
  NoiseModel noise(options);
  for (int i = 0; i < 50; ++i) {
    const double perturbed = noise.PerturbSeconds(1.0, 1.0);
    EXPECT_GE(perturbed, 2.0 * 2.0);
    EXPECT_LE(perturbed, 2.0 * 8.0);
  }
  EXPECT_EQ(noise.spikes_injected(), 50u);
}

// --- Calibration under noise ----------------------------------------------

class CalibRobustnessTest : public ::testing::Test {
 protected:
  CalibRobustnessTest() {
    datagen::CalibrationDbConfig config;
    config.base_rows = 2000;
    VDB_CHECK_OK(datagen::GenerateCalibrationDb(db_.catalog(), config));
  }

  ~CalibRobustnessTest() override { db_.set_noise_model(nullptr); }

  sim::VirtualMachine Vm(double cpu, double memory, double io) {
    return sim::VirtualMachine("vm", sim::MachineSpec::PaperTestbed(),
                               sim::HypervisorModel::XenLike(),
                               ResourceShare(cpu, memory, io));
  }

  exec::Database db_;
};

TEST_F(CalibRobustnessTest, SingleShotPathHasNoRobustSideEffects) {
  Calibrator calibrator(&db_);
  auto result = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->accepted);
  EXPECT_TRUE(result->warnings.empty());
  EXPECT_EQ(result->stats.retries, 0);
  EXPECT_EQ(result->stats.rejected_samples, 0);
  EXPECT_EQ(result->stats.failed_queries, 0);
  EXPECT_DOUBLE_EQ(result->stats.backoff_ms, 0.0);
}

TEST_F(CalibRobustnessTest, RecoversParametersUnderNoiseAndFaults) {
  // The acceptance scenario: 10% relative Gaussian noise, 5% heavy-tail
  // spikes, 2% transient failures, fixed seed — at every Figure-3 grid
  // point the robust pipeline must land cpu_tuple_cost within 15% of its
  // noise-free value.
  Calibrator calibrator(&db_);
  NoiseOptions noise_options;
  noise_options.cpu_sigma = 0.10;
  noise_options.io_sigma = 0.10;
  noise_options.spike_probability = 0.05;
  noise_options.transient_failure_probability = 0.02;
  noise_options.seed = 1234;
  NoiseModel noise(noise_options);

  for (double cpu : {0.25, 0.5, 0.75}) {
    for (double memory : {0.25, 0.5, 0.75}) {
      db_.set_noise_model(nullptr);
      auto clean = calibrator.Calibrate(Vm(cpu, memory, 0.5));
      ASSERT_TRUE(clean.ok()) << clean.status();

      db_.set_noise_model(&noise);
      auto noisy = calibrator.Calibrate(Vm(cpu, memory, 0.5),
                                        CalibrationOptions::Robust());
      ASSERT_TRUE(noisy.ok()) << noisy.status();
      EXPECT_NEAR(noisy->params.cpu_tuple_cost,
                  clean->params.cpu_tuple_cost,
                  0.15 * clean->params.cpu_tuple_cost)
          << "at cpu=" << cpu << " memory=" << memory;
      EXPECT_NEAR(noisy->params.seq_page_cost, clean->params.seq_page_cost,
                  0.15 * clean->params.seq_page_cost)
          << "at cpu=" << cpu << " memory=" << memory;
      // The robust layer actually took repeated samples under this noise.
      EXPECT_GT(noisy->stats.measurements, noisy->num_queries);
    }
  }
}

TEST_F(CalibRobustnessTest, SpikesAreRejectedByMadFilter) {
  Calibrator calibrator(&db_);
  auto clean = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  ASSERT_TRUE(clean.ok()) << clean.status();

  // Spikes only: no Gaussian noise, so every non-spiked sample is exact
  // and every spiked one is >= 2x — the MAD filter must drop the spikes
  // and the fit must match the noise-free run almost exactly. (The rate
  // stays low enough that a clean majority per 5-sample query is
  // near-certain; a spiked *median* is unrecoverable by any filter.)
  NoiseOptions noise_options;
  noise_options.spike_probability = 0.1;
  noise_options.seed = 99;
  NoiseModel noise(noise_options);
  db_.set_noise_model(&noise);

  CalibrationOptions options = CalibrationOptions::Robust();
  options.early_stop_rel_spread = 0.0;  // take all 5 samples
  auto robust = calibrator.Calibrate(Vm(0.5, 0.5, 0.5), options);
  ASSERT_TRUE(robust.ok()) << robust.status();
  EXPECT_GT(noise.spikes_injected(), 0u);
  EXPECT_GT(robust->stats.rejected_samples, 0);
  EXPECT_NEAR(robust->params.cpu_tuple_cost, clean->params.cpu_tuple_cost,
              0.02 * clean->params.cpu_tuple_cost);
  EXPECT_NEAR(robust->params.seq_page_cost, clean->params.seq_page_cost,
              0.02 * clean->params.seq_page_cost);
}

TEST_F(CalibRobustnessTest, TransientFailuresAreRetried) {
  NoiseModel noise;
  db_.set_noise_model(&noise);
  noise.InjectFailures(2);

  Calibrator calibrator(&db_);
  CalibrationOptions options;
  options.max_retries = 3;
  auto result = calibrator.Calibrate(Vm(0.5, 0.5, 0.5), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.retries, 2);
  EXPECT_EQ(result->stats.failed_queries, 0);
  EXPECT_GT(result->stats.backoff_ms, 0.0);
  EXPECT_EQ(result->num_queries, static_cast<int>(calibrator.suite().size()));
}

TEST_F(CalibRobustnessTest, RetryExhaustionDropsQueriesButSucceeds) {
  NoiseModel noise;
  db_.set_noise_model(&noise);
  // With max_retries = 0 and repeats = 1, each injected failure kills one
  // query's only attempt: the first four queries drop, eleven equations
  // remain, and the fit still succeeds (degraded, with warnings).
  noise.InjectFailures(4);

  Calibrator calibrator(&db_);
  auto result = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.failed_queries, 4);
  EXPECT_EQ(result->num_queries,
            static_cast<int>(calibrator.suite().size()) - 4);
  EXPECT_FALSE(result->warnings.empty());
  EXPECT_GT(result->params.cpu_tuple_cost, 0.0);
}

TEST_F(CalibRobustnessTest, TooManyFailuresIsAnError) {
  NoiseModel noise;
  db_.set_noise_model(&noise);
  noise.InjectFailures(15);  // kill every query in the suite

  Calibrator calibrator(&db_);
  auto result = calibrator.Calibrate(Vm(0.5, 0.5, 0.5));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
}

TEST_F(CalibRobustnessTest, ResidualBudgetFlagsButStillReturnsFit) {
  Calibrator calibrator(&db_);
  CalibrationOptions options;
  options.residual_budget_ms = 1e-9;  // no real fit is this good
  auto result = calibrator.Calibrate(Vm(0.5, 0.5, 0.5), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->accepted);
  EXPECT_GT(result->params.cpu_tuple_cost, 0.0);
  ASSERT_FALSE(result->warnings.empty());
  EXPECT_NE(result->warnings.back().find("budget"), std::string::npos);
}

TEST_F(CalibRobustnessTest, InvalidOptionsAreRejected) {
  Calibrator calibrator(&db_);
  CalibrationOptions options;
  options.repeats = 0;
  EXPECT_TRUE(calibrator.Calibrate(Vm(0.5, 0.5, 0.5), options)
                  .status()
                  .IsInvalidArgument());
  options.repeats = 1;
  options.max_retries = -1;
  EXPECT_TRUE(calibrator.Calibrate(Vm(0.5, 0.5, 0.5), options)
                  .status()
                  .IsInvalidArgument());
}

// --- Grid behavior under faults -------------------------------------------

TEST_F(CalibRobustnessTest, GridContinuesPastADeadPoint) {
  NoiseModel noise;
  db_.set_noise_model(&noise);
  // 15 failures with no retries kill every query of the first grid point;
  // the second point then calibrates cleanly.
  noise.InjectFailures(15);

  CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.75};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.5};
  CalibrationGridReport report;
  auto store = CalibrateGrid(&db_, sim::MachineSpec::PaperTestbed(),
                             sim::HypervisorModel::XenLike(), spec,
                             CalibrationOptions{}, nullptr, &report);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(report.succeeded, 1);
  EXPECT_EQ(report.failed, 1);
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_FALSE(report.points[0].ok);
  EXPECT_NE(report.points[0].error.find("too few"), std::string::npos)
      << report.points[0].error;
  EXPECT_TRUE(report.points[1].ok);
  EXPECT_NE(report.Summary().find("1 failed"), std::string::npos);
  // The hole is covered: lookups near the dead point still resolve.
  EXPECT_TRUE(store->Lookup(ResourceShare(0.25, 0.5, 0.5)).ok());
}

TEST_F(CalibRobustnessTest, GridFailsOnlyWhenEveryPointDies) {
  NoiseModel noise;
  db_.set_noise_model(&noise);
  noise.InjectFailures(30);  // both points' suites fail entirely

  CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.75};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.5};
  CalibrationGridReport report;
  auto store = CalibrateGrid(&db_, sim::MachineSpec::PaperTestbed(),
                             sim::HypervisorModel::XenLike(), spec,
                             CalibrationOptions{}, nullptr, &report);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(report.failed, 2);
  EXPECT_EQ(report.succeeded, 0);
}

TEST_F(CalibRobustnessTest, GridFlagsPointsOverResidualBudget) {
  CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.75};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.5};
  CalibrationOptions options;
  options.residual_budget_ms = 1e-9;
  CalibrationGridReport report;
  auto store = CalibrateGrid(&db_, sim::MachineSpec::PaperTestbed(),
                             sim::HypervisorModel::XenLike(), spec, options,
                             nullptr, &report);
  ASSERT_TRUE(store.ok()) << store.status();
  // Flagged fits are still stored (no interpolation hole), just reported.
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(report.succeeded, 2);
  EXPECT_EQ(report.flagged, 2);
  for (const GridPointReport& point : report.points) {
    EXPECT_TRUE(point.ok);
    EXPECT_FALSE(point.accepted);
    EXPECT_GT(point.residual_rms_ms, 1e-9);
  }
}

// --- Interpolation at and between grid points ------------------------------

TEST_F(CalibRobustnessTest, InterpolationExactAtPointsAndMonotoneBetween) {
  CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.75};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.5};
  auto store = CalibrateGrid(&db_, sim::MachineSpec::PaperTestbed(),
                             sim::HypervisorModel::XenLike(), spec);
  ASSERT_TRUE(store.ok()) << store.status();

  auto lo = store->Lookup(ResourceShare(0.25, 0.5, 0.5));
  auto hi = store->Lookup(ResourceShare(0.75, 0.5, 0.5));
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  const auto lo_vec = lo->CalibratedVector();
  const auto hi_vec = hi->CalibratedVector();

  // The exact midpoint is the average of the corners; every off-grid
  // point is componentwise between them and monotone along the axis.
  auto mid = store->Lookup(ResourceShare(0.5, 0.5, 0.5));
  ASSERT_TRUE(mid.ok());
  const auto mid_vec = mid->CalibratedVector();
  for (int k = 0; k < optimizer::OptimizerParams::kNumCalibrated; ++k) {
    EXPECT_NEAR(mid_vec[k], 0.5 * (lo_vec[k] + hi_vec[k]),
                1e-9 + 1e-9 * std::fabs(lo_vec[k] + hi_vec[k]))
        << "component " << k;
  }
  double previous_tuple_cost = lo->cpu_tuple_cost;
  for (double cpu : {0.35, 0.45, 0.55, 0.65}) {
    auto params = store->Lookup(ResourceShare(cpu, 0.5, 0.5));
    ASSERT_TRUE(params.ok()) << "cpu=" << cpu;
    const auto vec = params->CalibratedVector();
    for (int k = 0; k < optimizer::OptimizerParams::kNumCalibrated; ++k) {
      EXPECT_GE(vec[k], std::min(lo_vec[k], hi_vec[k]) - 1e-12);
      EXPECT_LE(vec[k], std::max(lo_vec[k], hi_vec[k]) + 1e-12);
    }
    // CPU costs shrink as the CPU share grows (linear in between).
    EXPECT_LE(params->cpu_tuple_cost, previous_tuple_cost + 1e-12)
        << "cpu=" << cpu;
    previous_tuple_cost = params->cpu_tuple_cost;
  }
}

}  // namespace
}  // namespace vdb::calib
