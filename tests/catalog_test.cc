#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/stats.h"
#include "catalog/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/random.h"

namespace vdb::catalog {
namespace {

TEST(ValueTest, Constructors) {
  EXPECT_EQ(Value::Int64(5).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Null(TypeId::kInt64).is_null());
  EXPECT_FALSE(Value::Int64(0).is_null());
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int64(4).AsDouble(), 4.0);
  EXPECT_EQ(Value::Double(4.9).AsInt64(), 4);
  EXPECT_EQ(Value::Bool(true).AsInt64(), 1);
}

TEST(ValueTest, CompareNumericAcrossTypes) {
  EXPECT_LT(Value::Compare(Value::Int64(1), Value::Double(1.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(2.5), Value::Int64(2)), 0);
  EXPECT_EQ(Value::Compare(Value::Int64(3), Value::Double(3.0)), 0);
  EXPECT_EQ(Value::Compare(Value::Date(100), Value::Int64(100)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::Compare(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_EQ(Value::Compare(Value::String("x"), Value::String("x")), 0);
}

TEST(ValueTest, EqualityNullSemantics) {
  EXPECT_FALSE(Value::Null(TypeId::kInt64) == Value::Null(TypeId::kInt64));
  EXPECT_FALSE(Value::Null(TypeId::kInt64) == Value::Int64(0));
  EXPECT_TRUE(Value::Int64(7) == Value::Int64(7));
}

TEST(ValueTest, NumericKeyPreservesStringOrder) {
  const Value a = Value::String("apple");
  const Value b = Value::String("banana");
  EXPECT_LT(a.NumericKey(), b.NumericKey());
  EXPECT_LT(Value::String("a").NumericKey(),
            Value::String("aa").NumericKey());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Null(TypeId::kString).ToString(), "NULL");
  EXPECT_EQ(Value::Date(DateFromYmd(1995, 6, 17)).ToString(), "1995-06-17");
}

TEST(DateTest, RoundTrips) {
  for (const auto& [y, m, d] : {std::tuple{1970, 1, 1}, {1992, 1, 1},
                                {1998, 8, 2}, {2000, 2, 29}, {1969, 12, 31}}) {
    const int64_t days = DateFromYmd(y, m, d);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
    EXPECT_EQ(DateToString(days), buf);
  }
  EXPECT_EQ(DateFromYmd(1970, 1, 1), 0);
  EXPECT_EQ(DateFromYmd(1970, 1, 2), 1);
}

TEST(DateTest, ParseValidAndInvalid) {
  auto d = ParseDate("1994-01-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, DateFromYmd(1994, 1, 1));
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("1994-13-01").ok());
  EXPECT_FALSE(ParseDate("1994-01-40").ok());
}

TEST(SchemaTest, ColumnLookupCaseInsensitive) {
  Schema schema({Column("A", TypeId::kInt64), Column("b", TypeId::kString)});
  auto idx = schema.ColumnIndex("a");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0u);
  idx = schema.ColumnIndex("B");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(schema.ColumnIndex("c").status().IsNotFound());
}

TEST(SchemaTest, Concat) {
  Schema a({Column("x", TypeId::kInt64)});
  Schema b({Column("y", TypeId::kDouble), Column("z", TypeId::kString)});
  Schema c = a.Concat(b);
  EXPECT_EQ(c.NumColumns(), 3u);
  EXPECT_EQ(c.column(2).name, "z");
}

TEST(TupleSerializationTest, RoundTripAllTypes) {
  Schema schema({Column("i", TypeId::kInt64), Column("d", TypeId::kDouble),
                 Column("s", TypeId::kString), Column("b", TypeId::kBool),
                 Column("t", TypeId::kDate)});
  Tuple tuple{Value::Int64(-77), Value::Double(3.25),
              Value::String("hello \0world"), Value::Bool(true),
              Value::Date(9000)};
  const std::string data = SerializeTuple(tuple, schema);
  auto back = DeserializeTuple(data, schema);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 5u);
  EXPECT_EQ((*back)[0].AsInt64(), -77);
  EXPECT_DOUBLE_EQ((*back)[1].AsDouble(), 3.25);
  EXPECT_EQ((*back)[2].AsString(), tuple[2].AsString());
  EXPECT_TRUE((*back)[3].AsBool());
  EXPECT_EQ((*back)[4].type(), TypeId::kDate);
  EXPECT_EQ((*back)[4].AsInt64(), 9000);
}

TEST(TupleSerializationTest, RoundTripNulls) {
  Schema schema({Column("i", TypeId::kInt64), Column("s", TypeId::kString)});
  Tuple tuple{Value::Null(TypeId::kInt64), Value::Null(TypeId::kString)};
  auto back = DeserializeTuple(SerializeTuple(tuple, schema), schema);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)[0].is_null());
  EXPECT_TRUE((*back)[1].is_null());
  EXPECT_EQ((*back)[0].type(), TypeId::kInt64);
}

TEST(TupleSerializationTest, TruncatedInputFails) {
  Schema schema({Column("i", TypeId::kInt64)});
  Tuple tuple{Value::Int64(5)};
  std::string data = SerializeTuple(tuple, schema);
  data.resize(data.size() - 1);
  EXPECT_FALSE(DeserializeTuple(data, schema).ok());
}

TEST(HistogramTest, UniformFractions) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i);
  Histogram hist = Histogram::Build(std::move(values), 32);
  EXPECT_FALSE(hist.empty());
  EXPECT_NEAR(hist.FractionBelow(5000), 0.5, 0.05);
  EXPECT_NEAR(hist.FractionBetween(2500, 7500), 0.5, 0.05);
  EXPECT_DOUBLE_EQ(hist.FractionBelow(-1), 0.0);
  EXPECT_DOUBLE_EQ(hist.FractionBelow(10001), 1.0);
}

TEST(HistogramTest, SkewedData) {
  // 90% of values are < 10; the histogram should capture that.
  std::vector<double> values;
  for (int i = 0; i < 9000; ++i) values.push_back(i % 10);
  for (int i = 0; i < 1000; ++i) values.push_back(100 + i);
  Histogram hist = Histogram::Build(std::move(values), 32);
  EXPECT_NEAR(hist.FractionBelow(50), 0.9, 0.05);
}

TEST(HistogramTest, DegenerateSingleValue) {
  Histogram hist = Histogram::Build(std::vector<double>(100, 5.0), 32);
  EXPECT_DOUBLE_EQ(hist.FractionBelow(4.9), 0.0);
  EXPECT_DOUBLE_EQ(hist.FractionBelow(5.0), 1.0);
  EXPECT_NEAR(hist.FractionBetween(4.0, 6.0), 1.0, 1e-9);
}

TEST(HistogramTest, EmptyInput) {
  Histogram hist = Histogram::Build({}, 32);
  EXPECT_TRUE(hist.empty());
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : pool_(&disk_, 256), catalog_(&disk_, &pool_) {}

  TableInfo* MakePeople() {
    auto table = catalog_.CreateTable(
        "people", Schema({Column("id", TypeId::kInt64),
                          Column("age", TypeId::kInt64),
                          Column("name", TypeId::kString)}));
    VDB_CHECK(table.ok());
    return *table;
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGetTable) {
  TableInfo* table = MakePeople();
  EXPECT_EQ(table->name, "people");
  auto found = catalog_.GetTable("PEOPLE");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, table);
  EXPECT_TRUE(catalog_.GetTable("nope").status().IsNotFound());
  EXPECT_TRUE(catalog_.CreateTable("people", table->schema)
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(
      catalog_.CreateTable("empty", Schema()).status().IsInvalidArgument());
}

TEST_F(CatalogTest, InsertAndScan) {
  TableInfo* table = MakePeople();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(catalog_
                    .Insert(table, Tuple{Value::Int64(i),
                                         Value::Int64(20 + i % 60),
                                         Value::String("p" +
                                                       std::to_string(i))})
                    .ok());
  }
  int count = 0;
  for (auto it = table->heap->Begin(); it.Valid(); it.Next()) {
    auto tuple = DeserializeTuple(it.record(), table->schema);
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ((*tuple)[0].AsInt64(), count);
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST_F(CatalogTest, InsertArityMismatch) {
  TableInfo* table = MakePeople();
  EXPECT_TRUE(catalog_.Insert(table, Tuple{Value::Int64(1)})
                  .IsInvalidArgument());
}

TEST_F(CatalogTest, IndexBackfillAndMaintenance) {
  TableInfo* table = MakePeople();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(catalog_
                    .Insert(table, Tuple{Value::Int64(i),
                                         Value::Int64(i % 5),
                                         Value::String("x")})
                    .ok());
  }
  // Index created after load is back-filled.
  auto index = catalog_.CreateIndex("people_age", "people", "age");
  ASSERT_TRUE(index.ok());
  auto rids = (*index)->tree->Lookup(3);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 6u);
  // New inserts maintain the index.
  ASSERT_TRUE(catalog_
                  .Insert(table, Tuple{Value::Int64(100), Value::Int64(3),
                                       Value::String("y")})
                  .ok());
  rids = (*index)->tree->Lookup(3);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 7u);
}

TEST_F(CatalogTest, IndexedLookupFetchesCorrectTuples) {
  TableInfo* table = MakePeople();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(catalog_
                    .Insert(table, Tuple{Value::Int64(i),
                                         Value::Int64(1000 + i),
                                         Value::String("n" +
                                                       std::to_string(i))})
                    .ok());
  }
  auto index = catalog_.CreateIndex("people_id", "people", "id");
  ASSERT_TRUE(index.ok());
  auto rids = (*index)->tree->Lookup(17);
  ASSERT_TRUE(rids.ok());
  ASSERT_EQ(rids->size(), 1u);
  auto record =
      table->heap->Get(storage::RecordId::Unpack((*rids)[0]));
  ASSERT_TRUE(record.ok());
  auto tuple = DeserializeTuple(*record, table->schema);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ((*tuple)[1].AsInt64(), 1017);
  EXPECT_EQ((*tuple)[2].AsString(), "n17");
}

TEST_F(CatalogTest, IndexErrors) {
  MakePeople();
  EXPECT_TRUE(catalog_.CreateIndex("i1", "nope", "id").status().IsNotFound());
  EXPECT_TRUE(
      catalog_.CreateIndex("i1", "people", "nope").status().IsNotFound());
  EXPECT_TRUE(catalog_.CreateIndex("i1", "people", "name")
                  .status()
                  .IsNotSupported());
  ASSERT_TRUE(catalog_.CreateIndex("i1", "people", "id").ok());
  EXPECT_TRUE(catalog_.CreateIndex("i1", "people", "age")
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(catalog_.GetIndex("i1").ok());
  EXPECT_TRUE(catalog_.GetIndex("i2").status().IsNotFound());
}

TEST_F(CatalogTest, NullsSkippedByIndex) {
  TableInfo* table = MakePeople();
  ASSERT_TRUE(catalog_
                  .Insert(table, Tuple{Value::Int64(1),
                                       Value::Null(TypeId::kInt64),
                                       Value::String("a")})
                  .ok());
  auto index = catalog_.CreateIndex("people_age", "people", "age");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->tree->NumEntries(), 0u);
}

TEST_F(CatalogTest, AnalyzeComputesStats) {
  TableInfo* table = MakePeople();
  Random rng(3);
  const int rows = 500;
  for (int i = 0; i < rows; ++i) {
    const bool null_age = i % 10 == 0;
    ASSERT_TRUE(
        catalog_
            .Insert(table,
                    Tuple{Value::Int64(i),
                          null_age ? Value::Null(TypeId::kInt64)
                                   : Value::Int64(rng.UniformInt(0, 49)),
                          Value::String("name-" + std::to_string(i % 7))})
            .ok());
  }
  ASSERT_TRUE(catalog_.Analyze(table).ok());
  const TableStats& stats = table->stats;
  EXPECT_EQ(stats.row_count, static_cast<uint64_t>(rows));
  EXPECT_GT(stats.page_count, 0u);
  ASSERT_EQ(stats.columns.size(), 3u);
  // id: unique, no nulls.
  EXPECT_EQ(stats.columns[0].ndv, static_cast<uint64_t>(rows));
  EXPECT_EQ(stats.columns[0].null_count, 0u);
  EXPECT_DOUBLE_EQ(stats.columns[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats.columns[0].max, rows - 1.0);
  // age: 50 distinct, 10% null.
  EXPECT_NEAR(static_cast<double>(stats.columns[1].ndv), 50.0, 3.0);
  EXPECT_NEAR(stats.columns[1].NullFraction(), 0.1, 0.01);
  // name: 7 distinct strings.
  EXPECT_EQ(stats.columns[2].ndv, 7u);
  EXPECT_GT(stats.columns[2].avg_width, 4.0);
}

TEST_F(CatalogTest, AnalyzeAllAndTablesList) {
  MakePeople();
  ASSERT_TRUE(
      catalog_.CreateTable("t2", Schema({Column("x", TypeId::kInt64)})).ok());
  EXPECT_EQ(catalog_.Tables().size(), 2u);
  ASSERT_TRUE(catalog_.AnalyzeAll().ok());
  for (TableInfo* table : catalog_.Tables()) {
    EXPECT_TRUE(table->stats.Analyzed());
  }
}

}  // namespace
}  // namespace vdb::catalog
