#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "util/random.h"

namespace vdb::storage {
namespace {

TEST(PageTest, TypedReadWrite) {
  Page page;
  page.WriteAt<uint32_t>(100, 0xdeadbeef);
  page.WriteAt<int64_t>(200, -42);
  EXPECT_EQ(page.ReadAt<uint32_t>(100), 0xdeadbeefu);
  EXPECT_EQ(page.ReadAt<int64_t>(200), -42);
  page.Zero();
  EXPECT_EQ(page.ReadAt<uint32_t>(100), 0u);
}

TEST(RecordIdTest, PackUnpackRoundTrip) {
  const RecordId rid{123456789ULL, 4321};
  const RecordId back = RecordId::Unpack(rid.Pack());
  EXPECT_EQ(back, rid);
}

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk;
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  EXPECT_NE(a, b);
  EXPECT_EQ(disk.NumPages(), 2u);
  Page page;
  page.WriteAt<uint64_t>(0, 77);
  disk.WritePage(a, page);
  Page out;
  disk.ReadPage(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 77u);
  disk.ReadPage(b, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  DiskManager disk_;
};

TEST_F(BufferPoolTest, HitsAndMissesCounted) {
  BufferPool pool(&disk_, 4);
  const PageId p = disk_.AllocatePage();
  auto page = pool.FetchPage(p, AccessPattern::kSequential);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  EXPECT_EQ(pool.stats().sequential_misses, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
  page = pool.FetchPage(p, AccessPattern::kRandom);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().Misses(), 1u);
}

TEST_F(BufferPoolTest, EvictsUnpinnedWhenFull) {
  BufferPool pool(&disk_, 2);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(disk_.AllocatePage());
  for (const PageId p : pages) {
    auto page = pool.FetchPage(p, AccessPattern::kRandom);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  EXPECT_EQ(pool.stats().random_misses, 4u);
  EXPECT_LE(pool.NumCachedPages(), 2u);
}

TEST_F(BufferPoolTest, FailsWhenAllPinned) {
  BufferPool pool(&disk_, 2);
  const PageId a = disk_.AllocatePage();
  const PageId b = disk_.AllocatePage();
  const PageId c = disk_.AllocatePage();
  ASSERT_TRUE(pool.FetchPage(a, AccessPattern::kRandom).ok());
  ASSERT_TRUE(pool.FetchPage(b, AccessPattern::kRandom).ok());
  auto third = pool.FetchPage(c, AccessPattern::kRandom);
  EXPECT_TRUE(third.status().IsResourceExhausted());
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  third = pool.FetchPage(c, AccessPattern::kRandom);
  EXPECT_TRUE(third.ok());
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEvict) {
  BufferPool pool(&disk_, 1);
  const PageId a = disk_.AllocatePage();
  const PageId b = disk_.AllocatePage();
  {
    auto page = pool.FetchPage(a, AccessPattern::kRandom);
    ASSERT_TRUE(page.ok());
    (*page)->WriteAt<uint64_t>(0, 99);
    ASSERT_TRUE(pool.UnpinPage(a, true).ok());
  }
  // Force eviction of `a`.
  ASSERT_TRUE(pool.FetchPage(b, AccessPattern::kRandom).ok());
  ASSERT_TRUE(pool.UnpinPage(b, false).ok());
  Page out;
  disk_.ReadPage(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 99u);
  EXPECT_GE(pool.stats().page_writes, 1u);
}

TEST_F(BufferPoolTest, PinnedPageSurvivesEvictionPressure) {
  BufferPool pool(&disk_, 2);
  const PageId a = disk_.AllocatePage();
  auto page = pool.FetchPage(a, AccessPattern::kRandom);
  ASSERT_TRUE(page.ok());
  (*page)->WriteAt<uint64_t>(0, 1234);
  for (int i = 0; i < 10; ++i) {
    const PageId p = disk_.AllocatePage();
    auto other = pool.FetchPage(p, AccessPattern::kRandom);
    ASSERT_TRUE(other.ok());
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  // `a` is still resident and intact.
  auto again = pool.FetchPage(a, AccessPattern::kRandom);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *page);
  EXPECT_EQ((*again)->ReadAt<uint64_t>(0), 1234u);
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
}

TEST_F(BufferPoolTest, UnpinErrors) {
  BufferPool pool(&disk_, 2);
  const PageId a = disk_.AllocatePage();
  EXPECT_TRUE(pool.UnpinPage(a, false).IsNotFound());
  ASSERT_TRUE(pool.FetchPage(a, AccessPattern::kRandom).ok());
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  EXPECT_TRUE(pool.UnpinPage(a, false).IsInternal());
}

TEST_F(BufferPoolTest, EvictAllColdStarts) {
  BufferPool pool(&disk_, 4);
  const PageId a = disk_.AllocatePage();
  ASSERT_TRUE(pool.FetchPage(a, AccessPattern::kRandom).ok());
  ASSERT_TRUE(pool.UnpinPage(a, true).ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  EXPECT_EQ(pool.NumCachedPages(), 0u);
  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(a, AccessPattern::kRandom).ok());
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  EXPECT_EQ(pool.stats().random_misses, 1u);
}

TEST_F(BufferPoolTest, ResizeShrinkKeepsPinned) {
  BufferPool pool(&disk_, 8);
  const PageId pinned = disk_.AllocatePage();
  auto page = pool.FetchPage(pinned, AccessPattern::kRandom);
  ASSERT_TRUE(page.ok());
  (*page)->WriteAt<uint64_t>(8, 555);
  for (int i = 0; i < 6; ++i) {
    const PageId p = disk_.AllocatePage();
    ASSERT_TRUE(pool.FetchPage(p, AccessPattern::kRandom).ok());
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  ASSERT_TRUE(pool.Resize(2).ok());
  EXPECT_EQ(pool.capacity_pages(), 2u);
  auto again = pool.FetchPage(pinned, AccessPattern::kRandom);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->ReadAt<uint64_t>(8), 555u);
  ASSERT_TRUE(pool.UnpinPage(pinned, false).ok());
  ASSERT_TRUE(pool.UnpinPage(pinned, true).ok());
  ASSERT_TRUE(pool.Resize(16).ok());
  EXPECT_EQ(pool.capacity_pages(), 16u);
}

class IoCounter : public IoListener {
 public:
  void OnPageRead(AccessPattern pattern) override {
    if (pattern == AccessPattern::kSequential) {
      ++seq;
    } else {
      ++random;
    }
  }
  void OnPageWrite() override { ++writes; }
  int seq = 0;
  int random = 0;
  int writes = 0;
};

TEST_F(BufferPoolTest, ListenerSeesPhysicalIoOnly) {
  BufferPool pool(&disk_, 4);
  IoCounter counter;
  pool.SetIoListener(&counter);
  const PageId a = disk_.AllocatePage();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.FetchPage(a, AccessPattern::kSequential).ok());
    ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  }
  EXPECT_EQ(counter.seq, 1);  // one miss, two hits
  EXPECT_EQ(counter.random, 0);
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&disk_, 16), heap_(&disk_, &pool_) {}
  DiskManager disk_;
  BufferPool pool_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, InsertAndGet) {
  auto rid = heap_.Insert("hello world");
  ASSERT_TRUE(rid.ok());
  auto rec = heap_.Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello world");
  EXPECT_EQ(heap_.NumRecords(), 1u);
}

TEST_F(HeapFileTest, EmptyRecordAllowed) {
  auto rid = heap_.Insert("");
  ASSERT_TRUE(rid.ok());
  auto rec = heap_.Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "");
}

TEST_F(HeapFileTest, RejectsOversizedRecord) {
  const std::string huge(kPageSize, 'x');
  EXPECT_TRUE(heap_.Insert(huge).status().IsInvalidArgument());
}

TEST_F(HeapFileTest, SpillsToMultiplePages) {
  const std::string record(1000, 'r');
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(heap_.Insert(record).ok());
  }
  EXPECT_GT(heap_.NumPages(), 1u);
  EXPECT_EQ(heap_.NumRecords(), 30u);
}

TEST_F(HeapFileTest, ScanSeesAllRecordsInOrder) {
  std::vector<std::string> inserted;
  for (int i = 0; i < 100; ++i) {
    inserted.push_back("record-" + std::to_string(i) +
                       std::string(i % 50, 'p'));
    ASSERT_TRUE(heap_.Insert(inserted.back()).ok());
  }
  std::vector<std::string> scanned;
  for (auto it = heap_.Begin(); it.Valid(); it.Next()) {
    scanned.push_back(it.record());
  }
  EXPECT_EQ(scanned, inserted);
}

TEST_F(HeapFileTest, DeleteHidesRecord) {
  auto a = heap_.Insert("a");
  auto b = heap_.Insert("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(heap_.Delete(*a).ok());
  EXPECT_TRUE(heap_.Get(*a).status().IsNotFound());
  EXPECT_TRUE(heap_.Get(*b).ok());
  EXPECT_EQ(heap_.NumRecords(), 1u);
  int count = 0;
  for (auto it = heap_.Begin(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 1);
  // Double delete reports NotFound.
  EXPECT_TRUE(heap_.Delete(*a).IsNotFound());
}

TEST_F(HeapFileTest, GetInvalidSlot) {
  auto rid = heap_.Insert("x");
  ASSERT_TRUE(rid.ok());
  RecordId bad = *rid;
  bad.slot = 99;
  EXPECT_TRUE(heap_.Get(bad).status().IsNotFound());
}

TEST_F(HeapFileTest, ScanOfEmptyHeapIsInvalid) {
  auto it = heap_.Begin();
  EXPECT_FALSE(it.Valid());
}

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_, 64), tree_(&disk_, &pool_) {}
  DiskManager disk_;
  BufferPool pool_;
  BPlusTree tree_;
};

TEST_F(BTreeTest, EmptyTreeLookups) {
  auto values = tree_.Lookup(5);
  ASSERT_TRUE(values.ok());
  EXPECT_TRUE(values->empty());
  EXPECT_FALSE(tree_.Begin().Valid());
  EXPECT_EQ(tree_.NumEntries(), 0u);
  EXPECT_EQ(tree_.Height(), 1u);
}

TEST_F(BTreeTest, InsertAndLookup) {
  ASSERT_TRUE(tree_.Insert(10, 100).ok());
  ASSERT_TRUE(tree_.Insert(20, 200).ok());
  ASSERT_TRUE(tree_.Insert(15, 150).ok());
  auto v = tree_.Lookup(15);
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0], 150u);
  EXPECT_TRUE(tree_.Lookup(16)->empty());
  EXPECT_EQ(tree_.NumEntries(), 3u);
}

TEST_F(BTreeTest, DuplicateKeys) {
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree_.Insert(7, 1000 + i).ok());
  }
  auto v = tree_.Lookup(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 10u);
  std::set<uint64_t> values(v->begin(), v->end());
  EXPECT_EQ(values.size(), 10u);
}

TEST_F(BTreeTest, SplitsKeepOrder) {
  // Enough entries to force several leaf splits and a root split.
  Random rng(17);
  std::vector<int64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.UniformInt(0, 100000));
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(tree_.Insert(keys[i], i).ok());
  }
  EXPECT_GT(tree_.Height(), 1u);
  EXPECT_EQ(tree_.NumEntries(), keys.size());
  std::vector<int64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  size_t index = 0;
  for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
    ASSERT_LT(index, sorted.size());
    EXPECT_EQ(it.key(), sorted[index]) << "at position " << index;
    ++index;
  }
  EXPECT_EQ(index, sorted.size());
}

TEST_F(BTreeTest, SeekGEFindsFirstAtLeast) {
  for (int64_t k = 0; k < 1000; k += 10) {
    ASSERT_TRUE(tree_.Insert(k, static_cast<uint64_t>(k)).ok());
  }
  auto it = tree_.SeekGE(95);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 100);
  it = tree_.SeekGE(100);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 100);
  it = tree_.SeekGE(0);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 0);
  it = tree_.SeekGE(991);
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, RangeScan) {
  for (int64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_.Insert(k, static_cast<uint64_t>(k * 2)).ok());
  }
  int64_t expected = 500;
  for (auto it = tree_.SeekGE(500); it.Valid() && it.key() <= 1500;
       it.Next()) {
    EXPECT_EQ(it.key(), expected);
    EXPECT_EQ(it.value(), static_cast<uint64_t>(expected * 2));
    ++expected;
  }
  EXPECT_EQ(expected, 1501);
}

TEST_F(BTreeTest, DuplicatesAcrossSplits) {
  // Insert many duplicates of a few keys to force duplicates to span leaves.
  for (int rep = 0; rep < 800; ++rep) {
    for (int64_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(
          tree_.Insert(k, static_cast<uint64_t>(rep * 10 + k)).ok());
    }
  }
  for (int64_t k = 0; k < 3; ++k) {
    auto v = tree_.Lookup(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->size(), 800u) << "key " << k;
  }
}

TEST_F(BTreeTest, DeleteRemovesSingleEntry) {
  ASSERT_TRUE(tree_.Insert(5, 50).ok());
  ASSERT_TRUE(tree_.Insert(5, 51).ok());
  ASSERT_TRUE(tree_.Delete(5, 50).ok());
  auto v = tree_.Lookup(5);
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0], 51u);
  EXPECT_TRUE(tree_.Delete(5, 50).IsNotFound());
  EXPECT_TRUE(tree_.Delete(99, 1).IsNotFound());
  EXPECT_EQ(tree_.NumEntries(), 1u);
}

TEST_F(BTreeTest, DeleteInLargeTree) {
  for (int64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(tree_.Insert(k, static_cast<uint64_t>(k)).ok());
  }
  for (int64_t k = 0; k < 3000; k += 2) {
    ASSERT_TRUE(tree_.Delete(k, static_cast<uint64_t>(k)).ok());
  }
  EXPECT_EQ(tree_.NumEntries(), 1500u);
  for (int64_t k = 0; k < 3000; ++k) {
    auto v = tree_.Lookup(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->size(), (k % 2 == 0) ? 0u : 1u) << "key " << k;
  }
}

TEST_F(BTreeTest, WorksWithTinyBufferPool) {
  // The tree must function when the pool is much smaller than the tree.
  DiskManager disk;
  BufferPool pool(&disk, 4);
  BPlusTree tree(&disk, &pool);
  for (int64_t k = 0; k < 4000; ++k) {
    ASSERT_TRUE(tree.Insert(k * 7 % 4000, static_cast<uint64_t>(k)).ok());
  }
  EXPECT_EQ(tree.NumEntries(), 4000u);
  uint64_t count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 4000u);
  EXPECT_GT(pool.stats().Misses(), 0u);
}

// Property test: tree contents always match a reference multimap across a
// random interleaving of inserts and deletes, for several seeds.
class BTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzzTest, MatchesReferenceMultimap) {
  SCOPED_TRACE("re-run this seed with VDB_TEST_SEED=" +
               std::to_string(GetParam()));
  DiskManager disk;
  BufferPool pool(&disk, 32);
  BPlusTree tree(&disk, &pool);
  std::multimap<int64_t, uint64_t> reference;
  Random rng(GetParam());
  for (int op = 0; op < 4000; ++op) {
    const int64_t key = rng.UniformInt(0, 200);
    if (rng.NextDouble() < 0.7 || reference.empty()) {
      const uint64_t value = rng.NextUint64() % 1000000;
      ASSERT_TRUE(tree.Insert(key, value).ok());
      reference.emplace(key, value);
    } else {
      auto it = reference.find(key);
      if (it != reference.end()) {
        ASSERT_TRUE(tree.Delete(key, it->second).ok());
        reference.erase(it);
      } else {
        EXPECT_TRUE(tree.Delete(key, 0xdead).IsNotFound());
      }
    }
  }
  ASSERT_EQ(tree.NumEntries(), reference.size());
  // Compare full ordered contents.
  auto it = tree.Begin();
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), key);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
  // Compare per-key value sets.
  for (int64_t key = 0; key <= 200; ++key) {
    auto values = tree.Lookup(key);
    ASSERT_TRUE(values.ok());
    auto range = reference.equal_range(key);
    std::multiset<uint64_t> expected;
    for (auto r = range.first; r != range.second; ++r) {
      expected.insert(r->second);
    }
    std::multiset<uint64_t> actual(values->begin(), values->end());
    EXPECT_EQ(actual, expected) << "key " << key;
  }
}

// Default seed spread, overridable with VDB_TEST_SEED=<n> to reproduce a
// single failing seed. The seed value is part of the test name.
std::vector<uint64_t> FuzzSeeds() {
  if (const char* env = std::getenv("VDB_TEST_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3, 5, 8, 13};
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzzTest,
                         ::testing::ValuesIn(FuzzSeeds()),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vdb::storage
