#include <string>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/expr.h"
#include "plan/logical.h"
#include "plan/planner.h"
#include "plan/rewriter.h"
#include "sql/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace vdb::plan {
namespace {

using catalog::Column;
using catalog::Schema;
using catalog::TypeId;
using catalog::Value;

// --- bound expression evaluation -----------------------------------------

BoundExprPtr Const(Value v) { return std::make_unique<ConstantExpr>(v); }

BoundExprPtr Col(int table, int index, TypeId type) {
  return std::make_unique<ColumnExpr>(ColumnId{table, index}, "c", type);
}

BoundExprPtr Bin(sql::BinaryOp op, BoundExprPtr l, BoundExprPtr r,
                 TypeId type) {
  return std::make_unique<BinaryBoundExpr>(op, std::move(l), std::move(r),
                                           type);
}

TEST(BoundExprTest, ArithmeticAndComparison) {
  auto add = Bin(sql::BinaryOp::kAdd, Const(Value::Int64(2)),
                 Const(Value::Int64(3)), TypeId::kInt64);
  EXPECT_EQ(add->Evaluate({}).AsInt64(), 5);
  auto mul = Bin(sql::BinaryOp::kMul, Const(Value::Double(2.5)),
                 Const(Value::Int64(4)), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(mul->Evaluate({}).AsDouble(), 10.0);
  auto lt = Bin(sql::BinaryOp::kLt, Const(Value::Int64(1)),
                Const(Value::Double(1.5)), TypeId::kBool);
  EXPECT_TRUE(lt->Evaluate({}).AsBool());
}

TEST(BoundExprTest, DivisionByZeroIsNull) {
  auto div = Bin(sql::BinaryOp::kDiv, Const(Value::Int64(1)),
                 Const(Value::Int64(0)), TypeId::kInt64);
  EXPECT_TRUE(div->Evaluate({}).is_null());
  auto mod = Bin(sql::BinaryOp::kMod, Const(Value::Int64(1)),
                 Const(Value::Int64(0)), TypeId::kInt64);
  EXPECT_TRUE(mod->Evaluate({}).is_null());
}

TEST(BoundExprTest, ThreeValuedLogicAnd) {
  const Value kNull = Value::Null(TypeId::kBool);
  const Value kTrue = Value::Bool(true);
  const Value kFalse = Value::Bool(false);
  auto eval_and = [&](Value a, Value b) {
    auto expr = Bin(sql::BinaryOp::kAnd, Const(a), Const(b), TypeId::kBool);
    return expr->Evaluate({});
  };
  EXPECT_TRUE(eval_and(kTrue, kTrue).AsBool());
  EXPECT_FALSE(eval_and(kTrue, kFalse).AsBool());
  // FALSE AND NULL = FALSE (either order).
  EXPECT_FALSE(eval_and(kFalse, kNull).AsBool());
  EXPECT_FALSE(eval_and(kNull, kFalse).AsBool());
  // TRUE AND NULL = NULL.
  EXPECT_TRUE(eval_and(kTrue, kNull).is_null());
  EXPECT_TRUE(eval_and(kNull, kNull).is_null());
}

TEST(BoundExprTest, ThreeValuedLogicOr) {
  const Value kNull = Value::Null(TypeId::kBool);
  const Value kTrue = Value::Bool(true);
  const Value kFalse = Value::Bool(false);
  auto eval_or = [&](Value a, Value b) {
    auto expr = Bin(sql::BinaryOp::kOr, Const(a), Const(b), TypeId::kBool);
    return expr->Evaluate({});
  };
  EXPECT_TRUE(eval_or(kFalse, kTrue).AsBool());
  // TRUE OR NULL = TRUE (either order).
  EXPECT_TRUE(eval_or(kTrue, kNull).AsBool());
  EXPECT_TRUE(eval_or(kNull, kTrue).AsBool());
  // FALSE OR NULL = NULL.
  EXPECT_TRUE(eval_or(kFalse, kNull).is_null());
}

TEST(BoundExprTest, ComparisonWithNullIsNull) {
  auto expr = Bin(sql::BinaryOp::kEq, Const(Value::Null(TypeId::kInt64)),
                  Const(Value::Int64(1)), TypeId::kBool);
  EXPECT_TRUE(expr->Evaluate({}).is_null());
  EXPECT_FALSE(EvaluatesToTrue(*expr, {}));
}

TEST(BoundExprTest, ColumnResolution) {
  auto col = Col(3, 1, TypeId::kInt64);
  Layout layout;
  layout[ColumnId{3, 1}] = 0;
  ASSERT_TRUE(col->ResolveSlots(layout).ok());
  catalog::Tuple row{Value::Int64(42)};
  EXPECT_EQ(col->Evaluate(row).AsInt64(), 42);
  // Missing column errors.
  auto missing = Col(9, 9, TypeId::kInt64);
  EXPECT_FALSE(missing->ResolveSlots(layout).ok());
}

TEST(BoundExprTest, LikeEvaluation) {
  auto like = std::make_unique<LikeBoundExpr>(
      Const(Value::String("special requests")), "%special%requests%",
      false);
  EXPECT_TRUE(like->Evaluate({}).AsBool());
  auto not_like = std::make_unique<LikeBoundExpr>(
      Const(Value::String("nothing here")), "%special%requests%", true);
  EXPECT_TRUE(not_like->Evaluate({}).AsBool());
  auto null_like = std::make_unique<LikeBoundExpr>(
      Const(Value::Null(TypeId::kString)), "%x%", false);
  EXPECT_TRUE(null_like->Evaluate({}).is_null());
}

TEST(BoundExprTest, InListEvaluation) {
  std::vector<Value> list{Value::Int64(1), Value::Int64(3)};
  auto in = std::make_unique<InListBoundExpr>(Const(Value::Int64(3)), list,
                                              false);
  EXPECT_TRUE(in->Evaluate({}).AsBool());
  auto not_in = std::make_unique<InListBoundExpr>(Const(Value::Int64(2)),
                                                  list, true);
  EXPECT_TRUE(not_in->Evaluate({}).AsBool());
}

TEST(BoundExprTest, OpCountWeightsLike) {
  auto cmp = Bin(sql::BinaryOp::kEq, Col(0, 0, TypeId::kInt64),
                 Const(Value::Int64(1)), TypeId::kBool);
  auto like = std::make_unique<LikeBoundExpr>(Col(0, 1, TypeId::kString),
                                              "%special%requests%", false);
  EXPECT_GT(like->OpCount(), cmp->OpCount());
}

TEST(BoundExprTest, CloneIsDeep) {
  auto expr = Bin(sql::BinaryOp::kAdd, Col(0, 0, TypeId::kInt64),
                  Const(Value::Int64(1)), TypeId::kInt64);
  auto clone = expr->Clone();
  Layout layout;
  layout[ColumnId{0, 0}] = 0;
  ASSERT_TRUE(clone->ResolveSlots(layout).ok());
  // Original remains unresolved; clone works.
  catalog::Tuple row{Value::Int64(9)};
  EXPECT_EQ(clone->Evaluate(row).AsInt64(), 10);
}

// --- planner --------------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : pool_(&disk_, 512), catalog_(&disk_, &pool_) {
    VDB_CHECK(catalog_
                  .CreateTable("t",
                               Schema({Column("a", TypeId::kInt64),
                                       Column("b", TypeId::kInt64),
                                       Column("s", TypeId::kString),
                                       Column("d", TypeId::kDouble)}))
                  .ok());
    VDB_CHECK(catalog_
                  .CreateTable("u", Schema({Column("a", TypeId::kInt64),
                                            Column("x", TypeId::kInt64)}))
                  .ok());
  }

  Result<LogicalNodePtr> PlanSql(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    Planner planner(&catalog_);
    return planner.Plan(**stmt);
  }

  Result<LogicalNodePtr> PlanAndPush(const std::string& sql) {
    auto plan = PlanSql(sql);
    if (!plan.ok()) return plan.status();
    return PushDownPredicates(std::move(*plan));
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

TEST_F(PlannerTest, SimpleSelectShape) {
  auto plan = PlanSql("select a, b from t where a > 5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Project over Filter over Get.
  EXPECT_EQ((*plan)->op, LogicalOp::kProject);
  EXPECT_EQ((*plan)->output.size(), 2u);
  const LogicalNode* filter = (*plan)->children[0].get();
  EXPECT_EQ(filter->op, LogicalOp::kFilter);
  EXPECT_EQ(filter->children[0]->op, LogicalOp::kGet);
}

TEST_F(PlannerTest, SelectStarExpandsAllColumns) {
  auto plan = PlanSql("select * from t");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->output.size(), 4u);
  EXPECT_EQ((*plan)->output[0].name, "a");
  EXPECT_EQ((*plan)->output[3].name, "d");
}

TEST_F(PlannerTest, UnknownTableAndColumnErrors) {
  EXPECT_TRUE(PlanSql("select a from nope").status().IsNotFound());
  EXPECT_TRUE(PlanSql("select zzz from t").status().IsNotFound());
}

TEST_F(PlannerTest, AmbiguousColumnError) {
  // `a` exists in both t and u.
  auto plan = PlanSql("select a from t, u");
  EXPECT_TRUE(plan.status().IsInvalidArgument());
  // Qualified reference is fine.
  EXPECT_TRUE(PlanSql("select t.a from t, u").ok());
}

TEST_F(PlannerTest, TypeErrors) {
  EXPECT_FALSE(PlanSql("select a + s from t").ok());
  EXPECT_FALSE(PlanSql("select * from t where a like '%x%'").ok());
  EXPECT_FALSE(PlanSql("select * from t where s > 5").ok());
  EXPECT_FALSE(PlanSql("select * from t where a").ok());
  EXPECT_FALSE(PlanSql("select sum(s) from t").ok());
}

TEST_F(PlannerTest, ConstantFolding) {
  auto plan = PlanSql("select a * (2 + 3) from t");
  ASSERT_TRUE(plan.ok());
  const auto* project = static_cast<const LogicalProject*>(plan->get());
  const auto* mul =
      dynamic_cast<const BinaryBoundExpr*>(project->exprs[0].get());
  ASSERT_NE(mul, nullptr);
  const auto* folded =
      dynamic_cast<const ConstantExpr*>(&mul->right());
  ASSERT_NE(folded, nullptr);
  EXPECT_EQ(folded->value().AsInt64(), 5);
}

TEST_F(PlannerTest, AggregatePlanShape) {
  auto plan = PlanSql(
      "select b, count(*), sum(a) from t group by b having count(*) > 1 "
      "order by b");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Sort > Project > Filter(having) > Aggregate > Get.
  const LogicalNode* node = plan->get();
  ASSERT_EQ(node->op, LogicalOp::kSort);
  node = node->children[0].get();
  ASSERT_EQ(node->op, LogicalOp::kProject);
  node = node->children[0].get();
  ASSERT_EQ(node->op, LogicalOp::kFilter);
  node = node->children[0].get();
  ASSERT_EQ(node->op, LogicalOp::kAggregate);
  const auto* aggregate = static_cast<const LogicalAggregate*>(node);
  EXPECT_EQ(aggregate->group_exprs.size(), 1u);
  ASSERT_EQ(aggregate->aggs.size(), 2u);
  EXPECT_EQ(aggregate->aggs[0].kind, AggKind::kCountStar);
  EXPECT_EQ(aggregate->aggs[1].kind, AggKind::kSum);
}

TEST_F(PlannerTest, AggregateWithoutGroupBy) {
  auto plan = PlanSql("select count(*), avg(d) from t");
  ASSERT_TRUE(plan.ok());
  const LogicalNode* project = plan->get();
  const auto* aggregate = static_cast<const LogicalAggregate*>(
      project->children[0].get());
  EXPECT_TRUE(aggregate->group_exprs.empty());
  EXPECT_EQ(aggregate->aggs.size(), 2u);
  EXPECT_EQ(aggregate->aggs[1].output_type, TypeId::kDouble);
}

TEST_F(PlannerTest, NonGroupedColumnRejected) {
  EXPECT_FALSE(PlanSql("select a, count(*) from t group by b").ok());
}

TEST_F(PlannerTest, JoinPlanShape) {
  auto plan = PlanSql("select t.a, u.x from t join u on t.a = u.a");
  ASSERT_TRUE(plan.ok());
  const LogicalNode* join = (*plan)->children[0].get();
  ASSERT_EQ(join->op, LogicalOp::kJoin);
  EXPECT_EQ(static_cast<const LogicalJoin*>(join)->join_type,
            LogicalJoinType::kInner);
  EXPECT_EQ(join->output.size(), 6u);
}

TEST_F(PlannerTest, ExistsBecomesSemiJoin) {
  auto plan = PlanSql(
      "select b from t where exists (select * from u where u.a = t.a and "
      "u.x > 3)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const LogicalNode* join = (*plan)->children[0].get();
  ASSERT_EQ(join->op, LogicalOp::kJoin);
  const auto* semi = static_cast<const LogicalJoin*>(join);
  EXPECT_EQ(semi->join_type, LogicalJoinType::kSemi);
  ASSERT_NE(semi->condition, nullptr);
  // Semi-join output is the outer side only.
  EXPECT_EQ(join->output.size(), 4u);
  // The uncorrelated u.x > 3 is a filter on the inner side.
  EXPECT_EQ(join->children[1]->op, LogicalOp::kFilter);
}

TEST_F(PlannerTest, NotExistsBecomesAntiJoin) {
  auto plan = PlanSql(
      "select b from t where not exists (select * from u where u.a = t.a)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const auto* join =
      static_cast<const LogicalJoin*>((*plan)->children[0].get());
  EXPECT_EQ(join->join_type, LogicalJoinType::kAnti);
}

TEST_F(PlannerTest, DerivedTable) {
  auto plan = PlanSql(
      "select total from (select b, sum(a) from t group by b) as agg (key, "
      "total) where total > 10");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ((*plan)->output.size(), 1u);
  EXPECT_EQ((*plan)->output[0].name, "total");
}

TEST_F(PlannerTest, DistinctBecomesAggregate) {
  auto plan = PlanSql("select distinct b from t");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op, LogicalOp::kAggregate);
  const auto* distinct = static_cast<const LogicalAggregate*>(plan->get());
  EXPECT_TRUE(distinct->aggs.empty());
  EXPECT_EQ(distinct->group_exprs.size(), 1u);
}

TEST_F(PlannerTest, OrderByAliasAndLimit) {
  auto plan = PlanSql(
      "select b, sum(a) as total from t group by b order by total desc "
      "limit 5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ((*plan)->op, LogicalOp::kLimit);
  EXPECT_EQ(static_cast<const LogicalLimit*>(plan->get())->limit, 5);
  const auto* sort =
      static_cast<const LogicalSort*>((*plan)->children[0].get());
  ASSERT_EQ(sort->keys.size(), 1u);
  EXPECT_FALSE(sort->keys[0].ascending);
}

TEST_F(PlannerTest, OrderByUnknownColumnFails) {
  EXPECT_FALSE(PlanSql("select a from t order by zzz").ok());
}

// --- pushdown --------------------------------------------------------------

TEST_F(PlannerTest, PushdownSplitsConjunctsAcrossJoin) {
  auto plan = PlanAndPush(
      "select t.b from t, u where t.a = u.a and t.b > 1 and u.x < 5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Project > Join(condition t.a = u.a) > Filter(Get t), Filter(Get u).
  const LogicalNode* join = (*plan)->children[0].get();
  ASSERT_EQ(join->op, LogicalOp::kJoin);
  const auto* inner = static_cast<const LogicalJoin*>(join);
  EXPECT_EQ(inner->join_type, LogicalJoinType::kInner);
  ASSERT_NE(inner->condition, nullptr);
  ASSERT_EQ(join->children[0]->op, LogicalOp::kFilter);
  ASSERT_EQ(join->children[1]->op, LogicalOp::kFilter);
  EXPECT_EQ(join->children[0]->children[0]->op, LogicalOp::kGet);
  EXPECT_EQ(join->children[1]->children[0]->op, LogicalOp::kGet);
}

TEST_F(PlannerTest, PushdownMergesFilters) {
  auto plan = PlanAndPush("select a from t where a > 1 and a < 10");
  ASSERT_TRUE(plan.ok());
  const LogicalNode* filter = (*plan)->children[0].get();
  ASSERT_EQ(filter->op, LogicalOp::kFilter);
  // Both conjuncts merged into one filter above the Get.
  EXPECT_EQ(filter->children[0]->op, LogicalOp::kGet);
}

TEST_F(PlannerTest, LeftJoinOnConditionPushesToRightOnly) {
  auto plan = PlanAndPush(
      "select t.a from t left join u on t.a = u.a and u.x > 0");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const LogicalNode* join = (*plan)->children[0].get();
  ASSERT_EQ(join->op, LogicalOp::kJoin);
  const auto* left_join = static_cast<const LogicalJoin*>(join);
  EXPECT_EQ(left_join->join_type, LogicalJoinType::kLeft);
  // u.x > 0 pushed into the right input; equality stays as the condition.
  EXPECT_EQ(join->children[1]->op, LogicalOp::kFilter);
  ASSERT_NE(left_join->condition, nullptr);
  EXPECT_EQ(left_join->condition->ToString(), "(a = a)");
}

TEST_F(PlannerTest, WherePredicateOnLeftJoinRightSideStaysAbove) {
  auto plan = PlanAndPush(
      "select t.a from t left join u on t.a = u.a where u.x > 0");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The filter must remain above the left join.
  const LogicalNode* filter = (*plan)->children[0].get();
  ASSERT_EQ(filter->op, LogicalOp::kFilter);
  EXPECT_EQ(filter->children[0]->op, LogicalOp::kJoin);
}

TEST_F(PlannerTest, CrossJoinUpgradedToInnerByWhere) {
  auto plan = PlanAndPush("select t.b from t, u where t.a = u.a");
  ASSERT_TRUE(plan.ok());
  const auto* join =
      static_cast<const LogicalJoin*>((*plan)->children[0].get());
  EXPECT_EQ(join->join_type, LogicalJoinType::kInner);
  ASSERT_NE(join->condition, nullptr);
}

TEST_F(PlannerTest, SemiJoinInnerPredicatePushed) {
  auto plan = PlanAndPush(
      "select b from t where exists (select * from u where u.a = t.a and "
      "u.x > 3) and t.b < 7");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const LogicalNode* join = (*plan)->children[0].get();
  ASSERT_EQ(join->op, LogicalOp::kJoin);
  // t.b < 7 pushed to outer (left) side below the semi join.
  EXPECT_EQ(join->children[0]->op, LogicalOp::kFilter);
  EXPECT_EQ(join->children[1]->op, LogicalOp::kFilter);
}

}  // namespace
}  // namespace vdb::plan
