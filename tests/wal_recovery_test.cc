// Crash-recovery tests for the durability layer (DESIGN.md §14): WAL
// scan edge cases (empty log, torn tail, corrupt checksum), checkpoint
// crash windows, recovery idempotence, and the reopen-append path. The
// randomized counterpart is `vdb_fuzz --mode crash`, which cross-checks
// recovery against a surviving-prefix oracle over many seeds; these are
// the deterministic anchors for each failure class.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/wal_payloads.h"
#include "exec/database.h"
#include "exec/recovery.h"
#include "storage/wal.h"
#include "storage/zone_map.h"

namespace vdb::exec {
namespace {

using catalog::Column;
using catalog::Schema;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = "/tmp/vdb-walrec-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    std::remove(WalPath(dir_).c_str());
    std::remove(CheckpointPath(dir_).c_str());
    std::remove((dir_ + "/wal.save").c_str());
    ::rmdir(dir_.c_str());
  }

  /// Creates t(id BIGINT, name VARCHAR) and inserts `rows` rows, flushing
  /// the WAL after every insert and returning each insert's end offset.
  std::vector<uint64_t> BuildTable(Database* db, int rows) {
    auto table = db->catalog()->CreateTable(
        "t", Schema({Column("id", TypeId::kInt64),
                     Column("name", TypeId::kString)}));
    VDB_CHECK(table.ok());
    VDB_CHECK_OK(db->FlushWal());
    std::vector<uint64_t> offsets;
    for (int i = 0; i < rows; ++i) {
      VDB_CHECK_OK(db->catalog()->Insert(
          *table, Tuple{Value::Int64(i),
                        Value::String("row-" + std::to_string(i))}));
      VDB_CHECK_OK(db->FlushWal());
      offsets.push_back(db->wal()->end_offset());
    }
    return offsets;
  }

  /// All live rows of `table_name` as strings, in heap-scan order.
  static std::vector<std::string> ScanRows(Database* db,
                                           const std::string& table_name) {
    auto table = db->catalog()->GetTable(table_name);
    VDB_CHECK(table.ok());
    std::vector<std::string> rows;
    for (auto it = (*table)->heap->Begin(); it.Valid(); it.Next()) {
      auto tuple = catalog::DeserializeTuple(it.record(), (*table)->schema);
      VDB_CHECK(tuple.ok());
      rows.push_back(catalog::TupleToString(*tuple));
    }
    return rows;
  }

  static void TruncateFile(const std::string& path, uint64_t size) {
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0);
  }

  static void FlipByte(const std::string& path, uint64_t offset) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }

  static void CopyFile(const std::string& src, const std::string& dst) {
    std::FILE* in = std::fopen(src.c_str(), "rb");
    std::FILE* out = std::fopen(dst.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      ASSERT_EQ(std::fwrite(buf, 1, n, out), n);
    }
    std::fclose(in);
    std::fclose(out);
  }

  std::string dir_;
};

TEST_F(WalRecoveryTest, EmptyDirectoryRecoversToNothing) {
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->checkpoint_loaded);
  EXPECT_EQ(stats->wal.records_applied, 0u);
  EXPECT_EQ(stats->tables_recovered, 0u);
  EXPECT_TRUE(db.catalog()->Tables().empty());
}

TEST_F(WalRecoveryTest, RecoversTablesRowsAndIndexes) {
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    BuildTable(&db, 5);
    auto table = db.catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    // Delete row 1 (the second in scan order).
    auto it = (*table)->heap->Begin();
    it.Next();
    VDB_CHECK_OK(db.catalog()->Delete(*table, it.rid()));
    ASSERT_TRUE(db.catalog()->CreateIndex("t_id", "t", "id").ok());
    VDB_CHECK_OK(db.FlushWal());
  }
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->wal.clean);
  EXPECT_EQ(stats->tables_recovered, 1u);
  EXPECT_EQ(stats->indexes_rebuilt, 1u);
  EXPECT_EQ(ScanRows(&db, "t"),
            (std::vector<std::string>{"(0, row-0)", "(2, row-2)",
                                      "(3, row-3)", "(4, row-4)"}));
  ASSERT_TRUE(db.catalog()->GetIndex("t_id").ok());
}

TEST_F(WalRecoveryTest, TruncatedTailRecordKeepsPrefix) {
  std::vector<uint64_t> offsets;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    offsets = BuildTable(&db, 6);
  }
  // Cut 10 bytes into the record of insert #3: inserts 0..2 must survive,
  // 3..5 must not.
  TruncateFile(WalPath(dir_), offsets[2] + 10);
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->wal.clean);
  EXPECT_EQ(ScanRows(&db, "t"),
            (std::vector<std::string>{"(0, row-0)", "(1, row-1)",
                                      "(2, row-2)"}));
}

TEST_F(WalRecoveryTest, CorruptedChecksumMidLogEndsHistoryThere) {
  std::vector<uint64_t> offsets;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    offsets = BuildTable(&db, 6);
  }
  // Flip the last payload byte of insert #1's record: insert #0 must
  // survive, everything from #1 on is after the corruption.
  FlipByte(WalPath(dir_), offsets[1] - 1);
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->wal.clean);
  EXPECT_EQ(stats->wal.stop_reason, "record checksum mismatch");
  EXPECT_EQ(ScanRows(&db, "t"),
            (std::vector<std::string>{"(0, row-0)"}));
}

TEST_F(WalRecoveryTest, CrashBetweenCheckpointWriteAndWalTruncation) {
  std::vector<std::string> expected;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    BuildTable(&db, 4);
    expected = ScanRows(&db, "t");
    // Simulate a crash after WriteCheckpoint but before the WAL reset:
    // run a full checkpoint, then put the pre-checkpoint WAL back.
    CopyFile(WalPath(dir_), dir_ + "/wal.save");
    VDB_CHECK_OK(db.Checkpoint());
  }
  CopyFile(dir_ + "/wal.save", WalPath(dir_));
  {
    Database db;
    auto stats = db.EnableDurability(dir_);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(stats->checkpoint_loaded);
    // Every WAL record predates the checkpoint: redo skips them all, and
    // EnableDurability completes the interrupted truncation.
    EXPECT_EQ(stats->wal.records_applied, 0u);
    EXPECT_EQ(ScanRows(&db, "t"), expected);
  }
  // After the completed truncation the directory is a clean image+log.
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->wal.clean);
  EXPECT_EQ(stats->wal.records_seen, 0u);
  EXPECT_EQ(ScanRows(&db, "t"), expected);
}

TEST_F(WalRecoveryTest, DoubleRecoveryIsIdempotent) {
  std::vector<uint64_t> offsets;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    offsets = BuildTable(&db, 6);
  }
  // Torn tail: recovery #1 salvages the prefix and repairs the log;
  // recovery #2 must see the identical state.
  TruncateFile(WalPath(dir_), offsets[3] + 5);
  std::vector<std::string> first;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    first = ScanRows(&db, "t");
  }
  EXPECT_EQ(first.size(), 4u);
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // The first recovery truncated the torn bytes, so the log is clean now.
  EXPECT_TRUE(stats->wal.clean);
  EXPECT_EQ(ScanRows(&db, "t"), first);
}

TEST_F(WalRecoveryTest, ReopenAppendFlushKeepsLogReplayable) {
  // Regression: appending after reopening a WAL whose tail page already
  // holds records must preserve the page's first_lsn stamp — a wrong
  // stamp fails scan validation and loses the whole log.
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    BuildTable(&db, 3);
  }
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    auto table = db.catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    VDB_CHECK_OK(db.catalog()->Insert(
        *table, Tuple{Value::Int64(99), Value::String("after-reopen")}));
    VDB_CHECK_OK(db.FlushWal());
  }
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->wal.clean) << stats->wal.stop_reason;
  EXPECT_EQ(ScanRows(&db, "t"),
            (std::vector<std::string>{"(0, row-0)", "(1, row-1)",
                                      "(2, row-2)",
                                      "(99, after-reopen)"}));
}

TEST_F(WalRecoveryTest, CheckpointThenMoreWritesRecoversBoth) {
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    BuildTable(&db, 3);
    VDB_CHECK_OK(db.Checkpoint());
    auto table = db.catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    VDB_CHECK_OK(db.catalog()->Insert(
        *table, Tuple{Value::Int64(7), Value::String("post-ckpt")}));
    VDB_CHECK_OK(db.FlushWal());
  }
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->checkpoint_loaded);
  EXPECT_EQ(stats->wal.records_applied, 1u);
  EXPECT_EQ(ScanRows(&db, "t"),
            (std::vector<std::string>{"(0, row-0)", "(1, row-1)",
                                      "(2, row-2)", "(7, post-ckpt)"}));
}

TEST_F(WalRecoveryTest, CheckpointRoundTripsZoneMaps) {
  std::vector<storage::ZoneEntry> before;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    BuildTable(&db, 40);
    auto table = db.catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    // Delete a row so the surviving entries are a strict superset of the
    // live values — the round trip must preserve the superset, not the
    // recomputed bounds.
    VDB_CHECK_OK(db.catalog()->Delete(*table, (*table)->heap->Begin().rid()));
    before = (*table)->heap->zone_map().entries();
    ASSERT_EQ(before.size(), (*table)->heap->NumPages());
    VDB_CHECK_OK(db.Checkpoint());
  }
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->checkpoint_loaded);
  auto table = db.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->heap->zone_map().entries(), before);
}

TEST_F(WalRecoveryTest, WalReplayRebuildsZoneMaps) {
  std::vector<storage::ZoneEntry> before;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    BuildTable(&db, 40);
    auto table = db.catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    before = (*table)->heap->zone_map().entries();
  }
  // No checkpoint: recovery replays every insert from the WAL, refolding
  // each tuple's samples — the rebuilt map must equal the maintained one.
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->checkpoint_loaded);
  auto table = db.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->heap->zone_map().entries(), before);
}

TEST_F(WalRecoveryTest, V1CheckpointWithoutZonesLoadsUntracked) {
  // Hand-assemble a version-1 (pre-zone-map) checkpoint image from a live
  // heap; loading it must succeed and leave every page untracked, so
  // nothing ever prunes on the recovered table.
  namespace walenc = catalog::walenc;
  std::string blob;
  {
    Database db;
    ASSERT_TRUE(db.EnableDurability(dir_).ok());
    BuildTable(&db, 12);
    auto table = db.catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    storage::HeapFile* heap = (*table)->heap.get();
    VDB_CHECK_OK(db.FlushWal());
    db.buffer_pool()->FlushAll();
    walenc::AppendU32(&blob, 0x564B4843);  // kCheckpointMagic
    walenc::AppendU32(&blob, 1);           // version without zone entries
    walenc::AppendU64(&blob, db.wal()->flushed_lsn());
    walenc::AppendU32(&blob, 1);  // one table
    walenc::AppendString(&blob, "t");
    walenc::AppendSchema(&blob, (*table)->schema);
    walenc::AppendU64(&blob, heap->NumPages());
    std::string page_bytes;
    std::vector<storage::HeapFile::RecordView> views;
    for (size_t p = 0; p < heap->NumPages(); ++p) {
      walenc::AppendU64(&blob, heap->PageLsn(p));
      auto more = heap->ReadPageForScan(p, &page_bytes, &views);
      ASSERT_TRUE(more.ok() && *more);
      blob.append(page_bytes.data(), storage::kPageSize);
    }
    walenc::AppendU32(&blob, 0);  // no indexes
    walenc::AppendU32(&blob, storage::Crc32c(blob.data(), blob.size()));
  }
  // Replace the directory contents with the v1 image and an empty log.
  std::remove(WalPath(dir_).c_str());
  {
    std::FILE* f = std::fopen(CheckpointPath(dir_).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(blob.data(), 1, blob.size(), f), blob.size());
    std::fclose(f);
  }
  Database db;
  auto stats = db.EnableDurability(dir_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->checkpoint_loaded);
  auto table = db.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(ScanRows(&db, "t").size(), 12u);
  const storage::ZoneMap& map = (*table)->heap->zone_map();
  ASSERT_EQ(map.entries().size(), (*table)->heap->NumPages());
  for (const storage::ZoneEntry& entry : map.entries()) {
    EXPECT_FALSE(entry.tracked);
  }
  storage::ScanPruneSpec spec;
  storage::ZonePredicate pred;
  pred.kind = storage::ZonePredicate::Kind::kEq;
  pred.column = 0;
  pred.key = 1e18;  // matches nothing, but untracked pages must not prune
  spec.predicates.push_back(pred);
  for (uint8_t b : (*table)->heap->ComputePruneBitmap(spec)) {
    EXPECT_EQ(b, 0);
  }
}

}  // namespace
}  // namespace vdb::exec
