// Tier-1 coverage for the multi-tenant SQL server (DESIGN.md §13): wire
// codec round-trips, tenant config parsing, admission fast-fail, typed
// budget aborts that leave the connection usable, cross-tenant isolation
// under saturation, malformed-frame handling, and runtime reload.

#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/tenant.h"
#include "server/wire.h"

namespace vdb::server {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << contents;
  EXPECT_TRUE(out.good());
  return path;
}

// ---------------------------------------------------------------------------
// Config parsing.

TEST(TenantConfigTest, ParsesFullLine) {
  const std::string path = WriteTempFile(
      "tenants_ok.conf",
      "# comment\n"
      "tenant alpha cpu=0.5 mem=0.4 io=0.3 dataset=synthetic:100 "
      "workload=w.sql max_concurrent=8 queue=2 clients=5 "
      "budget_cpu_ms=250 budget_mem_kb=64 budget_host_ms=1000\n");
  auto configs = LoadTenantConfigs(path);
  ASSERT_TRUE(configs.ok()) << configs.status().ToString();
  ASSERT_EQ(configs->size(), 1u);
  const TenantConfig& config = (*configs)[0];
  EXPECT_EQ(config.name, "alpha");
  EXPECT_DOUBLE_EQ(config.cpu_share, 0.5);
  EXPECT_DOUBLE_EQ(config.mem_share, 0.4);
  EXPECT_DOUBLE_EQ(config.io_share, 0.3);
  EXPECT_EQ(config.dataset, "synthetic:100");
  EXPECT_EQ(config.workload, "w.sql");
  EXPECT_EQ(config.max_concurrent, 8);
  EXPECT_EQ(config.queue_depth, 2);
  EXPECT_EQ(config.clients, 5);
  EXPECT_DOUBLE_EQ(config.budget.max_cpu_seconds, 0.25);
  EXPECT_DOUBLE_EQ(config.budget.max_memory_bytes, 64 * 1024.0);
  EXPECT_DOUBLE_EQ(config.budget.max_host_seconds, 1.0);
  EXPECT_DOUBLE_EQ(config.budget.max_elapsed_seconds, 0.0);
  EXPECT_FALSE(config.budget.Unlimited());
}

TEST(TenantConfigTest, UnknownKeyIsAnErrorWithLineNumber) {
  const std::string path = WriteTempFile(
      "tenants_bad_key.conf", "tenant a cpu=0.5\ntenant b cpu_shr=0.5\n");
  auto configs = LoadTenantConfigs(path);
  ASSERT_FALSE(configs.ok());
  EXPECT_NE(configs.status().message().find(":2:"), std::string::npos)
      << configs.status().ToString();
  EXPECT_NE(configs.status().message().find("cpu_shr"), std::string::npos);
}

TEST(TenantConfigTest, DuplicateAndEmptyAreErrors) {
  EXPECT_FALSE(
      LoadTenantConfigs(
          WriteTempFile("tenants_dup.conf", "tenant a\ntenant a\n"))
          .ok());
  EXPECT_FALSE(
      LoadTenantConfigs(WriteTempFile("tenants_empty.conf", "# none\n"))
          .ok());
}

TEST(TenantConfigTest, LoadsSqlStatements) {
  const std::string path = WriteTempFile(
      "workload.sql",
      "-- comment\nselect 1;\nselect grp, count(*)\n  from events\n"
      "  group by grp;\n");
  auto statements = LoadSqlStatements(path);
  ASSERT_TRUE(statements.ok()) << statements.status().ToString();
  ASSERT_EQ(statements->size(), 2u);
  EXPECT_NE((*statements)[1].find("group by"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire codec.

TEST(WireTest, RequestRoundTrip) {
  WireRequest request;
  request.tenant = "a\"b";
  request.sql = "select * from t where s like '%x%';";
  auto parsed = ParseRequest(FormatRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tenant, request.tenant);
  EXPECT_EQ(parsed->sql, request.sql);
  EXPECT_TRUE(parsed->command.empty());
}

TEST(WireTest, RequestValidation) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());
  EXPECT_FALSE(ParseRequest("{\"sql\": \"select 1;\"}").ok());  // no tenant
  EXPECT_FALSE(ParseRequest("{\"tenant\": \"a\"}").ok());  // no sql/command
  EXPECT_FALSE(
      ParseRequest(
          "{\"tenant\": \"a\", \"sql\": \"select 1;\", \"command\": \"p\"}")
          .ok());  // both
}

TEST(WireTest, RowsResponseRoundTrip) {
  std::vector<catalog::Tuple> rows;
  rows.push_back({catalog::Value::Int64(9007199254740993),  // > 2^53
                  catalog::Value::Null(catalog::TypeId::kString)});
  QueryStats stats;
  stats.elapsed_ms = 12.5;
  stats.physical_reads = 7;
  const std::string payload =
      FormatRowsResponse({"big", "s"}, rows, stats);
  auto response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->error.ok());
  ASSERT_EQ(response->columns.size(), 2u);
  ASSERT_EQ(response->rows.size(), 1u);
  // int64 cells travel as strings, so 2^53+1 survives exactly.
  EXPECT_EQ(response->rows[0][0].value(), "9007199254740993");
  EXPECT_FALSE(response->rows[0][1].has_value());
  EXPECT_DOUBLE_EQ(response->stats.elapsed_ms, 12.5);
  EXPECT_EQ(response->stats.physical_reads, 7u);
}

TEST(WireTest, ErrorResponseKeepsTypedCode) {
  const std::string payload = FormatErrorResponse(
      Status::BudgetExceeded("query exceeded its cpu budget"), QueryStats{});
  auto response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->error.IsBudgetExceeded());
  EXPECT_NE(response->error.message().find("cpu budget"),
            std::string::npos);
}

TEST(WireTest, StatusCodeNamesRoundTrip) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kBudgetExceeded}) {
    EXPECT_EQ(StatusCodeFromName(StatusCodeName(code)), code);
  }
  EXPECT_EQ(StatusCodeFromName("NoSuchCode"), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Live server. One fixture-scoped server keeps materialization cost paid
// once; tenants are sized so every scenario below is deterministic.

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TenantConfig alpha;  // well-behaved: round trips, isolation victim
    alpha.name = "alpha";
    alpha.cpu_share = alpha.mem_share = alpha.io_share = 0.3;
    alpha.dataset = "synthetic:300";
    alpha.max_concurrent = 4;
    alpha.queue_depth = 16;

    TenantConfig serial;  // cap 1: admission fast-fail + saturation source
    serial.name = "serial";
    serial.cpu_share = serial.mem_share = serial.io_share = 0.2;
    serial.dataset = "synthetic:700";
    serial.max_concurrent = 1;
    serial.queue_depth = 0;

    TenantConfig gamma;  // tight budget: typed aborts
    gamma.name = "gamma";
    gamma.cpu_share = gamma.mem_share = gamma.io_share = 0.2;
    gamma.dataset = "synthetic:700";
    gamma.max_concurrent = 4;
    gamma.queue_depth = 8;
    gamma.budget.max_cpu_seconds = 0.002;

    TenantConfig delta;  // reload target
    delta.name = "delta";
    delta.cpu_share = delta.mem_share = delta.io_share = 0.2;
    delta.dataset = "synthetic:700";
    delta.max_concurrent = 4;
    delta.queue_depth = 8;

    ServerOptions options;
    options.num_workers = 4;
    server_ = new Server(options, {alpha, serial, gamma, delta});
    const Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
  }

  static WireClient Connect() {
    auto client = WireClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).ValueOrDie();
  }

  // A query that holds the serial tenant's executor for a while (cross
  // join, 700^2 pairs) — long enough that a concurrent probe reliably
  // finds the tenant at its admission cap.
  static constexpr const char* kHeavySql =
      "select count(*) from events a, events b;";

  static Server* server_;
};

Server* ServerTest::server_ = nullptr;

TEST_F(ServerTest, QueryRoundTrip) {
  WireClient client = Connect();
  auto response =
      client.Query("alpha", "select count(*) as n, min(id) from events;");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->error.ok()) << response->error.ToString();
  ASSERT_EQ(response->columns.size(), 2u);
  EXPECT_EQ(response->columns[0], "n");
  ASSERT_EQ(response->rows.size(), 1u);
  EXPECT_EQ(response->rows[0][0].value(), "300");
  EXPECT_EQ(response->rows[0][1].value(), "0");
  EXPECT_GT(response->stats.elapsed_ms, 0.0);
  EXPECT_GT(response->stats.host_ms, 0.0);
}

TEST_F(ServerTest, SqlErrorsComeBackTyped) {
  WireClient client = Connect();
  auto response = client.Query("alpha", "select nope from nothing;");
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->error.ok());
  EXPECT_FALSE(response->error.IsBudgetExceeded());
  // The connection is still usable after a planner error.
  auto again = client.Query("alpha", "select id from events limit 1;");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->error.ok());
}

TEST_F(ServerTest, UnknownTenantIsRejected) {
  WireClient client = Connect();
  auto response = client.Query("nobody", "select id from events limit 1;");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->error.IsNotFound());
}

TEST_F(ServerTest, PingAndMetricsCommands) {
  WireClient client = Connect();
  auto ping = client.Command("alpha", "ping");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(ping->payload, "\"pong\"");
  auto metrics = client.Command("alpha", "metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->payload.find("counters"), std::string::npos);
}

TEST_F(ServerTest, AdmissionFastFailAtCap) {
  // Occupy the serial tenant (cap = 1 + 0) with a long cross join, then
  // probe: while it runs, a probe must be rejected immediately with
  // ResourceExhausted. The occupy/probe cycle retries because the probe
  // can lose the race with the heavy query's submission; one cycle where
  // the probe lands mid-execution is enough.
  WireClient probe = Connect();
  bool saw_rejection = false;
  for (int attempt = 0; attempt < 10 && !saw_rejection; ++attempt) {
    std::atomic<bool> heavy_done{false};
    std::thread heavy([&] {
      WireClient conn = Connect();
      auto response = conn.Query("serial", kHeavySql);
      heavy_done.store(true);
      ASSERT_TRUE(response.ok());
      // The heavy query itself may be the one rejected if a probe from a
      // previous iteration still occupies the tenant.
      EXPECT_TRUE(response->error.ok() ||
                  response->error.IsResourceExhausted())
          << response->error.ToString();
    });
    while (!heavy_done.load()) {
      auto response =
          probe.Query("serial", "select id from events limit 1;");
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      if (response->error.IsResourceExhausted()) {
        saw_rejection = true;
        break;
      }
    }
    heavy.join();
  }
  EXPECT_TRUE(saw_rejection)
      << "probe never found the serial tenant at its admission cap";
  // The tenant recovers once the heavy query finishes.
  auto after = probe.Query("serial", "select id from events limit 1;");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->error.ok()) << after->error.ToString();
}

TEST_F(ServerTest, BudgetAbortIsTypedAndConnectionSurvives) {
  WireClient client = Connect();
  auto aborted = client.Query("gamma", kHeavySql);
  ASSERT_TRUE(aborted.ok()) << aborted.status().ToString();
  ASSERT_FALSE(aborted->error.ok());
  EXPECT_TRUE(aborted->error.IsBudgetExceeded())
      << aborted->error.ToString();
  EXPECT_NE(aborted->error.message().find("budget"), std::string::npos);
  // Same tenant, same connection: a cheap statement still succeeds, so
  // the abort neither wedged the Database nor leaked execution state.
  auto cheap = client.Query("gamma", "select id from events limit 1;");
  ASSERT_TRUE(cheap.ok());
  EXPECT_TRUE(cheap->error.ok()) << cheap->error.ToString();
  ASSERT_EQ(cheap->rows.size(), 1u);
}

TEST_F(ServerTest, SaturatedTenantDoesNotBlockOthers) {
  // Saturate the serial tenant with back-to-back heavy queries; alpha's
  // cheap queries must keep completing the whole time (the shared pool
  // round-robins drain tasks, so one hot tenant cannot monopolize it).
  std::atomic<bool> stop{false};
  std::thread saturator([&] {
    WireClient conn = Connect();
    while (!stop.load()) {
      auto response = conn.Query("serial", kHeavySql);
      if (!response.ok()) break;
    }
  });
  WireClient client = Connect();
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    auto response =
        client.Query("alpha", "select count(*) from events where grp < 50;");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->error.ok()) << response->error.ToString();
    ++completed;
  }
  stop.store(true);
  saturator.join();
  EXPECT_EQ(completed, 20);
}

TEST_F(ServerTest, MalformedJsonGetsTypedErrorAndConnectionSurvives) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // A well-framed but non-JSON payload: the server answers with a typed
  // error and keeps the connection open.
  ASSERT_TRUE(WriteFrame(fd, "this is not json").ok());
  std::string payload;
  auto alive = ReadFrame(fd, &payload);
  ASSERT_TRUE(alive.ok() && *alive);
  auto response = ParseResponse(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->error.IsInvalidArgument());
  // Same socket, a valid request now succeeds.
  WireRequest request;
  request.tenant = "alpha";
  request.command = "ping";
  ASSERT_TRUE(WriteFrame(fd, FormatRequest(request)).ok());
  alive = ReadFrame(fd, &payload);
  ASSERT_TRUE(alive.ok() && *alive);
  ::close(fd);
}

TEST_F(ServerTest, OversizedFramePrefixClosesConnection) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};  // 4 GiB frame
  ASSERT_EQ(::send(fd, huge, 4, 0), 4);
  // The server reports the protocol error (if the write beats the close)
  // and then drops the connection; either way we observe EOF, and the
  // server itself stays up.
  char buf[256];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
  }
  ::close(fd);
  WireClient client = Connect();
  auto ping = client.Command("alpha", "ping");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(ping->payload, "\"pong\"");
}

TEST_F(ServerTest, ReloadTightensBudgetAndShares) {
  WireClient client = Connect();
  // Before: delta has no budget, the heavy query completes.
  auto before = client.Query("delta", kHeavySql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->error.ok()) << before->error.ToString();

  const std::string conf = WriteTempFile(
      "reload.conf",
      "tenant delta cpu=0.1 mem=0.1 io=0.1 budget_cpu_ms=2\n"
      "tenant ghost cpu=0.9 mem=0.9 io=0.9\n");  // not running: ignored
  auto reload = client.Command("delta", "reload", conf);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  ASSERT_TRUE(reload->error.ok()) << reload->error.ToString();

  // After: the same query aborts with the typed budget error.
  auto after = client.Query("delta", kHeavySql);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->error.IsBudgetExceeded()) << after->error.ToString();
  // And cheap statements still work at the shrunken share.
  auto cheap = client.Query("delta", "select id from events limit 1;");
  ASSERT_TRUE(cheap.ok());
  EXPECT_TRUE(cheap->error.ok()) << cheap->error.ToString();
}

TEST_F(ServerTest, ReloadRejectsOversubscription) {
  WireClient client = Connect();
  const std::string conf = WriteTempFile(
      "reload_over.conf", "tenant delta cpu=0.95 mem=0.1 io=0.1\n");
  auto reload = client.Command("delta", "reload", conf);
  ASSERT_TRUE(reload.ok());
  EXPECT_FALSE(reload->error.ok());
  // The failed reload left delta usable.
  auto cheap = client.Query("delta", "select id from events limit 1;");
  ASSERT_TRUE(cheap.ok());
  EXPECT_TRUE(cheap->error.ok()) << cheap->error.ToString();
}

}  // namespace
}  // namespace vdb::server
