// Microbenchmarks (google-benchmark) of the engine's hot paths: executor
// operators, optimizer planning throughput, the calibration solver, and
// the design search. These measure *host* performance of the simulator
// itself (not simulated time) — useful for keeping the reproduction fast.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench/bench_util.h"
#include "calib/calibration.h"
#include "core/cost_model.h"
#include "core/search.h"
#include "datagen/calibration_db.h"
#include "datagen/synthetic.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"
#include "util/linalg.h"
#include "util/random.h"

namespace vdb {
namespace {

// Shared environment: one synthetic database reused across benchmarks.
exec::Database* GlobalDb() {
  static exec::Database* db = [] {
    auto* instance = new exec::Database();
    using datagen::ColumnSpec;
    using datagen::Distribution;
    ColumnSpec key;
    key.name = "k";
    key.distribution = Distribution::kSequential;
    ColumnSpec value;
    value.name = "v";
    value.distribution = Distribution::kUniform;
    value.min_value = 0;
    value.max_value = 999;
    ColumnSpec text;
    text.name = "s";
    text.type = catalog::TypeId::kString;
    text.distribution = Distribution::kRandomText;
    text.string_length = 24;
    VDB_CHECK_OK(datagen::GenerateTable(instance->catalog(), "t",
                                        {key, value, text}, 50000, 7));
    VDB_CHECK_OK(datagen::GenerateTable(instance->catalog(), "u",
                                        {key, value}, 5000, 8));
    VDB_CHECK(instance->catalog()->CreateIndex("t_k", "t", "k").ok());
    VDB_CHECK_OK(instance->catalog()->AnalyzeAll());
    return instance;
  }();
  return db;
}

sim::VirtualMachine BenchVm() {
  return sim::VirtualMachine("vm", sim::MachineSpec::PaperTestbed(),
                             sim::HypervisorModel::XenLike(),
                             sim::ResourceShare(0.5, 0.5, 0.5));
}

void RunQuery(benchmark::State& state, const char* sql) {
  exec::Database* db = GlobalDb();
  sim::VirtualMachine vm = BenchVm();
  VDB_CHECK_OK(db->ApplyVmConfig(vm));
  // Pin the engine configuration instead of inheriting whatever the
  // shared Database picked up at construction: the baselines for these
  // entries are single-threaded batch-engine numbers, and an ambient
  // VDB_EXEC_MODE / VDB_EXEC_THREADS would silently shift them.
  const exec::ExecMode saved = db->exec_mode();
  const exec::QueryOptions saved_options = db->query_options();
  db->set_exec_mode(exec::ExecMode::kBatch);
  exec::QueryOptions options = saved_options;
  options.num_threads = 1;
  db->set_query_options(options);
  for (auto _ : state) {
    auto result = db->Execute(sql, vm);
    VDB_CHECK(result.ok()) << result.status();
    benchmark::DoNotOptimize(result->rows.size());
  }
  db->set_query_options(saved_options);
  db->set_exec_mode(saved);
}

void BM_SeqScanCount(benchmark::State& state) {
  RunQuery(state, "select count(*) from t");
}
BENCHMARK(BM_SeqScanCount);

void BM_FilteredScan(benchmark::State& state) {
  RunQuery(state, "select count(*) from t where v < 100 and s like '%a%'");
}
BENCHMARK(BM_FilteredScan);

void BM_IndexPointLookup(benchmark::State& state) {
  RunQuery(state, "select v from t where k = 25000");
}
BENCHMARK(BM_IndexPointLookup);

void BM_HashJoin(benchmark::State& state) {
  RunQuery(state,
           "select count(*) from t, u where t.k = u.k and u.v < 500");
}
BENCHMARK(BM_HashJoin);

void BM_SortLimit(benchmark::State& state) {
  RunQuery(state, "select k from t order by v, k limit 100");
}
BENCHMARK(BM_SortLimit);

void BM_GroupAggregate(benchmark::State& state) {
  RunQuery(state,
           "select v, count(*), sum(k), avg(k) from t group by v");
}
BENCHMARK(BM_GroupAggregate);

// Engine-throughput benchmarks: the same query on the row and batch
// engines, reported as rows/sec over the scanned base table. These feed
// the perf gate's direction-aware entries (higher is better); the batch
// engine is expected to hold a large multiple over the row engine on
// scan-heavy shapes.
void RunEngineThroughput(benchmark::State& state, exec::ExecMode mode,
                         const char* sql, double rows_per_query,
                         int threads = 1) {
  exec::Database* db = GlobalDb();
  sim::VirtualMachine vm = BenchVm();
  VDB_CHECK_OK(db->ApplyVmConfig(vm));
  const exec::ExecMode saved = db->exec_mode();
  const exec::QueryOptions saved_options = db->query_options();
  db->set_exec_mode(mode);
  exec::QueryOptions options = saved_options;
  options.num_threads = threads;
  db->set_query_options(options);
  for (auto _ : state) {
    auto result = db->Execute(sql, vm);
    VDB_CHECK(result.ok()) << result.status();
    benchmark::DoNotOptimize(result->rows.size());
  }
  db->set_query_options(saved_options);
  db->set_exec_mode(saved);
  state.counters["rows_per_sec"] = benchmark::Counter(
      rows_per_query * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_ScanRowEngine(benchmark::State& state) {
  RunEngineThroughput(state, exec::ExecMode::kRow,
                      "select count(*) from t", 50000);
}
BENCHMARK(BM_ScanRowEngine);

void BM_ScanBatchEngine(benchmark::State& state) {
  RunEngineThroughput(state, exec::ExecMode::kBatch,
                      "select count(*) from t", 50000);
}
BENCHMARK(BM_ScanBatchEngine);

void BM_ScanFilterRowEngine(benchmark::State& state) {
  RunEngineThroughput(state, exec::ExecMode::kRow,
                      "select count(*) from t where v < 100", 50000);
}
BENCHMARK(BM_ScanFilterRowEngine);

void BM_ScanFilterBatchEngine(benchmark::State& state) {
  RunEngineThroughput(state, exec::ExecMode::kBatch,
                      "select count(*) from t where v < 100", 50000);
}
BENCHMARK(BM_ScanFilterBatchEngine);

// Morsel-parallel variants: same queries, four workers. On multi-core
// hosts these should hold a healthy multiple over the serial batch
// numbers; the baseline entries are set from a single-core machine, so
// the gate only catches regressions against that conservative floor.
void BM_ScanBatchEngine4T(benchmark::State& state) {
  RunEngineThroughput(state, exec::ExecMode::kBatch,
                      "select count(*) from t", 50000, /*threads=*/4);
}
BENCHMARK(BM_ScanBatchEngine4T);

void BM_ScanFilterBatchEngine4T(benchmark::State& state) {
  RunEngineThroughput(state, exec::ExecMode::kBatch,
                      "select count(*) from t where v < 100", 50000,
                      /*threads=*/4);
}
BENCHMARK(BM_ScanFilterBatchEngine4T);

void BM_OptimizerPrepareJoin(benchmark::State& state) {
  exec::Database* db = GlobalDb();
  const char* sql =
      "select count(*) from t, u where t.k = u.k and t.v between 10 and "
      "200 and u.v < 500";
  for (auto _ : state) {
    auto plan = db->Prepare(sql);
    VDB_CHECK(plan.ok());
    benchmark::DoNotOptimize((*plan)->total_cost_ms);
  }
}
BENCHMARK(BM_OptimizerPrepareJoin);

void BM_LeastSquaresSolve(benchmark::State& state) {
  Random rng(5);
  Matrix a(24, 5);
  std::vector<double> b(24);
  for (size_t r = 0; r < 24; ++r) {
    for (size_t c = 0; c < 5; ++c) a.At(r, c) = rng.UniformDouble(0, 100);
    b[r] = rng.UniformDouble(0, 1000);
  }
  for (auto _ : state) {
    auto solution = NonNegativeLeastSquares(a, b);
    VDB_CHECK(solution.ok());
    benchmark::DoNotOptimize(solution->data());
  }
}
BENCHMARK(BM_LeastSquaresSolve);

void BM_BTreeInsertLookup(benchmark::State& state) {
  storage::DiskManager disk;
  storage::BufferPool pool(&disk, 512);
  storage::BPlusTree tree(&disk, &pool);
  Random rng(11);
  for (int i = 0; i < 20000; ++i) {
    VDB_CHECK_OK(tree.Insert(rng.UniformInt(0, 1000000), i));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    auto values = tree.Lookup(probe);
    VDB_CHECK(values.ok());
    benchmark::DoNotOptimize(values->size());
    probe = (probe + 7919) % 1000000;
  }
}
BENCHMARK(BM_BTreeInsertLookup);

// Console reporter that additionally captures each run's per-iteration
// real time into the BenchReport, so the perf gate can track the
// microbenchmarks from BENCH_micro_operators.json.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration ||
          run.iterations == 0) {
        continue;
      }
      report_->AddTiming(run.benchmark_name() + "/iter_s",
                         run.real_accumulated_time /
                             static_cast<double>(run.iterations));
      // User counters (already finalized to rates where requested) land
      // in the report's values section, e.g. ".../rows_per_sec".
      for (const auto& [counter_name, counter] : run.counters) {
        report_->AddValue(run.benchmark_name() + "/" + counter_name,
                          counter.value);
      }
    }
  }

 private:
  bench::BenchReport* report_;
};

}  // namespace
}  // namespace vdb

// Expanded BENCHMARK_MAIN() with the JSON side channel bolted on.
int main(int argc, char** argv) {
  // The shared Database reads VDB_EXEC_MODE / VDB_EXEC_THREADS /
  // VDB_SPILL at construction and the kernel library reads VDB_KERNELS
  // on first dispatch. Scrub them before anything is built so ambient
  // values cannot skew the numbers the perf gate compares against
  // bench/baseline.json; benchmarks that want a non-default mode pin it
  // explicitly (RunEngineThroughput).
  ::unsetenv("VDB_EXEC_MODE");
  ::unsetenv("VDB_EXEC_THREADS");
  ::unsetenv("VDB_SPILL");
  ::unsetenv("VDB_KERNELS");
  vdb::bench::InitMetrics();
  vdb::bench::BenchReport report("micro_operators");
  vdb::bench::Stopwatch total_watch;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  vdb::JsonCaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(0);
}
