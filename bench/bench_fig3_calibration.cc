// Reproduces Figure 3 of "Database Virtualization: A New Frontier for
// Database Tuning and Physical Design" (ICDE 2007): the calibrated
// cpu_tuple_cost optimizer parameter as a function of the VM's CPU and
// memory allocations (25% / 50% / 75% each), showing that the optimizer's
// environment parameters are sensitive to the resource allocation and
// that the calibration process detects this.
//
// The paper plots cpu_tuple_cost in PostgreSQL's native unit — a fraction
// of the cost of a sequential page fetch — so both the absolute per-tuple
// time (ms) and that ratio are reported.

#include <cstdio>

#include "bench/bench_util.h"
#include "calib/calibration.h"

namespace vdb {
namespace {

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("fig3_calibration");
  bench::Stopwatch total_watch;
  auto db = bench::MakeCalibrationDatabase();
  const sim::MachineSpec machine = bench::ScaledMemoryMachine();
  calib::Calibrator calibrator(db.get());

  const double shares[] = {0.25, 0.50, 0.75};

  bench::PrintTitle(
      "Figure 3: calibrated cpu_tuple_cost vs CPU and memory allocation");
  std::printf("machine: %s (I/O share fixed at 50%%)\n\n",
              machine.name.c_str());

  // One calibration per (cpu, memory) grid cell.
  bench::Stopwatch grid_watch;
  double tuple_ms[3][3];
  double tuple_ratio[3][3];
  double residual[3][3];
  for (int m = 0; m < 3; ++m) {
    for (int c = 0; c < 3; ++c) {
      sim::VirtualMachine vm =
          bench::MakeVm(machine, shares[c], shares[m], 0.5);
      auto result = calibrator.Calibrate(vm);
      if (!result.ok()) {
        std::fprintf(stderr, "calibration failed at cpu=%.2f mem=%.2f: %s\n",
                     shares[c], shares[m],
                     result.status().ToString().c_str());
        return 1;
      }
      tuple_ms[m][c] = result->params.cpu_tuple_cost;
      tuple_ratio[m][c] =
          result->params.cpu_tuple_cost / result->params.seq_page_cost;
      residual[m][c] = result->residual_rms_ms;
      std::fprintf(stderr,
                   "[calibrated] cpu=%.0f%% mem=%.0f%%: %s (residual "
                   "%.2f ms)\n",
                   100 * shares[c], 100 * shares[m],
                   result->params.ToString().c_str(),
                   result->residual_rms_ms);
    }
  }

  report.AddTiming("calibration_grid_s", grid_watch.Seconds());

  std::printf("cpu_tuple_cost [microseconds per tuple]\n");
  std::printf("%-14s %12s %12s %12s\n", "", "cpu=25%", "cpu=50%",
              "cpu=75%");
  for (int m = 0; m < 3; ++m) {
    std::printf("memory=%-3.0f%%   %12.3f %12.3f %12.3f\n",
                100 * shares[m], 1000.0 * tuple_ms[m][0],
                1000.0 * tuple_ms[m][1], 1000.0 * tuple_ms[m][2]);
  }
  std::printf(
      "\ncpu_tuple_cost [fraction of a sequential page fetch] "
      "(paper's y-axis)\n");
  std::printf("%-14s %12s %12s %12s\n", "", "cpu=25%", "cpu=50%",
              "cpu=75%");
  for (int m = 0; m < 3; ++m) {
    std::printf("memory=%-3.0f%%   %12.4f %12.4f %12.4f\n",
                100 * shares[m], tuple_ratio[m][0], tuple_ratio[m][1],
                tuple_ratio[m][2]);
  }
  std::printf("\ncalibration fit residual (RMS, ms)\n");
  for (int m = 0; m < 3; ++m) {
    std::printf("memory=%-3.0f%%   %12.2f %12.2f %12.2f\n",
                100 * shares[m], residual[m][0], residual[m][1],
                residual[m][2]);
  }

  // The paper's qualitative claims, checked mechanically.
  bench::PrintRule();
  const double cpu_effect = tuple_ms[1][0] / tuple_ms[1][2];
  const double mem_effect = tuple_ms[0][1] / tuple_ms[2][1];
  std::printf(
      "sensitivity: cpu 25%%/75%% ratio = %.2fx (paper: parameter grows "
      "as CPU share shrinks)\n",
      cpu_effect);
  std::printf(
      "sensitivity: mem 25%%/75%% ratio = %.2fx (paper: parameter grows "
      "as memory shrinks)\n",
      mem_effect);
  const bool shape_holds = cpu_effect > 1.5 && mem_effect > 1.05;
  std::printf("figure-3 shape holds: %s\n", shape_holds ? "YES" : "NO");
  report.AddValue("cpu_effect", cpu_effect);
  report.AddValue("mem_effect", mem_effect);
  report.AddValue("shape_holds", shape_holds ? 1 : 0);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(shape_holds ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
