// Zone-map data skipping at scale (DESIGN.md §16, EXPERIMENTS.md):
//
//   1. Selectivity sweep — the same scan+aggregate query runs with
//      zone-map pruning on and off, over a table whose key is clustered
//      (insert order == key order, so page min/max ranges are tight) and
//      over the identical rows shuffled (every page spans the whole key
//      domain, so nothing can prune). Skipping must win big on clustered
//      data at low selectivity and must not tax the shuffled scan.
//   2. Above-spill end-to-end — a scan+sort over a table much larger than
//      the VM's buffer pool, selective enough to prune most pages but
//      still sorting more rows than work_mem holds, so the external-sort
//      path runs. This is the regime the paper cares about: I/O dominates
//      and physical design (here: data layout) decides the outcome.
//
// All speedups are ratios of *simulated* elapsed time, so they are
// deterministic and gated tightly in bench/baseline.json. Row results are
// cross-checked between the on/off runs; any divergence fails the bench.
//
// Scale knobs (simulated data lives in host RAM):
//   VDB_BENCH_SCAN_ROWS   rows per sweep table      (default 1,000,000)
//   VDB_BENCH_SPILL_ROWS  rows in the spill table   (default 4,000,000)
// The EXPERIMENTS.md multi-GB run uses VDB_BENCH_SPILL_ROWS=16000000
// (~1.9 GB of heap pages against a ~100 MiB buffer pool).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "exec/database.h"
#include "util/random.h"

namespace {

using namespace vdb;

uint64_t EnvRows(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long long parsed = std::atoll(env);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

/// Creates `name(k BIGINT, v DOUBLE, pad VARCHAR)` and fills it with
/// `rows` rows whose keys are `order[i]` (identity when empty). The pad
/// column makes rows ~130 bytes so page counts resemble a real table.
catalog::TableInfo* BuildTable(exec::Database* db, const std::string& name,
                               uint64_t rows,
                               const std::vector<uint64_t>& order) {
  auto table = db->catalog()->CreateTable(
      name, catalog::Schema({{"k", catalog::TypeId::kInt64},
                             {"v", catalog::TypeId::kDouble},
                             {"pad", catalog::TypeId::kString}}));
  VDB_CHECK_OK(table.status());
  const std::string pad(100, 'x');
  for (uint64_t i = 0; i < rows; ++i) {
    const uint64_t k = order.empty() ? i : order[i];
    VDB_CHECK_OK(db->catalog()->Insert(
        *table, {catalog::Value::Int64(static_cast<int64_t>(k)),
                 catalog::Value::Double(static_cast<double>(k) * 0.5),
                 catalog::Value::String(pad)}));
  }
  return *table;
}

struct RunResult {
  double sim_seconds = 0.0;
  uint64_t pages_pruned = 0;
  uint64_t pages_scanned = 0;
  uint64_t physical_reads = 0;
  std::string rows_text;  // flattened rows, for on/off cross-checking
};

/// Cold-cache execution of `sql` with zone maps forced to `zone_maps`.
RunResult RunCold(exec::Database* db, const sim::VirtualMachine& vm,
                  const std::string& sql, bool zone_maps) {
  const bool saved = db->zone_maps_enabled();
  db->set_zone_maps_enabled(zone_maps);
  VDB_CHECK_OK(db->DropCaches());
  Result<exec::QueryResult> result = db->Execute(sql, vm);
  db->set_zone_maps_enabled(saved);
  VDB_CHECK_OK(result.status());
  RunResult out;
  out.sim_seconds = result->elapsed_seconds;
  out.pages_pruned = result->pages_pruned;
  out.pages_scanned = result->pages_scanned;
  out.physical_reads = result->physical_reads;
  for (const catalog::Tuple& row : result->rows) {
    for (const catalog::Value& value : row) {
      out.rows_text += value.is_null() ? "NULL" : value.ToString();
      out.rows_text.push_back('|');
    }
    out.rows_text.push_back('\n');
  }
  return out;
}

}  // namespace

int main() {
  bench::InitMetrics();
  bench::BenchReport report("scan_skipping");
  bench::Stopwatch total;
  int failures = 0;

  const uint64_t sweep_rows = EnvRows("VDB_BENCH_SCAN_ROWS", 1000000);
  const uint64_t spill_rows = EnvRows("VDB_BENCH_SPILL_ROWS", 4000000);

  exec::Database db;
  // A mid-size allocation: enough buffer pool that the sweep tables do
  // not thrash, small enough that the spill table cannot fit.
  sim::VirtualMachine vm =
      bench::MakeVm(bench::ExperimentMachine(), 1.0, 0.25, 1.0);
  VDB_CHECK_OK(db.ApplyVmConfig(vm));

  bench::PrintTitle("Zone-map data skipping: selectivity sweep");
  std::fprintf(stderr, "[setup] building 2 x %llu-row sweep tables...\n",
               static_cast<unsigned long long>(sweep_rows));
  bench::Stopwatch setup;
  BuildTable(&db, "events_clustered", sweep_rows, {});
  std::vector<uint64_t> shuffled(sweep_rows);
  for (uint64_t i = 0; i < sweep_rows; ++i) shuffled[i] = i;
  Random rng(7);
  for (uint64_t i = sweep_rows; i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  BuildTable(&db, "events_shuffled", sweep_rows, shuffled);
  report.AddTiming("setup_sweep_s", setup.Seconds());

  std::printf("%-10s %-9s | %10s %10s %8s | %8s %8s\n", "table",
              "select", "off_ms", "on_ms", "speedup", "pruned", "scanned");
  bench::PrintRule();
  double clustered_speedup_1pct = 0.0;
  double shuffled_ratio_worst = 0.0;  // on/off; > 1 means pruning costs
  // Note: at very low selectivity even the shuffled table prunes — the
  // expected minimum of ~60 uniform keys per page is rows/60, so a
  // `k < rows/10000` cutoff sits below most page minima. That is a real
  // zone-map property, not a layout artifact; the 100% row makes sure a
  // predicate nothing can prune costs nothing.
  for (const double selectivity : {0.0001, 0.001, 0.01, 0.1, 1.0}) {
    const uint64_t cutoff = std::max<uint64_t>(
        1, static_cast<uint64_t>(selectivity *
                                 static_cast<double>(sweep_rows)));
    for (const char* table : {"events_clustered", "events_shuffled"}) {
      const std::string sql = "select count(*), sum(v) from " +
                              std::string(table) + " where k < " +
                              std::to_string(cutoff);
      const RunResult off = RunCold(&db, vm, sql, false);
      const RunResult on = RunCold(&db, vm, sql, true);
      if (on.rows_text != off.rows_text) {
        std::fprintf(stderr, "FAIL: rows differ with pruning on (%s)\n",
                     sql.c_str());
        ++failures;
      }
      const double speedup = off.sim_seconds / on.sim_seconds;
      std::printf("%-10s %8.2f%% | %10.2f %10.2f %7.1fx | %8llu %8llu\n",
                  table + 7, 100 * selectivity, 1000 * off.sim_seconds,
                  1000 * on.sim_seconds, speedup,
                  static_cast<unsigned long long>(on.pages_pruned),
                  static_cast<unsigned long long>(on.pages_scanned));
      const bool clustered = std::string(table) == "events_clustered";
      if (clustered && selectivity == 0.01) {
        clustered_speedup_1pct = speedup;
      }
      if (!clustered) {
        shuffled_ratio_worst = std::max(
            shuffled_ratio_worst, on.sim_seconds / off.sim_seconds);
      }
      if (selectivity == 1.0 && on.pages_pruned != 0) {
        std::fprintf(stderr,
                     "FAIL: %s pruned %llu pages under a 100%%-"
                     "selectivity predicate\n",
                     table,
                     static_cast<unsigned long long>(on.pages_pruned));
        ++failures;
      }
    }
  }
  report.AddValue("clustered_speedup_1pct", clustered_speedup_1pct);
  report.AddValue("shuffled_on_off_ratio", shuffled_ratio_worst);
  if (clustered_speedup_1pct < 5.0) {
    std::fprintf(stderr,
                 "FAIL: clustered speedup at 1%% selectivity is %.1fx "
                 "(need >= 5x)\n",
                 clustered_speedup_1pct);
    ++failures;
  }
  if (shuffled_ratio_worst > 1.05) {
    std::fprintf(stderr,
                 "FAIL: pruning slowed the shuffled scan %.3fx "
                 "(allowed <= 1.05)\n",
                 shuffled_ratio_worst);
    ++failures;
  }

  bench::PrintTitle("Above-spill end-to-end: scan+sort beyond work_mem");
  std::fprintf(stderr, "[setup] building %llu-row spill table...\n",
               static_cast<unsigned long long>(spill_rows));
  setup.Restart();
  catalog::TableInfo* big = BuildTable(&db, "big_clustered", spill_rows, {});
  report.AddTiming("setup_spill_s", setup.Seconds());
  // Starve the VM: the table must dwarf the buffer pool and the sorted
  // slice must overflow work_mem, so both the I/O tier and the external
  // sort are really exercised (memory share 5% of the testbed's 4 GB
  // gives a ~12800-page pool and ~10 MiB work_mem).
  sim::VirtualMachine vm_small =
      bench::MakeVm(bench::ExperimentMachine(), 1.0, 0.05, 1.0);
  VDB_CHECK_OK(db.ApplyVmConfig(vm_small));
  const uint64_t heap_bytes =
      big->heap->NumPages() * storage::kPageSize;
  std::printf("table: %llu pages (%.2f GB simulated), buffer pool %llu "
              "pages, work_mem %llu KiB\n",
              static_cast<unsigned long long>(big->heap->NumPages()),
              static_cast<double>(heap_bytes) / (1024.0 * 1024 * 1024),
              static_cast<unsigned long long>(db.config().buffer_pool_pages),
              static_cast<unsigned long long>(db.config().work_mem_bytes >>
                                              10));

  // Select ~5% of the table — few enough pages that pruning matters, yet
  // far more sort input than work_mem, so the external sort runs.
  const uint64_t spill_cutoff = std::max<uint64_t>(1, spill_rows / 20);
  const std::string spill_sql =
      "select v, pad from big_clustered where k < " +
      std::to_string(spill_cutoff) + " order by v desc";
  const uint64_t spilled_before =
      db.spill_manager() != nullptr ? db.spill_manager()->bytes_spilled()
                                    : 0;
  bench::Stopwatch host_off;
  const RunResult off = RunCold(&db, vm_small, spill_sql, false);
  const double host_off_s = host_off.Seconds();
  bench::Stopwatch host_on;
  const RunResult on = RunCold(&db, vm_small, spill_sql, true);
  const double host_on_s = host_on.Seconds();
  const uint64_t spilled_bytes =
      (db.spill_manager() != nullptr ? db.spill_manager()->bytes_spilled()
                                     : 0) -
      spilled_before;
  if (on.rows_text != off.rows_text) {
    std::fprintf(stderr, "FAIL: above-spill rows differ with pruning on\n");
    ++failures;
  }
  if (db.spill_manager() != nullptr && spilled_bytes == 0) {
    std::fprintf(stderr,
                 "FAIL: the sort never spilled — the run stayed under "
                 "work_mem and does not exercise the above-spill path\n");
    ++failures;
  }
  const double spill_speedup = off.sim_seconds / on.sim_seconds;
  std::printf("off: %.1f ms sim (%llu reads)  on: %.1f ms sim "
              "(%llu reads, %llu pruned)  speedup %.1fx  spilled %.1f MiB\n",
              1000 * off.sim_seconds,
              static_cast<unsigned long long>(off.physical_reads),
              1000 * on.sim_seconds,
              static_cast<unsigned long long>(on.physical_reads),
              static_cast<unsigned long long>(on.pages_pruned),
              spill_speedup,
              static_cast<double>(spilled_bytes) / (1024.0 * 1024));
  report.AddValue("above_spill_speedup", spill_speedup);
  report.AddValue("above_spill_spilled_mb",
                  static_cast<double>(spilled_bytes) / (1024.0 * 1024));
  report.AddTiming("above_spill_off_host_s", host_off_s);
  report.AddTiming("above_spill_on_host_s", host_on_s);
  if (spill_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: above-spill speedup %.1fx (need >= 5x on "
                 "clustered data at ~2%% selectivity)\n",
                 spill_speedup);
    ++failures;
  }

  report.AddTiming("total_s", total.Seconds());
  if (failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", failures);
  }
  return report.Finish(failures == 0 ? 0 : 1);
}
