// Extension (paper Section 7, "an important next step ... consider the
// dynamic case and reconfigure the virtual machines on the fly in
// response to changes in the workload"): workloads arrive in phases; a
// static deployment-time design is compared against re-running the
// virtualization design per phase.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/dynamic.h"
#include "datagen/tpch_queries.h"

namespace vdb {
namespace {

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("dynamic_redesign");
  bench::Stopwatch total_watch;
  const sim::MachineSpec machine = bench::ExperimentMachine();

  bench::Stopwatch calibrate_watch;
  auto calibration_db = bench::MakeCalibrationDatabase();
  calib::CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.5, 0.75};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.5};
  auto store =
      calib::CalibrateGrid(calibration_db.get(), machine,
                           sim::HypervisorModel::XenLike(), spec);
  if (!store.ok()) return 1;
  calibration_db.reset();
  report.AddTiming("calibrate_grid_s", calibrate_watch.Seconds());

  auto db1 = bench::MakeTpchDatabase();
  auto db2 = bench::MakeTpchDatabase();

  core::VirtualizationDesignProblem base;
  base.machine = machine;
  base.databases = {db1.get(), db2.get()};
  base.controlled = {sim::ResourceKind::kCpu};
  base.grid_steps = 4;

  auto wl = [&](const char* name, int query, int copies) {
    return core::Workload::Repeated(name, *datagen::TpchQuery(query),
                                    copies);
  };
  // Phase 1: VM1 runs the I/O-bound workload, VM2 the CPU-bound one.
  // Phase 2: the roles swap. Phase 3: both CPU-bound (no skew useful).
  const std::vector<std::vector<core::Workload>> phases = {
      {wl("io", 4, 2), wl("cpu", 13, 4)},
      {wl("cpu", 13, 4), wl("io", 4, 2)},
      {wl("cpu-a", 13, 2), wl("cpu-b", 13, 2)},
  };

  bench::Stopwatch compare_watch;
  auto comparison = core::CompareStaticVsDynamic(base, phases, *store);
  if (!comparison.ok()) {
    std::fprintf(stderr, "comparison failed: %s\n",
                 comparison.status().ToString().c_str());
    return 1;
  }
  report.AddTiming("compare_s", compare_watch.Seconds());

  bench::PrintTitle(
      "Static deployment-time design vs dynamic per-phase re-design");
  std::printf("static design (from phase 1): W1 cpu=%.0f%%, W2 cpu=%.0f%%\n\n",
              100 * comparison->static_design.allocations[0].cpu,
              100 * comparison->static_design.allocations[1].cpu);
  std::printf("%-8s %12s %12s %26s\n", "phase", "static", "dynamic",
              "dynamic allocation (cpu)");
  for (size_t p = 0; p < phases.size(); ++p) {
    std::printf("%-8zu %11.1fs %11.1fs %17.0f%% / %.0f%%\n", p + 1,
                comparison->static_phase_seconds[p],
                comparison->dynamic_phase_seconds[p],
                100 * comparison->dynamic_designs[p].allocations[0].cpu,
                100 * comparison->dynamic_designs[p].allocations[1].cpu);
  }
  std::printf("%-8s %11.1fs %11.1fs\n", "total",
              comparison->static_total_seconds,
              comparison->dynamic_total_seconds);

  bench::PrintRule();
  const double gain = 1.0 - comparison->dynamic_total_seconds /
                                comparison->static_total_seconds;
  std::printf("dynamic re-design gain over static: %.1f%%\n", 100 * gain);
  const bool ok =
      comparison->dynamic_total_seconds <=
          comparison->static_total_seconds * 1.001 &&
      gain > 0.02;
  std::printf("dynamic-redesign shape holds: %s\n", ok ? "YES" : "NO");
  report.AddValue("static_total_s", comparison->static_total_seconds);
  report.AddValue("dynamic_total_s", comparison->dynamic_total_seconds);
  report.AddValue("dynamic_gain", gain);
  report.AddValue("shape_holds", ok ? 1 : 0);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(ok ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
