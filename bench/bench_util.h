#ifndef VDB_BENCH_BENCH_UTIL_H_
#define VDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "calib/grid.h"
#include "calib/store.h"
#include "datagen/calibration_db.h"
#include "datagen/tpch.h"
#include "exec/database.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb::bench {

/// The experiment testbed machine: the paper's 2x2.8 GHz Xeon with 4 GB of
/// memory and a 2007-era disk.
inline sim::MachineSpec ExperimentMachine() {
  return sim::MachineSpec::PaperTestbed();
}

/// A memory-scaled variant (256 MiB) used for the calibration experiments,
/// where the calibration database must be comparable in size to the
/// buffer pool so that the memory allocation axis matters (the paper's
/// 1 GB+indexes database vs. 4 GB RAM). CPU and disk match the testbed.
inline sim::MachineSpec ScaledMemoryMachine() {
  sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();
  machine.name = "xeon-scaled-256MB";
  machine.memory_bytes = 256ULL << 20;
  return machine;
}

/// TPC-H environment used for the Figure 4/5 experiments: SF 0.05 with
/// widened comments (see DESIGN.md: Q13's LIKE cost scales with o_comment
/// length; lineitem width sets Q4's I/O footprint).
inline datagen::TpchConfig ExperimentTpchConfig() {
  datagen::TpchConfig config;
  config.scale_factor = 0.05;
  config.seed = 42;
  config.order_comment_chars = 120;
  config.lineitem_comment_chars = 80;
  return config;
}

/// Builds a database with the experiment TPC-H data. Prints progress.
inline std::unique_ptr<exec::Database> MakeTpchDatabase() {
  auto db = std::make_unique<exec::Database>();
  std::fprintf(stderr, "[setup] generating TPC-H data (SF %.2f)...\n",
               ExperimentTpchConfig().scale_factor);
  const Status status =
      datagen::GenerateTpch(db->catalog(), ExperimentTpchConfig());
  if (!status.ok()) {
    std::fprintf(stderr, "TPC-H generation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return db;
}

/// Calibration database sized against ScaledMemoryMachine (cal_large spans
/// the buffer-pool sizes induced by memory shares 25%..75%).
inline datagen::CalibrationDbConfig ExperimentCalibrationConfig() {
  datagen::CalibrationDbConfig config;
  config.base_rows = 70000;  // cal_large ~ 8x ~ 64 MiB
  config.pad_bytes = 64;
  return config;
}

/// Builds a database holding the experiment calibration tables.
inline std::unique_ptr<exec::Database> MakeCalibrationDatabase() {
  auto db = std::make_unique<exec::Database>();
  std::fprintf(stderr, "[setup] generating calibration database...\n");
  const Status status = datagen::GenerateCalibrationDb(
      db->catalog(), ExperimentCalibrationConfig());
  if (!status.ok()) {
    std::fprintf(stderr, "calibration DB generation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return db;
}

/// A VM on `machine` with the given shares and Xen-like overheads.
inline sim::VirtualMachine MakeVm(const sim::MachineSpec& machine,
                                  double cpu, double memory, double io) {
  return sim::VirtualMachine("vm", machine,
                             sim::HypervisorModel::XenLike(),
                             sim::ResourceShare(cpu, memory, io));
}

inline void PrintRule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

}  // namespace vdb::bench

#endif  // VDB_BENCH_BENCH_UTIL_H_
