#ifndef VDB_BENCH_BENCH_UTIL_H_
#define VDB_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "calib/grid.h"
#include "calib/store.h"
#include "datagen/calibration_db.h"
#include "datagen/tpch.h"
#include "exec/database.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/virtual_machine.h"

namespace vdb::bench {

/// The experiment testbed machine: the paper's 2x2.8 GHz Xeon with 4 GB of
/// memory and a 2007-era disk.
inline sim::MachineSpec ExperimentMachine() {
  return sim::MachineSpec::PaperTestbed();
}

/// A memory-scaled variant (256 MiB) used for the calibration experiments,
/// where the calibration database must be comparable in size to the
/// buffer pool so that the memory allocation axis matters (the paper's
/// 1 GB+indexes database vs. 4 GB RAM). CPU and disk match the testbed.
inline sim::MachineSpec ScaledMemoryMachine() {
  sim::MachineSpec machine = sim::MachineSpec::PaperTestbed();
  machine.name = "xeon-scaled-256MB";
  machine.memory_bytes = 256ULL << 20;
  return machine;
}

/// TPC-H environment used for the Figure 4/5 experiments: SF 0.05 with
/// widened comments (see DESIGN.md: Q13's LIKE cost scales with o_comment
/// length; lineitem width sets Q4's I/O footprint).
inline datagen::TpchConfig ExperimentTpchConfig() {
  datagen::TpchConfig config;
  config.scale_factor = 0.05;
  config.seed = 42;
  config.order_comment_chars = 120;
  config.lineitem_comment_chars = 80;
  return config;
}

/// Builds a database with the experiment TPC-H data. Prints progress.
inline std::unique_ptr<exec::Database> MakeTpchDatabase() {
  auto db = std::make_unique<exec::Database>();
  std::fprintf(stderr, "[setup] generating TPC-H data (SF %.2f)...\n",
               ExperimentTpchConfig().scale_factor);
  const Status status =
      datagen::GenerateTpch(db->catalog(), ExperimentTpchConfig());
  if (!status.ok()) {
    std::fprintf(stderr, "TPC-H generation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return db;
}

/// Calibration database sized against ScaledMemoryMachine (cal_large spans
/// the buffer-pool sizes induced by memory shares 25%..75%).
inline datagen::CalibrationDbConfig ExperimentCalibrationConfig() {
  datagen::CalibrationDbConfig config;
  config.base_rows = 70000;  // cal_large ~ 8x ~ 64 MiB
  config.pad_bytes = 64;
  return config;
}

/// Builds a database holding the experiment calibration tables.
inline std::unique_ptr<exec::Database> MakeCalibrationDatabase() {
  auto db = std::make_unique<exec::Database>();
  std::fprintf(stderr, "[setup] generating calibration database...\n");
  const Status status = datagen::GenerateCalibrationDb(
      db->catalog(), ExperimentCalibrationConfig());
  if (!status.ok()) {
    std::fprintf(stderr, "calibration DB generation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return db;
}

/// A VM on `machine` with the given shares and Xen-like overheads.
inline sim::VirtualMachine MakeVm(const sim::MachineSpec& machine,
                                  double cpu, double memory, double io) {
  return sim::VirtualMachine("vm", machine,
                             sim::HypervisorModel::XenLike(),
                             sim::ResourceShare(cpu, memory, io));
}

inline void PrintRule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

/// Turns the global metrics registry on for this bench run, unless the
/// user opted out with VDB_METRICS=0. Call once at the top of main.
inline void InitMetrics() {
  const char* env = std::getenv("VDB_METRICS");
  const bool enabled = env == nullptr || std::string(env) != "0";
  obs::MetricsRegistry::Global().set_enabled(enabled);
}

/// Host wall-clock stopwatch for instrumenting bench phases.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench results: named timings (host seconds) and
/// values, written as BENCH_<name>.json — together with a snapshot of the
/// global metrics registry — into the directory named by VDB_BENCH_OUT
/// (default: the working directory). The stdout report is unchanged;
/// this is the side channel CI's perf gate parses.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void AddTiming(const std::string& key, double seconds) {
    timings_.emplace_back(key, seconds);
  }
  void AddValue(const std::string& key, double value) {
    values_.emplace_back(key, value);
  }

  std::string OutputPath() const {
    const char* dir = std::getenv("VDB_BENCH_OUT");
    std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
    if (path.back() != '/') path.push_back('/');
    return path + "BENCH_" + name_ + ".json";
  }

  /// Writes the JSON file. Returns false — after printing why — when the
  /// file cannot be written or the write comes up short, so a broken CI
  /// filesystem cannot silently pass.
  bool Write() const {
    const std::string path = OutputPath();
    const std::string json = ToJson();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BENCH: cannot open %s for writing: %s\n",
                   path.c_str(), std::strerror(errno));
      return false;
    }
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool flushed = std::fflush(f) == 0;
    const bool closed = std::fclose(f) == 0;
    if (written != json.size() || !flushed || !closed) {
      std::fprintf(stderr, "BENCH: short or failed write to %s\n",
                   path.c_str());
      return false;
    }
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    return true;
  }

  /// Write() + exit-code plumbing: preserves a failing `exit_code`, and
  /// turns an I/O failure into exit 1 even when the bench itself passed.
  int Finish(int exit_code) const {
    const bool wrote = Write();
    if (exit_code != 0) return exit_code;
    return wrote ? 0 : 1;
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + name_ + "\",\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"timings\": {";
    AppendNumberMap(&out, timings_);
    out += "},\n  \"values\": {";
    AppendNumberMap(&out, values_);
    out += "},\n  \"metrics\": ";
    out += Indent(obs::MetricsRegistry::Global().ToJson(2), 2);
    out += "\n}\n";
    return out;
  }

 private:
  static void AppendNumberMap(
      std::string* out,
      const std::vector<std::pair<std::string, double>>& entries) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) out->push_back(',');
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", entries[i].second);
      *out += "\n    \"" + entries[i].first + "\": " + buf;
    }
    if (!entries.empty()) *out += "\n  ";
  }

  // Re-indents a rendered JSON block to sit at `by` spaces depth.
  static std::string Indent(const std::string& json, int by) {
    std::string out;
    out.reserve(json.size());
    for (char c : json) {
      out.push_back(c);
      if (c == '\n') out.append(static_cast<size_t>(by), ' ');
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, double>> timings_;
  std::vector<std::pair<std::string, double>> values_;
};

}  // namespace vdb::bench

#endif  // VDB_BENCH_BENCH_UTIL_H_
