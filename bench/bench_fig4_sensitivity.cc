// Reproduces Figure 4: estimated and actual execution times of TPC-H Q4
// and Q13 under CPU allocations of 25% / 50% / 75% (memory and I/O fixed
// at 50%), normalized to the default 50% CPU allocation.
//
// Paper result: Q4 is I/O-intensive and insensitive to the CPU share;
// Q13 is CPU-intensive and speeds up ~2x from 25% to 75%; the estimates
// (optimizer in virtualization-aware what-if mode with calibrated P(R))
// track the actual sensitivities.

#include <cstdio>

#include "bench/bench_util.h"
#include "calib/grid.h"
#include "datagen/tpch_queries.h"

namespace vdb {
namespace {

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("fig4_sensitivity");
  bench::Stopwatch total_watch;
  const sim::MachineSpec machine = bench::ExperimentMachine();

  // Offline step (paper Section 5): calibrate P(R) for the CPU grid.
  bench::Stopwatch calibrate_watch;
  auto calibration_db = bench::MakeCalibrationDatabase();
  calib::CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.50, 0.75};
  spec.memory_shares = {0.50};
  spec.io_shares = {0.50};
  auto store =
      calib::CalibrateGrid(calibration_db.get(), machine,
                           sim::HypervisorModel::XenLike(), spec);
  if (!store.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  calibration_db.reset();
  report.AddTiming("calibrate_grid_s", calibrate_watch.Seconds());

  auto db = bench::MakeTpchDatabase();
  bench::Stopwatch measure_watch;
  const double shares[] = {0.25, 0.50, 0.75};
  const int queries[] = {4, 13};

  double estimated[2][3];
  double actual[2][3];
  for (int q = 0; q < 2; ++q) {
    auto sql = datagen::TpchQuery(queries[q]);
    if (!sql.ok()) return 1;
    for (int c = 0; c < 3; ++c) {
      sim::VirtualMachine vm = bench::MakeVm(machine, shares[c], 0.5, 0.5);
      // Estimated: what-if optimization under the calibrated P(R).
      auto params = store->Lookup(vm.share());
      if (!params.ok()) return 1;
      if (!db->ApplyVmConfig(vm).ok()) return 1;
      db->SetOptimizerParams(*params);
      auto plan = db->Prepare(*sql);
      if (!plan.ok()) {
        std::fprintf(stderr, "Q%d prepare failed: %s\n", queries[q],
                     plan.status().ToString().c_str());
        return 1;
      }
      estimated[q][c] = (*plan)->total_cost_ms / 1000.0;
      // Actual: cold-cache execution of that plan inside the VM.
      if (!db->DropCaches().ok()) return 1;
      auto result = db->ExecutePlan(**plan, vm);
      if (!result.ok()) {
        std::fprintf(stderr, "Q%d execution failed: %s\n", queries[q],
                     result.status().ToString().c_str());
        return 1;
      }
      actual[q][c] = result->elapsed_seconds;
      std::fprintf(stderr,
                   "[measured] Q%d cpu=%.0f%%: est=%.2fs actual=%.2fs\n",
                   queries[q], 100 * shares[c], estimated[q][c],
                   actual[q][c]);
    }
  }

  report.AddTiming("measure_s", measure_watch.Seconds());

  bench::PrintTitle(
      "Figure 4: sensitivity of Q4 and Q13 to the CPU allocation");
  std::printf("memory and I/O fixed at 50%%; normalized to cpu=50%%\n\n");
  std::printf("%-26s %10s %10s %10s\n", "series", "cpu=25%", "cpu=50%",
              "cpu=75%");
  const char* names[2] = {"Q4", "Q13"};
  for (int q = 0; q < 2; ++q) {
    std::printf("%-3s estimated (normalized) %10.2f %10.2f %10.2f\n",
                names[q], estimated[q][0] / estimated[q][1], 1.0,
                estimated[q][2] / estimated[q][1]);
    std::printf("%-3s actual    (normalized) %10.2f %10.2f %10.2f\n",
                names[q], actual[q][0] / actual[q][1], 1.0,
                actual[q][2] / actual[q][1]);
    std::printf("%-3s actual    (seconds)    %10.2f %10.2f %10.2f\n\n",
                names[q], actual[q][0], actual[q][1], actual[q][2]);
  }

  bench::PrintRule();
  const double q4_actual_swing = actual[0][0] / actual[0][2];
  const double q13_actual_swing = actual[1][0] / actual[1][2];
  const double q4_estimated_swing = estimated[0][0] / estimated[0][2];
  const double q13_estimated_swing = estimated[1][0] / estimated[1][2];
  std::printf("Q4  25%%/75%% swing: actual %.2fx, estimated %.2fx "
              "(paper: insensitive)\n",
              q4_actual_swing, q4_estimated_swing);
  std::printf("Q13 25%%/75%% swing: actual %.2fx, estimated %.2fx "
              "(paper: ~2x)\n",
              q13_actual_swing, q13_estimated_swing);
  const bool shape_holds =
      q13_actual_swing > 1.7 && q4_actual_swing < 1.35 &&
      q13_estimated_swing > 1.5 * q4_estimated_swing;
  std::printf("figure-4 shape holds: %s\n", shape_holds ? "YES" : "NO");
  report.AddValue("q4_actual_swing", q4_actual_swing);
  report.AddValue("q13_actual_swing", q13_actual_swing);
  report.AddValue("q4_estimated_swing", q4_estimated_swing);
  report.AddValue("q13_estimated_swing", q13_estimated_swing);
  report.AddValue("shape_holds", shape_holds ? 1 : 0);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(shape_holds ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
