// Ablation: the what-if mode changes *plans*, not just costs. The paper's
// method re-optimizes each query under P(R); this harness shows that the
// chosen access path actually shifts with the resource allocation.
//
// Method: on the calibration table (sequential key `a`), find — for each
// CPU allocation — the widest `a BETWEEN lo AND hi` range for which the
// optimizer still prefers the B+-tree index over a sequential scan. A
// sequential scan's cost carries a large per-tuple CPU term, so as the
// CPU share shrinks (cpu_tuple_cost grows), the index stays attractive
// for wider ranges: the crossover width must grow as the CPU share drops.
// Any range width lying between two allocations' crossovers is a query
// whose plan differs across those allocations.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "calib/calibration.h"

namespace vdb {
namespace {

bool UsesIndex(const optimizer::PhysicalNode* node) {
  if (node->op == optimizer::PhysOp::kIndexScan) return true;
  for (const auto& child : node->children) {
    if (UsesIndex(child.get())) return true;
  }
  return false;
}

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("plan_shift");
  bench::Stopwatch total_watch;
  const sim::MachineSpec machine = bench::ExperimentMachine();
  datagen::CalibrationDbConfig config;
  config.base_rows = 70000;
  auto db = std::make_unique<exec::Database>();
  if (!datagen::GenerateCalibrationDb(db->catalog(), config).ok()) return 1;

  calib::Calibrator calibrator(db.get());
  const double shares[] = {0.10, 0.25, 0.50, 0.75, 0.90};

  bench::PrintTitle(
      "Plan shift under what-if parameters: seq-vs-index crossover vs CPU "
      "share");
  std::printf("%-10s %26s %18s\n", "cpu share",
              "widest range using index", "plan at width 40");

  double previous_crossover = -1.0;
  bool monotone = true;
  bool plan_at_40_differs = false;
  bool saw_index_at_40 = false;
  bool saw_seq_at_40 = false;
  for (double cpu : shares) {
    sim::VirtualMachine vm = bench::MakeVm(machine, cpu, 0.5, 0.5);
    bench::Stopwatch calibrate_watch;
    auto calibrated = calibrator.Calibrate(vm);
    if (!calibrated.ok()) return 1;
    char cpu_key[48];
    std::snprintf(cpu_key, sizeof(cpu_key), "cpu_%02d/calibrate_s",
                  static_cast<int>(100 * cpu));
    report.AddTiming(cpu_key, calibrate_watch.Seconds());
    db->SetOptimizerParams(calibrated->params);

    auto prefers_index = [&](int width) -> bool {
      const std::string sql =
          "select count(*) from cal_indexed where a between 35000 and " +
          std::to_string(35000 + width - 1);
      auto plan = db->Prepare(sql);
      VDB_CHECK(plan.ok()) << plan.status();
      return UsesIndex(plan->get());
    };
    // Binary search the crossover width in [1, 4096].
    int lo = 1;
    int hi = 4096;
    if (!prefers_index(lo)) {
      lo = 0;
      hi = 0;
    } else {
      while (lo < hi) {
        const int mid = (lo + hi + 1) / 2;
        if (prefers_index(mid)) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
    }
    const bool index_at_40 = prefers_index(40);
    saw_index_at_40 = saw_index_at_40 || index_at_40;
    saw_seq_at_40 = saw_seq_at_40 || !index_at_40;
    std::printf("%8.0f%% %22d keys %18s\n", 100 * cpu, lo,
                index_at_40 ? "IndexScan" : "SeqScan");
    char width_key[48];
    std::snprintf(width_key, sizeof(width_key), "cpu_%02d/crossover_width",
                  static_cast<int>(100 * cpu));
    report.AddValue(width_key, lo);
    if (previous_crossover >= 0 && lo > previous_crossover) {
      monotone = false;  // crossover must not grow with the CPU share
    }
    previous_crossover = lo;
  }
  plan_at_40_differs = saw_index_at_40 && saw_seq_at_40;

  bench::PrintRule();
  std::printf(
      "crossover narrows as the CPU share grows (seq scans get cheap): "
      "%s\n",
      monotone ? "YES" : "NO");
  std::printf(
      "a fixed query (width 40) is planned differently across "
      "allocations: %s\n",
      plan_at_40_differs ? "YES" : "NO");
  const bool ok = monotone && plan_at_40_differs;
  std::printf("plan-shift shape holds: %s\n", ok ? "YES" : "NO");
  report.AddValue("monotone", monotone ? 1 : 0);
  report.AddValue("plan_at_40_differs", plan_at_40_differs ? 1 : 0);
  report.AddValue("shape_holds", ok ? 1 : 0);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(ok ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
