// Ablation (paper Section 7: "developing techniques to reduce the number
// of calibration experiments required, since cost model calibration is a
// fairly lengthy process"): how sparse can the calibration grid P(R) be?
//
// We calibrate stores at three grid densities over (cpu, io), then test
// interpolated parameters at held-out allocations against directly
// calibrated ground truth: relative parameter error and the downstream
// error in what-if cost estimates for a TPC-H query.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "calib/grid.h"
#include "datagen/tpch_queries.h"

namespace vdb {
namespace {

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("calibration_grid");
  bench::Stopwatch total_watch;
  const sim::MachineSpec machine = bench::ExperimentMachine();
  datagen::CalibrationDbConfig config;
  config.base_rows = 12000;  // memory axis not exercised here
  auto calibration_db = std::make_unique<exec::Database>();
  if (!datagen::GenerateCalibrationDb(calibration_db->catalog(), config)
           .ok()) {
    return 1;
  }

  struct Density {
    const char* name;
    std::vector<double> axis;
  };
  const std::vector<Density> densities = {
      {"2x2 (corners)", {0.15, 0.85}},
      {"3x3", {0.15, 0.5, 0.85}},
      {"5x5", {0.15, 0.325, 0.5, 0.675, 0.85}},
  };
  const std::vector<sim::ResourceShare> held_out = {
      sim::ResourceShare(0.3, 0.5, 0.6), sim::ResourceShare(0.45, 0.5, 0.25),
      sim::ResourceShare(0.7, 0.5, 0.4), sim::ResourceShare(0.25, 0.5, 0.75)};

  // Ground truth at the held-out points.
  bench::Stopwatch truth_watch;
  calib::Calibrator calibrator(calibration_db.get());
  std::vector<optimizer::OptimizerParams> truth;
  for (const sim::ResourceShare& share : held_out) {
    sim::VirtualMachine vm("vm", machine, sim::HypervisorModel::XenLike(),
                           share);
    auto result = calibrator.Calibrate(vm);
    if (!result.ok()) return 1;
    truth.push_back(result->params);
  }
  report.AddTiming("ground_truth_calibration_s", truth_watch.Seconds());

  auto tpch = bench::MakeTpchDatabase();
  const std::string q3 = *datagen::TpchQuery(3);
  auto estimate = [&](const optimizer::OptimizerParams& params) -> double {
    tpch->SetOptimizerParams(params);
    auto plan = tpch->Prepare(q3);
    return plan.ok() ? (*plan)->total_cost_ms : -1.0;
  };

  bench::PrintTitle(
      "Calibration grid density vs interpolation quality (held-out "
      "allocations)");
  std::printf("%-15s %8s %22s %22s\n", "grid", "points",
              "max param error [%]", "max Q3 cost error [%]");

  double coarse_cost_error = 0.0;
  double fine_cost_error = 0.0;
  for (const Density& density : densities) {
    calib::CalibrationGridSpec spec;
    spec.cpu_shares = density.axis;
    spec.memory_shares = {0.5};
    spec.io_shares = density.axis;
    bench::Stopwatch grid_watch;
    auto store = calib::CalibrateGrid(calibration_db.get(), machine,
                                      sim::HypervisorModel::XenLike(), spec);
    if (!store.ok()) return 1;
    const std::string grid_key =
        "grid_" + std::to_string(density.axis.size()) + "x" +
        std::to_string(density.axis.size());
    report.AddTiming(grid_key + "/calibrate_s", grid_watch.Seconds());

    double max_param_error = 0.0;
    double max_cost_error = 0.0;
    for (size_t i = 0; i < held_out.size(); ++i) {
      auto interpolated = store->Lookup(held_out[i]);
      if (!interpolated.ok()) return 1;
      const auto est = interpolated->CalibratedVector();
      const auto ref = truth[i].CalibratedVector();
      for (int k = 0; k < optimizer::OptimizerParams::kNumCalibrated; ++k) {
        if (ref[k] > 1e-9) {
          max_param_error = std::max(
              max_param_error, std::fabs(est[k] - ref[k]) / ref[k]);
        }
      }
      const double est_cost = estimate(*interpolated);
      const double ref_cost = estimate(truth[i]);
      if (est_cost < 0 || ref_cost <= 0) return 1;
      max_cost_error = std::max(max_cost_error,
                                std::fabs(est_cost - ref_cost) / ref_cost);
    }
    std::printf("%-15s %8zu %21.1f%% %21.1f%%\n", density.name,
                store->size(), 100.0 * max_param_error,
                100.0 * max_cost_error);
    report.AddValue(grid_key + "/max_param_error", max_param_error);
    report.AddValue(grid_key + "/max_cost_error", max_cost_error);
    if (density.axis.size() == 3) coarse_cost_error = max_cost_error;
    if (density.axis.size() == 5) fine_cost_error = max_cost_error;
  }

  // Robust-measurement overhead: the repeat-and-reject pipeline
  // (median-of-5 with early stop, retries, Huber refit) vs a single shot
  // at the same allocation. Early stop keeps the deterministic noise-free
  // case near 2x, not 5x.
  bench::PrintRule();
  const sim::ResourceShare overhead_share(0.5, 0.5, 0.5);
  sim::VirtualMachine overhead_vm("vm", machine,
                                  sim::HypervisorModel::XenLike(),
                                  overhead_share);
  bench::Stopwatch single_watch;
  auto single_shot = calibrator.Calibrate(overhead_vm);
  const double single_s = single_watch.Seconds();
  bench::Stopwatch robust_watch;
  auto robust = calibrator.Calibrate(overhead_vm,
                                     calib::CalibrationOptions::Robust());
  const double robust_s = robust_watch.Seconds();
  if (!single_shot.ok() || !robust.ok()) return 1;
  const double overhead_ratio = robust_s / std::max(single_s, 1e-9);
  std::printf(
      "robust measurement overhead: single-shot %.3fs, robust %.3fs "
      "(%.2fx, %d measurements)\n",
      single_s, robust_s, overhead_ratio, robust->stats.measurements);
  report.AddTiming("single_shot_calibration_s", single_s);
  report.AddTiming("robust_calibration_s", robust_s);
  report.AddValue("robust_overhead_ratio", overhead_ratio);
  const bool overhead_ok = overhead_ratio <= 3.0;
  std::printf("robust overhead within 3x budget: %s\n",
              overhead_ok ? "YES" : "NO");

  bench::PrintRule();
  std::printf(
      "takeaway: interpolating P(R) converges with grid density — a 3x3 "
      "grid keeps what-if cost errors near %.0f%%, a 5x5 grid near "
      "%.0f%%; the paper's concern about calibration cost is a real "
      "accuracy/effort trade-off.\n",
      100.0 * coarse_cost_error, 100.0 * fine_cost_error);
  const bool ok = fine_cost_error <= coarse_cost_error + 1e-9 &&
                  fine_cost_error < 0.25 && overhead_ok;
  std::printf("grid-densification shape holds: %s\n", ok ? "YES" : "NO");
  report.AddValue("shape_holds", ok ? 1 : 0);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(ok ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
