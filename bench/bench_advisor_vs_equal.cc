// Ablation: across several workload mixes, compare the *measured* total
// execution time of (a) the default equal split, (b) the advisor's
// recommendation, and (c) the best design found by exhaustively measuring
// every candidate allocation (the oracle). The advisor only sees what-if
// estimates, so matching the oracle validates the paper's claim that the
// cost model "can identify good resource allocations".

#include <cstdio>

#include "bench/bench_util.h"
#include "core/advisor.h"
#include "datagen/tpch_queries.h"

namespace vdb {
namespace {

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("advisor_vs_equal");
  bench::Stopwatch total_watch;
  const sim::MachineSpec machine = bench::ExperimentMachine();

  bench::Stopwatch calibrate_watch;
  auto calibration_db = bench::MakeCalibrationDatabase();
  calib::CalibrationGridSpec spec;
  spec.cpu_shares = {0.2, 0.4, 0.6, 0.8};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.5};
  auto store =
      calib::CalibrateGrid(calibration_db.get(), machine,
                           sim::HypervisorModel::XenLike(), spec);
  if (!store.ok()) return 1;
  calibration_db.reset();
  report.AddTiming("calibrate_grid_s", calibrate_watch.Seconds());

  auto db1 = bench::MakeTpchDatabase();
  auto db2 = bench::MakeTpchDatabase();

  struct Mix {
    const char* name;
    core::Workload w1;
    core::Workload w2;
  };
  auto wl = [&](const char* name, int query, int copies) {
    return core::Workload::Repeated(name, *datagen::TpchQuery(query),
                                    copies);
  };
  const std::vector<Mix> mixes = {
      {"io vs cpu (2xQ4/6xQ13)", wl("w1", 4, 2), wl("w2", 13, 6)},
      {"cpu vs cpu (Q13/Q13)", wl("w1", 13, 2), wl("w2", 13, 2)},
      {"scan vs cpu (Q1/Q13)", wl("w1", 1, 1), wl("w2", 13, 3)},
      {"mixed (Q12/Q13)", wl("w1", 12, 1), wl("w2", 13, 2)},
  };

  bench::PrintTitle(
      "Measured workload time: equal split vs advisor vs measured oracle");
  std::printf("%-22s %10s %10s %10s %12s\n", "mix", "equal", "advisor",
              "oracle", "advisor gain");

  core::Advisor advisor(&*store);
  core::Advisor::MeasureOptions options;
  options.cold_per_statement = true;
  bool all_ok = true;
  int mix_index = 0;
  for (const Mix& mix : mixes) {
    core::VirtualizationDesignProblem problem;
    problem.machine = machine;
    problem.workloads = {mix.w1, mix.w2};
    problem.databases = {db1.get(), db2.get()};
    problem.controlled = {sim::ResourceKind::kCpu};
    problem.grid_steps = 4;  // candidate CPU splits in 25% units (50/50 representable)

    auto recommended = advisor.Recommend(problem);
    if (!recommended.ok()) return 1;
    auto advisor_outcome =
        core::Advisor::Measure(problem, recommended->allocations, options);
    auto equal_outcome = core::Advisor::Measure(
        problem, core::EqualSplitSolution(problem).allocations, options);
    if (!advisor_outcome.ok() || !equal_outcome.ok()) return 1;

    // Oracle: measure every discretized split.
    double oracle = -1.0;
    for (int units = 1; units < problem.grid_steps; ++units) {
      const double share =
          static_cast<double>(units) / problem.grid_steps;
      std::vector<sim::ResourceShare> allocations = {
          sim::ResourceShare(share, 0.5, 0.5),
          sim::ResourceShare(1.0 - share, 0.5, 0.5)};
      auto outcome = core::Advisor::Measure(problem, allocations, options);
      if (!outcome.ok()) return 1;
      if (oracle < 0 || outcome->total_seconds < oracle) {
        oracle = outcome->total_seconds;
      }
    }

    const double gain =
        1.0 - advisor_outcome->total_seconds / equal_outcome->total_seconds;
    std::printf("%-22s %9.1fs %9.1fs %9.1fs %11.1f%%\n", mix.name,
                equal_outcome->total_seconds,
                advisor_outcome->total_seconds, oracle, 100.0 * gain);
    const std::string mix_key = "mix" + std::to_string(mix_index++);
    report.AddValue(mix_key + "/equal_s", equal_outcome->total_seconds);
    report.AddValue(mix_key + "/advisor_s", advisor_outcome->total_seconds);
    report.AddValue(mix_key + "/oracle_s", oracle);
    report.AddValue(mix_key + "/advisor_gain", gain);
    // The advisor must never measurably lose to equal split, and must be
    // within 10% of the measured oracle.
    if (advisor_outcome->total_seconds >
            1.02 * equal_outcome->total_seconds ||
        advisor_outcome->total_seconds > 1.10 * oracle) {
      all_ok = false;
    }
  }
  bench::PrintRule();
  std::printf(
      "advisor never loses to equal split and stays within 10%% of the "
      "measured oracle: %s\n",
      all_ok ? "YES" : "NO");
  report.AddValue("shape_holds", all_ok ? 1 : 0);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(all_ok ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
