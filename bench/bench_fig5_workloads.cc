// Reproduces Figure 5: total execution time of two workloads — W1 = 3
// copies of TPC-H Q4 (I/O-intensive) and W2 = 9 copies of Q13
// (CPU-intensive) — under the default equal CPU split (50/50) versus the
// design suggested by the what-if cost model (25% CPU to W1, 75% to W2).
//
// Paper result: the skewed allocation improves the Q13 workload by ~30%
// without (significantly) hurting the Q4 workload, so it beats the
// default. We additionally verify that the advisor's search recommends
// the skewed allocation from estimates alone.

#include <cstdio>

#include "bench/bench_util.h"
#include "calib/grid.h"
#include "core/advisor.h"
#include "datagen/tpch_queries.h"

namespace vdb {
namespace {

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("fig5_workloads");
  bench::Stopwatch total_watch;
  const sim::MachineSpec machine = bench::ExperimentMachine();

  bench::Stopwatch calibrate_watch;
  auto calibration_db = bench::MakeCalibrationDatabase();
  calib::CalibrationGridSpec spec;
  spec.cpu_shares = {0.25, 0.375, 0.50, 0.625, 0.75};
  spec.memory_shares = {0.50};
  spec.io_shares = {0.50};
  auto store =
      calib::CalibrateGrid(calibration_db.get(), machine,
                           sim::HypervisorModel::XenLike(), spec);
  if (!store.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  calibration_db.reset();
  report.AddTiming("calibrate_grid_s", calibrate_watch.Seconds());

  // Two database instances (one per VM), same TPC-H contents.
  auto db1 = bench::MakeTpchDatabase();
  auto db2 = bench::MakeTpchDatabase();

  core::VirtualizationDesignProblem problem;
  problem.machine = machine;
  problem.workloads = {
      core::Workload::Repeated("W1 (3 x Q4)", *datagen::TpchQuery(4), 3),
      core::Workload::Repeated("W2 (9 x Q13)", *datagen::TpchQuery(13), 9)};
  problem.databases = {db1.get(), db2.get()};
  problem.controlled = {sim::ResourceKind::kCpu};
  problem.grid_steps = 4;  // allocations in multiples of 25%

  // What the advisor recommends from estimates alone.
  bench::Stopwatch advisor_watch;
  core::Advisor advisor(&*store);
  auto recommended = advisor.Recommend(problem);
  if (!recommended.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 recommended.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[advisor] %s\n",
               recommended->ToString().c_str());
  report.AddTiming("advisor_recommend_s", advisor_watch.Seconds());

  // The paper's two candidate designs. Queries repeat within a workload,
  // so caches are dropped between statements (the paper's database is
  // larger than the VM's memory; see DESIGN.md).
  core::Advisor::MeasureOptions options;
  options.cold_per_statement = true;
  const std::vector<sim::ResourceShare> equal_split = {
      sim::ResourceShare(0.50, 0.5, 0.5), sim::ResourceShare(0.50, 0.5, 0.5)};
  const std::vector<sim::ResourceShare> skewed = {
      sim::ResourceShare(0.25, 0.5, 0.5), sim::ResourceShare(0.75, 0.5, 0.5)};

  bench::Stopwatch measure_watch;
  auto equal_outcome = core::Advisor::Measure(problem, equal_split, options);
  auto skewed_outcome = core::Advisor::Measure(problem, skewed, options);
  if (!equal_outcome.ok() || !skewed_outcome.ok()) {
    std::fprintf(stderr, "measurement failed\n");
    return 1;
  }
  report.AddTiming("measure_s", measure_watch.Seconds());

  bench::PrintTitle("Figure 5: workload execution time under the two designs");
  std::printf("%-18s %16s %16s\n", "workload", "default (50/50)",
              "75% CPU to Q13");
  for (int i = 0; i < 2; ++i) {
    std::printf("%-18s %15.1fs %15.1fs\n",
                problem.workloads[i].name.c_str(),
                equal_outcome->workload_seconds[i],
                skewed_outcome->workload_seconds[i]);
  }
  std::printf("%-18s %15.1fs %15.1fs\n", "total",
              equal_outcome->total_seconds, skewed_outcome->total_seconds);

  bench::PrintRule();
  const double q13_gain = 1.0 - skewed_outcome->workload_seconds[1] /
                                    equal_outcome->workload_seconds[1];
  const double q4_loss = skewed_outcome->workload_seconds[0] /
                             equal_outcome->workload_seconds[0] -
                         1.0;
  std::printf("W2 (Q13) improvement: %.0f%% (paper: ~30%%)\n",
              100.0 * q13_gain);
  std::printf("W1 (Q4) degradation:  %.0f%% (paper: insignificant)\n",
              100.0 * q4_loss);
  std::printf("advisor recommends skewed allocation: %s (W2 cpu = %.0f%%)\n",
              recommended->allocations[1].cpu > 0.5 ? "YES" : "NO",
              100.0 * recommended->allocations[1].cpu);
  const bool shape_holds =
      q13_gain > 0.15 && q4_loss < 0.25 &&
      skewed_outcome->total_seconds < equal_outcome->total_seconds &&
      recommended->allocations[1].cpu > 0.5;
  std::printf("figure-5 shape holds: %s\n", shape_holds ? "YES" : "NO");
  report.AddValue("q13_gain", q13_gain);
  report.AddValue("q4_loss", q4_loss);
  report.AddValue("recommended_w2_cpu", recommended->allocations[1].cpu);
  report.AddValue("shape_holds", shape_holds ? 1 : 0);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish(shape_holds ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
