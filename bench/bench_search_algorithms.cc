// Framework ablation (paper Section 3 / Figure 2): the paper leaves the
// combinatorial search unspecified ("any standard combinatorial search
// algorithm such as greedy search or dynamic programming will apply").
// This harness compares the three searchers on mixed TPC-H workload sets:
// solution quality (estimated total cost), number of Cost(W,R)
// evaluations, and host search time, with exhaustive search as ground
// truth where feasible. Each searcher also runs with a 4-thread cost
// fan-out (SearchOptions{num_threads}), which must reproduce the serial
// solution bit-for-bit; on machines with >= 4 hardware threads the
// exhaustive search must additionally show a >= 2x wall-clock speedup.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/advisor.h"
#include "core/cost_model.h"
#include "core/search.h"
#include "datagen/tpch_queries.h"
#include "util/thread_pool.h"

namespace vdb {
namespace {

double HostSeconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Run() {
  bench::InitMetrics();
  bench::BenchReport report("search_algorithms");
  bench::Stopwatch total_watch;
  const sim::MachineSpec machine = bench::ExperimentMachine();

  bench::Stopwatch setup_watch;
  auto calibration_db = bench::MakeCalibrationDatabase();
  calib::CalibrationGridSpec spec;
  spec.cpu_shares = {0.1, 0.25, 0.5, 0.75, 0.9};
  spec.memory_shares = {0.5};
  spec.io_shares = {0.1, 0.25, 0.5, 0.75, 0.9};
  auto store =
      calib::CalibrateGrid(calibration_db.get(), machine,
                           sim::HypervisorModel::XenLike(), spec);
  if (!store.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  calibration_db.reset();

  auto db = bench::MakeTpchDatabase();
  report.AddTiming("setup_s", setup_watch.Seconds());
  auto workload = [&](const char* name, int query, int copies) {
    return core::Workload::Repeated(name, *datagen::TpchQuery(query),
                                    copies);
  };

  struct Scenario {
    const char* name;
    const char* key;  // sanitized, for BENCH_*.json timing keys
    std::vector<core::Workload> workloads;
    std::vector<sim::ResourceKind> controlled;
    int grid_steps;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"N=2, cpu", "n2_cpu",
                       {workload("io", 4, 2), workload("cpu", 13, 2)},
                       {sim::ResourceKind::kCpu},
                       16});
  scenarios.push_back({"N=3, cpu", "n3_cpu",
                       {workload("io", 4, 2), workload("cpu", 13, 2),
                        workload("scan", 1, 1)},
                       {sim::ResourceKind::kCpu},
                       12});
  scenarios.push_back({"N=4, cpu", "n4_cpu",
                       {workload("io", 4, 1), workload("cpu", 13, 1),
                        workload("scan", 1, 1), workload("join", 3, 1)},
                       {sim::ResourceKind::kCpu},
                       12});
  scenarios.push_back({"N=2, cpu+io", "n2_cpu_io",
                       {workload("io", 4, 2), workload("cpu", 13, 2)},
                       {sim::ResourceKind::kCpu, sim::ResourceKind::kIo},
                       10});
  scenarios.push_back({"N=3, cpu+io", "n3_cpu_io",
                       {workload("io", 4, 2), workload("cpu", 13, 2),
                        workload("mix", 12, 1)},
                       {sim::ResourceKind::kCpu, sim::ResourceKind::kIo},
                       9});

  const int hardware_threads = util::ThreadPool::HardwareConcurrency();
  bench::PrintTitle(
      "Search algorithm comparison for the virtualization design problem");
  std::printf("hardware threads: %d\n", hardware_threads);
  std::printf("%-13s %-20s %14s %10s %10s %9s\n", "scenario", "algorithm",
              "est. cost", "vs best", "evals", "host (s)");

  bool all_ok = true;
  bool parallel_identical = true;
  double exhaustive_speedup_sum = 0.0;
  int exhaustive_speedup_count = 0;
  for (const Scenario& scenario : scenarios) {
    core::VirtualizationDesignProblem problem;
    problem.machine = machine;
    problem.workloads = scenario.workloads;
    problem.databases.assign(scenario.workloads.size(), db.get());
    problem.controlled = scenario.controlled;
    problem.grid_steps = scenario.grid_steps;

    double best_cost = -1.0;
    struct Row {
      const char* algorithm;
      double cost;
      uint64_t evals;
      double seconds;
      bool ok;
    };
    std::vector<Row> rows;
    for (core::SearchAlgorithm algorithm :
         {core::SearchAlgorithm::kExhaustive, core::SearchAlgorithm::kGreedy,
          core::SearchAlgorithm::kDynamicProgramming}) {
      core::WorkloadCostModel cost(&problem, &*store);
      const auto start = std::chrono::steady_clock::now();
      auto solution = core::SolveDesignProblem(problem, &cost, algorithm);
      const double seconds = HostSeconds(start);
      if (!solution.ok()) {
        rows.push_back({core::SearchAlgorithmName(algorithm), 0, 0,
                        seconds, false});
        continue;
      }
      if (best_cost < 0 || solution->total_cost_ms < best_cost) {
        best_cost = solution->total_cost_ms;
      }
      rows.push_back({core::SearchAlgorithmName(algorithm),
                      solution->total_cost_ms, solution->evaluations,
                      seconds, true});
      report.AddTiming(std::string(scenario.key) + "/" +
                           core::SearchAlgorithmName(algorithm) + "_s",
                       seconds);

      // Re-run with a 4-thread cost fan-out against a cold cache: the
      // parallel search must reproduce the serial solution bit-for-bit.
      core::WorkloadCostModel parallel_cost(&problem, &*store);
      core::SearchOptions options;
      options.num_threads = 4;
      const auto parallel_start = std::chrono::steady_clock::now();
      auto parallel =
          core::SolveDesignProblem(problem, &parallel_cost, algorithm, options);
      const double parallel_seconds = HostSeconds(parallel_start);
      if (!parallel.ok() ||
          parallel->total_cost_ms != solution->total_cost_ms ||
          parallel->allocations.size() != solution->allocations.size()) {
        parallel_identical = false;
      } else {
        for (size_t i = 0; i < parallel->allocations.size(); ++i) {
          for (sim::ResourceKind r : problem.controlled) {
            if (parallel->allocations[i].Get(r) !=
                solution->allocations[i].Get(r)) {
              parallel_identical = false;
            }
          }
        }
      }
      if (algorithm == core::SearchAlgorithm::kExhaustive &&
          parallel_seconds > 0) {
        const double speedup = seconds / parallel_seconds;
        report.AddTiming(std::string(scenario.key) + "/exhaustive_4thr_s",
                         parallel_seconds);
        exhaustive_speedup_sum += speedup;
        ++exhaustive_speedup_count;
        std::printf("%-13s %-20s %14s %10s %10s %8.2f  (%.2fx vs serial)\n",
                    scenario.name, "exhaustive(4 thr)", "(same)", "-", "-",
                    parallel_seconds, speedup);
      }
    }
    // Equal-split reference.
    {
      core::WorkloadCostModel cost(&problem, &*store);
      auto equal = cost.TotalCost(core::EqualSplitSolution(problem).allocations);
      if (equal.ok()) {
        std::printf("%-13s %-20s %12.0fms %9.2fx %10s %9s\n",
                    scenario.name, "equal-split(baseline)", *equal,
                    *equal / best_cost, "-", "-");
      }
    }
    for (const Row& row : rows) {
      if (!row.ok) {
        std::printf("%-13s %-20s %14s %10s %10s %8.2f\n", scenario.name,
                    row.algorithm, "(skipped)", "-", "-", row.seconds);
        continue;
      }
      std::printf("%-13s %-20s %12.0fms %9.3fx %10llu %8.2f\n",
                  scenario.name, row.algorithm, row.cost,
                  row.cost / best_cost,
                  static_cast<unsigned long long>(row.evals), row.seconds);
      // Greedy may be suboptimal, but never worse than 10% here; DP and
      // exhaustive must agree with the best.
      if (row.cost > 1.10 * best_cost) all_ok = false;
    }
    bench::PrintRule();
  }
  const double mean_speedup =
      exhaustive_speedup_count > 0
          ? exhaustive_speedup_sum / exhaustive_speedup_count
          : 0.0;
  std::printf("all searchers within 10%% of the best design: %s\n",
              all_ok ? "YES" : "NO");
  std::printf("4-thread solutions identical to serial: %s\n",
              parallel_identical ? "YES" : "NO");
  std::printf("mean exhaustive speedup at 4 threads: %.2fx\n", mean_speedup);
  if (hardware_threads >= 4) {
    // The >= 2x gate only makes sense when 4 worker threads can actually
    // run in parallel; on smaller machines the speedup is informational.
    const bool fast_enough = mean_speedup >= 2.0;
    std::printf("speedup >= 2x at 4 threads: %s\n",
                fast_enough ? "YES" : "NO");
    if (!fast_enough) all_ok = false;
  } else {
    std::printf("speedup >= 2x at 4 threads: SKIPPED (%d hardware threads)\n",
                hardware_threads);
  }

  // Observability overhead check (DESIGN.md §9 budget): the same greedy
  // search (cold cost-model cache each time) with the metrics registry on
  // vs off. Best-of-3 on each side to shave scheduler noise; the ratio is
  // recorded in the JSON for CI's perf gate (baseline 1.0, so a >25%
  // metrics tax fails the perf-smoke job).
  {
    core::VirtualizationDesignProblem problem;
    problem.machine = machine;
    problem.workloads = scenarios[1].workloads;
    problem.databases.assign(scenarios[1].workloads.size(), db.get());
    problem.controlled = scenarios[1].controlled;
    problem.grid_steps = scenarios[1].grid_steps;
    auto& registry = obs::MetricsRegistry::Global();
    const bool was_enabled = registry.enabled();
    auto best_of = [&](bool metrics_on) -> double {
      registry.set_enabled(metrics_on);
      double best = -1.0;
      for (int rep = 0; rep < 3; ++rep) {
        // Batch 10 solves per rep so the measured interval is ~10 ms:
        // sub-millisecond intervals are scheduler noise, not signal.
        bench::Stopwatch watch;
        for (int solve = 0; solve < 10; ++solve) {
          core::WorkloadCostModel cost(&problem, &*store);
          auto solution = core::SolveDesignProblem(
              problem, &cost, core::SearchAlgorithm::kGreedy);
          if (!solution.ok()) return -1.0;
        }
        const double seconds = watch.Seconds();
        if (best < 0 || seconds < best) best = seconds;
      }
      return best;
    };
    const double off_seconds = best_of(false);
    const double on_seconds = best_of(true);
    registry.set_enabled(was_enabled);
    if (off_seconds > 0 && on_seconds > 0) {
      const double ratio = on_seconds / off_seconds;
      std::printf(
          "metrics overhead (greedy %s): off %.3fs, on %.3fs -> %.3fx\n",
          scenarios[1].name, off_seconds, on_seconds, ratio);
      report.AddTiming("overhead_check/metrics_off_s", off_seconds);
      report.AddTiming("overhead_check/metrics_on_s", on_seconds);
      report.AddValue("metrics_overhead_ratio", ratio);
    } else {
      all_ok = false;
    }
  }

  report.AddValue("all_within_10pct", all_ok ? 1 : 0);
  report.AddValue("parallel_identical", parallel_identical ? 1 : 0);
  report.AddValue("mean_exhaustive_speedup_4thr", mean_speedup);
  report.AddValue("hardware_threads", hardware_threads);
  report.AddTiming("total_s", total_watch.Seconds());
  return report.Finish((all_ok && parallel_identical) ? 0 : 1);
}

}  // namespace
}  // namespace vdb

int main() { return vdb::Run(); }
