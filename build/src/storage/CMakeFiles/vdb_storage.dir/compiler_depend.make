# Empty compiler generated dependencies file for vdb_storage.
# This may be replaced when dependencies are built.
