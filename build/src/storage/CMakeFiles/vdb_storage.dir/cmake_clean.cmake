file(REMOVE_RECURSE
  "CMakeFiles/vdb_storage.dir/btree.cc.o"
  "CMakeFiles/vdb_storage.dir/btree.cc.o.d"
  "CMakeFiles/vdb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/vdb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/vdb_storage.dir/heap_file.cc.o"
  "CMakeFiles/vdb_storage.dir/heap_file.cc.o.d"
  "libvdb_storage.a"
  "libvdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
