file(REMOVE_RECURSE
  "CMakeFiles/vdb_util.dir/linalg.cc.o"
  "CMakeFiles/vdb_util.dir/linalg.cc.o.d"
  "CMakeFiles/vdb_util.dir/logging.cc.o"
  "CMakeFiles/vdb_util.dir/logging.cc.o.d"
  "CMakeFiles/vdb_util.dir/random.cc.o"
  "CMakeFiles/vdb_util.dir/random.cc.o.d"
  "CMakeFiles/vdb_util.dir/status.cc.o"
  "CMakeFiles/vdb_util.dir/status.cc.o.d"
  "CMakeFiles/vdb_util.dir/string_util.cc.o"
  "CMakeFiles/vdb_util.dir/string_util.cc.o.d"
  "libvdb_util.a"
  "libvdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
