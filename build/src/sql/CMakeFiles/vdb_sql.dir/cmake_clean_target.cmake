file(REMOVE_RECURSE
  "libvdb_sql.a"
)
