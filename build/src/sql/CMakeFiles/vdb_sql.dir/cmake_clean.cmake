file(REMOVE_RECURSE
  "CMakeFiles/vdb_sql.dir/ast.cc.o"
  "CMakeFiles/vdb_sql.dir/ast.cc.o.d"
  "CMakeFiles/vdb_sql.dir/lexer.cc.o"
  "CMakeFiles/vdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/vdb_sql.dir/parser.cc.o"
  "CMakeFiles/vdb_sql.dir/parser.cc.o.d"
  "libvdb_sql.a"
  "libvdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
