# Empty dependencies file for vdb_sql.
# This may be replaced when dependencies are built.
