file(REMOVE_RECURSE
  "libvdb_optimizer.a"
)
