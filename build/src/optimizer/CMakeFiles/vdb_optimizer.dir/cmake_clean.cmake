file(REMOVE_RECURSE
  "CMakeFiles/vdb_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/vdb_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/vdb_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/vdb_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/vdb_optimizer.dir/params.cc.o"
  "CMakeFiles/vdb_optimizer.dir/params.cc.o.d"
  "CMakeFiles/vdb_optimizer.dir/physical.cc.o"
  "CMakeFiles/vdb_optimizer.dir/physical.cc.o.d"
  "CMakeFiles/vdb_optimizer.dir/selectivity.cc.o"
  "CMakeFiles/vdb_optimizer.dir/selectivity.cc.o.d"
  "libvdb_optimizer.a"
  "libvdb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
