
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/params.cc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/params.cc.o" "gcc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/params.cc.o.d"
  "/root/repo/src/optimizer/physical.cc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/physical.cc.o" "gcc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/physical.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/selectivity.cc.o" "gcc" "src/optimizer/CMakeFiles/vdb_optimizer.dir/selectivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/vdb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/vdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
