# Empty compiler generated dependencies file for vdb_optimizer.
# This may be replaced when dependencies are built.
