# Empty dependencies file for vdb_datagen.
# This may be replaced when dependencies are built.
