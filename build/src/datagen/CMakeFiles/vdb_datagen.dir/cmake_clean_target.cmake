file(REMOVE_RECURSE
  "libvdb_datagen.a"
)
