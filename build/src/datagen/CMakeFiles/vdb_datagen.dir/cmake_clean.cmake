file(REMOVE_RECURSE
  "CMakeFiles/vdb_datagen.dir/calibration_db.cc.o"
  "CMakeFiles/vdb_datagen.dir/calibration_db.cc.o.d"
  "CMakeFiles/vdb_datagen.dir/synthetic.cc.o"
  "CMakeFiles/vdb_datagen.dir/synthetic.cc.o.d"
  "CMakeFiles/vdb_datagen.dir/tpch.cc.o"
  "CMakeFiles/vdb_datagen.dir/tpch.cc.o.d"
  "CMakeFiles/vdb_datagen.dir/tpch_queries.cc.o"
  "CMakeFiles/vdb_datagen.dir/tpch_queries.cc.o.d"
  "libvdb_datagen.a"
  "libvdb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
