# Empty compiler generated dependencies file for vdb_plan.
# This may be replaced when dependencies are built.
