file(REMOVE_RECURSE
  "CMakeFiles/vdb_plan.dir/expr.cc.o"
  "CMakeFiles/vdb_plan.dir/expr.cc.o.d"
  "CMakeFiles/vdb_plan.dir/logical.cc.o"
  "CMakeFiles/vdb_plan.dir/logical.cc.o.d"
  "CMakeFiles/vdb_plan.dir/planner.cc.o"
  "CMakeFiles/vdb_plan.dir/planner.cc.o.d"
  "CMakeFiles/vdb_plan.dir/rewriter.cc.o"
  "CMakeFiles/vdb_plan.dir/rewriter.cc.o.d"
  "libvdb_plan.a"
  "libvdb_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
