file(REMOVE_RECURSE
  "libvdb_plan.a"
)
