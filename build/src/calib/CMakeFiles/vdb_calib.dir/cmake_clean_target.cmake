file(REMOVE_RECURSE
  "libvdb_calib.a"
)
