file(REMOVE_RECURSE
  "CMakeFiles/vdb_calib.dir/calibration.cc.o"
  "CMakeFiles/vdb_calib.dir/calibration.cc.o.d"
  "CMakeFiles/vdb_calib.dir/grid.cc.o"
  "CMakeFiles/vdb_calib.dir/grid.cc.o.d"
  "CMakeFiles/vdb_calib.dir/store.cc.o"
  "CMakeFiles/vdb_calib.dir/store.cc.o.d"
  "libvdb_calib.a"
  "libvdb_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
