# Empty compiler generated dependencies file for vdb_calib.
# This may be replaced when dependencies are built.
