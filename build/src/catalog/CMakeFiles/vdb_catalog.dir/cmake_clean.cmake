file(REMOVE_RECURSE
  "CMakeFiles/vdb_catalog.dir/catalog.cc.o"
  "CMakeFiles/vdb_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/vdb_catalog.dir/schema.cc.o"
  "CMakeFiles/vdb_catalog.dir/schema.cc.o.d"
  "CMakeFiles/vdb_catalog.dir/stats.cc.o"
  "CMakeFiles/vdb_catalog.dir/stats.cc.o.d"
  "CMakeFiles/vdb_catalog.dir/value.cc.o"
  "CMakeFiles/vdb_catalog.dir/value.cc.o.d"
  "libvdb_catalog.a"
  "libvdb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
