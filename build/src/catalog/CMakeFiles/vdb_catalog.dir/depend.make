# Empty dependencies file for vdb_catalog.
# This may be replaced when dependencies are built.
