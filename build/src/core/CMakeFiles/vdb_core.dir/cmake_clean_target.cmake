file(REMOVE_RECURSE
  "libvdb_core.a"
)
