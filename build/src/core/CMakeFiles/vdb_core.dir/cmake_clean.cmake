file(REMOVE_RECURSE
  "CMakeFiles/vdb_core.dir/advisor.cc.o"
  "CMakeFiles/vdb_core.dir/advisor.cc.o.d"
  "CMakeFiles/vdb_core.dir/cost_model.cc.o"
  "CMakeFiles/vdb_core.dir/cost_model.cc.o.d"
  "CMakeFiles/vdb_core.dir/dynamic.cc.o"
  "CMakeFiles/vdb_core.dir/dynamic.cc.o.d"
  "CMakeFiles/vdb_core.dir/problem.cc.o"
  "CMakeFiles/vdb_core.dir/problem.cc.o.d"
  "CMakeFiles/vdb_core.dir/search.cc.o"
  "CMakeFiles/vdb_core.dir/search.cc.o.d"
  "CMakeFiles/vdb_core.dir/workload_io.cc.o"
  "CMakeFiles/vdb_core.dir/workload_io.cc.o.d"
  "libvdb_core.a"
  "libvdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
