# Empty compiler generated dependencies file for vdb_exec.
# This may be replaced when dependencies are built.
