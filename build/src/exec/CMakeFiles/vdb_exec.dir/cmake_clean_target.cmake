file(REMOVE_RECURSE
  "libvdb_exec.a"
)
