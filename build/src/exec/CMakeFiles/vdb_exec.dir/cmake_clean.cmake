file(REMOVE_RECURSE
  "CMakeFiles/vdb_exec.dir/database.cc.o"
  "CMakeFiles/vdb_exec.dir/database.cc.o.d"
  "CMakeFiles/vdb_exec.dir/execution_context.cc.o"
  "CMakeFiles/vdb_exec.dir/execution_context.cc.o.d"
  "CMakeFiles/vdb_exec.dir/executor.cc.o"
  "CMakeFiles/vdb_exec.dir/executor.cc.o.d"
  "libvdb_exec.a"
  "libvdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
