# Empty dependencies file for vdb_sim.
# This may be replaced when dependencies are built.
