file(REMOVE_RECURSE
  "CMakeFiles/vdb_sim.dir/machine.cc.o"
  "CMakeFiles/vdb_sim.dir/machine.cc.o.d"
  "CMakeFiles/vdb_sim.dir/resources.cc.o"
  "CMakeFiles/vdb_sim.dir/resources.cc.o.d"
  "CMakeFiles/vdb_sim.dir/virtual_machine.cc.o"
  "CMakeFiles/vdb_sim.dir/virtual_machine.cc.o.d"
  "CMakeFiles/vdb_sim.dir/vmm.cc.o"
  "CMakeFiles/vdb_sim.dir/vmm.cc.o.d"
  "libvdb_sim.a"
  "libvdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
