
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/vdb_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/vdb_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/resources.cc" "src/sim/CMakeFiles/vdb_sim.dir/resources.cc.o" "gcc" "src/sim/CMakeFiles/vdb_sim.dir/resources.cc.o.d"
  "/root/repo/src/sim/virtual_machine.cc" "src/sim/CMakeFiles/vdb_sim.dir/virtual_machine.cc.o" "gcc" "src/sim/CMakeFiles/vdb_sim.dir/virtual_machine.cc.o.d"
  "/root/repo/src/sim/vmm.cc" "src/sim/CMakeFiles/vdb_sim.dir/vmm.cc.o" "gcc" "src/sim/CMakeFiles/vdb_sim.dir/vmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
