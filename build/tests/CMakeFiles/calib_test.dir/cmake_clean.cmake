file(REMOVE_RECURSE
  "CMakeFiles/calib_test.dir/calib_test.cc.o"
  "CMakeFiles/calib_test.dir/calib_test.cc.o.d"
  "calib_test"
  "calib_test.pdb"
  "calib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
