# Empty compiler generated dependencies file for exec_operators_test.
# This may be replaced when dependencies are built.
