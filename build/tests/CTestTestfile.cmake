# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/calib_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_integration_test[1]_include.cmake")
include("/root/repo/build/tests/exec_operators_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_property_test[1]_include.cmake")
include("/root/repo/build/tests/workload_io_test[1]_include.cmake")
include("/root/repo/build/tests/cardinality_test[1]_include.cmake")
