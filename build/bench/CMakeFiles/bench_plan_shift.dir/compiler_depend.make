# Empty compiler generated dependencies file for bench_plan_shift.
# This may be replaced when dependencies are built.
