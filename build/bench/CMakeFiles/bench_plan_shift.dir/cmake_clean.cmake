file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_shift.dir/bench_plan_shift.cc.o"
  "CMakeFiles/bench_plan_shift.dir/bench_plan_shift.cc.o.d"
  "bench_plan_shift"
  "bench_plan_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
