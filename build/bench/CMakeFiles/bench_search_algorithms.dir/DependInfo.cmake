
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_search_algorithms.cc" "bench/CMakeFiles/bench_search_algorithms.dir/bench_search_algorithms.cc.o" "gcc" "bench/CMakeFiles/bench_search_algorithms.dir/bench_search_algorithms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/vdb_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/vdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/vdb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/vdb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/vdb_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/vdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
