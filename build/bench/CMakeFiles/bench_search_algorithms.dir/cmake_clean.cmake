file(REMOVE_RECURSE
  "CMakeFiles/bench_search_algorithms.dir/bench_search_algorithms.cc.o"
  "CMakeFiles/bench_search_algorithms.dir/bench_search_algorithms.cc.o.d"
  "bench_search_algorithms"
  "bench_search_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
