# Empty dependencies file for bench_fig3_calibration.
# This may be replaced when dependencies are built.
