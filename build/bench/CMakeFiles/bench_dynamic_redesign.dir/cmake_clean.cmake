file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_redesign.dir/bench_dynamic_redesign.cc.o"
  "CMakeFiles/bench_dynamic_redesign.dir/bench_dynamic_redesign.cc.o.d"
  "bench_dynamic_redesign"
  "bench_dynamic_redesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_redesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
