# Empty dependencies file for bench_dynamic_redesign.
# This may be replaced when dependencies are built.
