file(REMOVE_RECURSE
  "CMakeFiles/bench_calibration_grid.dir/bench_calibration_grid.cc.o"
  "CMakeFiles/bench_calibration_grid.dir/bench_calibration_grid.cc.o.d"
  "bench_calibration_grid"
  "bench_calibration_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calibration_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
