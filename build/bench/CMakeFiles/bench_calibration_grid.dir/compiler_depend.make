# Empty compiler generated dependencies file for bench_calibration_grid.
# This may be replaced when dependencies are built.
