# Empty compiler generated dependencies file for bench_advisor_vs_equal.
# This may be replaced when dependencies are built.
