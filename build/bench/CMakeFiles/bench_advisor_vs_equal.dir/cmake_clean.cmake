file(REMOVE_RECURSE
  "CMakeFiles/bench_advisor_vs_equal.dir/bench_advisor_vs_equal.cc.o"
  "CMakeFiles/bench_advisor_vs_equal.dir/bench_advisor_vs_equal.cc.o.d"
  "bench_advisor_vs_equal"
  "bench_advisor_vs_equal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_advisor_vs_equal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
