# Empty dependencies file for bench_micro_operators.
# This may be replaced when dependencies are built.
