# Empty compiler generated dependencies file for calibration_explorer.
# This may be replaced when dependencies are built.
