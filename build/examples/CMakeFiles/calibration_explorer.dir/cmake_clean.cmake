file(REMOVE_RECURSE
  "CMakeFiles/calibration_explorer.dir/calibration_explorer.cpp.o"
  "CMakeFiles/calibration_explorer.dir/calibration_explorer.cpp.o.d"
  "calibration_explorer"
  "calibration_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
