file(REMOVE_RECURSE
  "CMakeFiles/whatif_tuning.dir/whatif_tuning.cpp.o"
  "CMakeFiles/whatif_tuning.dir/whatif_tuning.cpp.o.d"
  "whatif_tuning"
  "whatif_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
