# Empty compiler generated dependencies file for whatif_tuning.
# This may be replaced when dependencies are built.
